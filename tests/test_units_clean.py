"""Tier-1 gate: the repo's own source must pass the unit checker.

Mirrors ``test_flow_clean.py``: any future PR that mixes semantic
units (an ``Addr`` where a ``SlotIndex`` belongs, a TTL compared to a
timestamp) or lets an index provably escape its space fails here with
the interpreter's own report as the message.  Also the enforcement
point for the CLI contract (exit codes, ``--list-rules`` across all
seven tools, the whole-tree cache) and for the rule that every units
suppression carries a justification.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.units.analysis import analyze_paths
from repro.units.rules import UNIT_RULE_NAMES

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def run_cli(module, args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True, text=True, env=env,
        cwd=cwd or str(REPO_ROOT),
    )


@pytest.fixture(scope="module")
def src_report():
    return analyze_paths([str(SRC)], use_cache=False)


def test_src_tree_is_units_clean(src_report):
    lines = "\n".join(f.format() for f in src_report.findings)
    assert not src_report.findings, f"unit findings in src/:\n{lines}"


def test_src_has_no_units_suppressions_yet(src_report):
    # There is currently no sanctioned UNIT7xx suppression in src/; a
    # creeping count means someone is silencing the checker instead
    # of fixing the units.  Raise this deliberately when a justified
    # suppression lands (and it must carry a written justification —
    # see the audit below).
    assert src_report.suppressed == 0


def test_src_proof_stats_are_nontrivial(src_report):
    # The analyzer must actually be proving things about this tree,
    # not skipping it: annotated core/sim/sap code gives it real
    # subscripts, shifts and conversions to judge.
    assert src_report.stats["checked_subscripts"] >= 100
    assert src_report.stats["proved_subscripts"] >= 10
    assert src_report.stats["proved_shifts"] >= 5
    assert src_report.stats["functions"] >= 800


def test_every_units_suppression_has_a_justification():
    """``# simlint: disable=<unit-rule>`` must carry a reason in a
    trailing parenthesized comment segment."""
    unit_names = set(UNIT_RULE_NAMES)
    pattern = re.compile(
        r"#\s*simlint:\s*disable(?:-file)?\s*=\s*([A-Za-z0-9_\-, ]+)"
    )
    offenders = []
    for path in SRC.rglob("*.py"):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            match = pattern.search(line)
            if not match:
                continue
            names = {n.strip() for n in match.group(1).split(",")}
            if not names & unit_names:
                continue
            justification = line[match.end():].strip()
            if not re.search(r"\(.{8,}\)", justification):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, (
        "units suppressions without a justification:\n"
        + "\n".join(offenders)
    )


def test_cli_exit_codes_and_formats():
    clean = run_cli("repro.units", ["src", "--no-cache"])
    assert clean.returncode == 0, clean.stdout + clean.stderr

    usage = run_cli("repro.units", ["no/such/dir", "--no-cache"])
    assert usage.returncode == 2

    bad_rule = run_cli("repro.units",
                       ["src", "--select", "nope", "--no-cache"])
    assert bad_rule.returncode == 2

    as_json = run_cli("repro.units",
                      ["src", "--format", "json", "--no-cache"])
    assert as_json.returncode == 0
    payload = json.loads(as_json.stdout)
    assert payload["count"] == 0
    assert payload["advisory_count"] > 0
    assert payload["stats"]["functions"] > 0

    github = run_cli("repro.units",
                     ["src", "--format", "github", "--no-cache"])
    assert github.returncode == 0
    assert "::notice " in github.stdout
    assert "::error " not in github.stdout


def test_strict_mode_promotes_obligations_to_failure():
    strict = run_cli("repro.units", ["src", "--strict", "--no-cache"])
    assert strict.returncode == 1


def test_all_seven_clis_list_unit_rules():
    for module in ("repro.lint", "repro.sanitize", "repro.modelcheck",
                   "repro.obs", "repro.fleet", "repro.flow",
                   "repro.units"):
        args = ["--list-rules"]
        if module == "repro.lint":
            args.insert(0, "--no-cache")
        result = run_cli(module, args)
        assert result.returncode == 0, (module, result.stderr)
        for code in ("UNIT701", "UNIT711", "UNIT714"):
            assert code in result.stdout, (
                f"{module} --list-rules is missing {code}"
            )
        assert "FLOW601" in result.stdout
        assert "SIM101" in result.stdout or "SIM1" in result.stdout


def test_umbrella_cli_units_subcommand():
    result = run_cli("repro", ["units", "src", "--no-cache"])
    assert result.returncode == 0, result.stdout + result.stderr
    assert "repro-units: clean" in result.stdout


def test_whole_tree_cache_hits_and_invalidates(tmp_path):
    cache_file = tmp_path / "units-cache.json"
    first = analyze_paths([str(SRC)], use_cache=True,
                          cache_file=str(cache_file))
    assert not first.from_cache
    second = analyze_paths([str(SRC)], use_cache=True,
                           cache_file=str(cache_file))
    assert second.from_cache
    assert [f.to_dict() for f in second.findings] == \
        [f.to_dict() for f in first.findings]
    assert [f.to_dict() for f in second.advisory] == \
        [f.to_dict() for f in first.advisory]
    assert second.stats == first.stats

    # Any content change anywhere invalidates the whole-tree entry.
    document = json.loads(cache_file.read_text())
    document["tree"] = "0" * 64
    cache_file.write_text(json.dumps(document))
    third = analyze_paths([str(SRC)], use_cache=True,
                          cache_file=str(cache_file))
    assert not third.from_cache
