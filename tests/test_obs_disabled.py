"""The zero-cost-when-off and observe-don't-steer contracts.

Every kernel hook point carries a ``_obs`` attribute that is None by
default (one attribute check per operation when observability is off),
and attaching an observer must not change simulation behaviour: the
determinism trace is byte-identical with and without it.
"""

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.lint.determinism import run_scenario
from repro.obs import ObsContext
from repro.sap.cache import SessionCache
from repro.sap.directory import SessionDirectory
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel

SEED = 1998


class TestHooksOffByDefault:
    def test_scheduler_hook_is_none(self):
        assert EventScheduler()._obs is None

    def test_network_hook_is_none(self):
        network = NetworkModel(EventScheduler(),
                               lambda source, ttl: [])
        assert network._obs is None

    def test_cache_hook_is_none(self):
        assert SessionCache()._obs is None

    def test_directory_stack_hooks_are_none(self):
        scheduler = EventScheduler()
        network = NetworkModel(scheduler, lambda source, ttl: [])
        directory = SessionDirectory(
            0, scheduler, network,
            InformedRandomAllocator(8, np.random.default_rng(0)),
            MulticastAddressSpace.abstract(8),
        )
        assert directory.clash_handler._obs is None
        assert directory.cache._obs is None

    def test_allocator_is_unwrapped_by_default(self):
        allocator = InformedRandomAllocator(8, np.random.default_rng(0))
        assert not getattr(allocator, "_obs_watched", False)
        assert allocator.allocate.__name__ == "allocate"
        assert allocator.allocate.__self__ is allocator


class TestObserverDoesNotSteer:
    def test_trace_is_byte_identical_with_observer(self):
        bare = run_scenario(seed=SEED)
        observed = run_scenario(seed=SEED, observer=ObsContext("kernel"))
        assert observed == bare

    def test_observer_recorded_the_run_it_did_not_change(self):
        context = ObsContext("kernel")
        trace = run_scenario(seed=SEED, observer=context)
        context.finish()
        # The footer counts events; the probe must agree with the run.
        assert context.scheduler_probe.events.value > 0
        assert context.spans.started > 0
        assert context.clean
        assert trace  # non-empty trace came back unchanged
