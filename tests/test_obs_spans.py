"""Span tracing: nesting, the tracer sink, retention and OBS402."""

import pytest

from repro.obs.spans import SPAN_CATEGORY, SpanTracker
from repro.sim.events import EventScheduler
from repro.sim.trace import Tracer


@pytest.fixture()
def tracker():
    scheduler = EventScheduler()
    return SpanTracker(Tracer(scheduler)), scheduler


class TestNesting:
    def test_parent_ids_follow_the_stack(self, tracker):
        tracker, scheduler = tracker
        outer = tracker.begin("listen", node=1)
        inner = tracker.begin("defend", node=1)
        assert inner.parent_id == outer.span_id
        tracker.end(inner)
        tracker.end(outer)
        sibling = tracker.begin("announce")
        assert sibling.parent_id is None
        tracker.end(sibling)
        assert [root.name for root in tracker.roots()] == \
            ["listen", "announce"]
        assert tracker.roots()[0].children[0] is inner
        assert tracker.max_depth() == 2
        assert tracker.nested_root_count() == 1

    def test_context_manager_closes_on_error(self, tracker):
        tracker, __ = tracker
        with pytest.raises(RuntimeError):
            with tracker.span("phase") as span:
                raise RuntimeError("boom")
        assert not span.open
        assert tracker.open_spans() == []

    def test_durations_use_simulated_time(self, tracker):
        tracker, scheduler = tracker
        span = tracker.begin("phase")
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run()
        tracker.end(span)
        assert span.duration == 5.0


class TestTracerSink:
    def test_begin_and_end_emit_span_records(self, tracker):
        tracker, __ = tracker
        with tracker.span("allocate", node=3):
            pass
        records = tracker.tracer.records(category=SPAN_CATEGORY)
        assert [record.message for record in records] == \
            ["begin allocate", "end allocate"]
        assert records[0].node == 3
        assert records[0].data["span"] == records[1].data["span"]

    def test_consumer_sees_only_span_category(self, tracker):
        tracker, __ = tracker
        seen = []
        consumer = seen.append
        tracker.tracer.attach_consumer(consumer,
                                       categories=[SPAN_CATEGORY])
        tracker.tracer.emit("rx", "noise")
        with tracker.span("phase"):
            pass
        assert [record.category for record in seen] == \
            [SPAN_CATEGORY, SPAN_CATEGORY]
        tracker.tracer.detach_consumer(consumer)
        with tracker.span("phase"):
            pass
        assert len(seen) == 2


class TestDiscipline:
    def test_double_end_counts_mismatched(self, tracker):
        tracker, __ = tracker
        span = tracker.begin("phase")
        tracker.end(span)
        tracker.end(span)
        assert tracker.mismatched == 1
        assert tracker.finished == 1

    def test_out_of_order_end_keeps_stack_usable(self, tracker):
        tracker, __ = tracker
        outer = tracker.begin("outer")
        inner = tracker.begin("inner")
        tracker.end(outer)
        assert tracker.mismatched == 1
        follow = tracker.begin("follow")
        assert follow.parent_id == inner.span_id
        tracker.end(follow)
        tracker.end(inner)
        assert tracker.open_spans() == []

    def test_retention_bound_drops_tree_not_records(self):
        scheduler = EventScheduler()
        tracker = SpanTracker(Tracer(scheduler), max_retained=2)
        for index in range(4):
            with tracker.span(f"s{index}"):
                pass
        assert tracker.started == 4
        assert tracker.dropped == 2
        assert len(tracker.roots()) == 2
        # All eight begin/end records still reached the tracer.
        assert len(tracker.tracer.records(category=SPAN_CATEGORY)) == 8

    def test_max_retained_must_be_positive(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError, match="positive"):
            SpanTracker(Tracer(scheduler), max_retained=0)


class TestChecksAndSnapshots:
    def test_check_closed_reports_obs402(self, tracker):
        tracker, __ = tracker
        closed = tracker.begin("closed")
        tracker.end(closed)
        tracker.begin("leaked", node=7)
        issues = tracker.check_closed(scenario="steady")
        assert len(issues) == 1
        assert issues[0].code == "OBS402"
        assert "'leaked'" in issues[0].message
        assert "steady" in issues[0].message

    def test_to_dict_is_bounded(self, tracker):
        tracker, __ = tracker
        for index in range(5):
            with tracker.span(f"s{index}"):
                pass
        snapshot = tracker.to_dict(max_roots=2)
        assert snapshot["started"] == 5
        assert snapshot["roots_total"] == 5
        assert len(snapshot["roots"]) == 2
        assert snapshot["roots"][0]["name"] == "s0"
        assert snapshot["roots"][0]["duration"] == 0.0
