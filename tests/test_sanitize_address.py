"""AddressSanitizer: mutation tests for SAN201-SAN204.

The address space is the heap: allocate is malloc, withdrawal is free,
announcing a withdrawn session is use-after-free.  Each test injects
one such bug through the real directory/allocator/network paths and
asserts the sanitizer reports the right code; matching clean-path
tests pin down that the legitimate protocol behaviour (including
third-party proxy defence) stays silent.
"""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.allocator import AllocationResult, Allocator, VisibleSet
from repro.core.informed import InformedRandomAllocator
from repro.sanitize import SanitizerContext
from repro.sap.directory import SessionDirectory
from repro.sap.messages import SapMessage
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel, Packet

SPACE = 64
NODES = (0, 1, 2)


def full_mesh(source, ttl):
    return [(node, 0.01) for node in NODES if node != source]


def make_stack(context):
    scheduler = context.attach_scheduler(EventScheduler())
    network = context.attach_network(
        NetworkModel(scheduler, full_mesh)
    )
    return scheduler, network


def make_directory(context, scheduler, network, node):
    directory = SessionDirectory(
        node=node,
        scheduler=scheduler,
        network=network,
        allocator=InformedRandomAllocator(
            SPACE, np.random.default_rng(node)
        ),
        address_space=MulticastAddressSpace.abstract(SPACE),
        username=f"user{node}",
        rng=np.random.default_rng(100 + node),
    )
    return context.watch_directory(directory)


def codes(context):
    return [violation.code for violation in context.violations]


class BlindAllocator(Allocator):
    """Claims informed allocation but returns a visibly used address."""

    name = "blind"

    def allocate(self, ttl, visible):
        address = int(visible.addresses[0]) if len(visible) else 0
        return AllocationResult(address, band=None, informed=True,
                                forced=False)


class EscapingAllocator(Allocator):
    """Declares a narrow range, then allocates outside it."""

    name = "escaping"

    def declared_ranges(self, ttl, visible):
        return [(0, 8)]

    def allocate(self, ttl, visible):
        return AllocationResult(self.space_size - 1, band=None,
                                informed=False, forced=False)


class TestDoubleAllocate:
    def test_visible_address_reuse_records_san201(self):
        context = SanitizerContext(scenario="test")
        allocator = context.watch_allocator(BlindAllocator(SPACE))
        visible = VisibleSet(np.array([5, 9]), np.array([127, 127]))
        result = allocator.allocate(127, visible)
        assert result.address == 5
        assert "SAN201" in codes(context)
        assert context.violations[0].rule == "double-allocate"

    def test_informed_allocator_clean(self):
        context = SanitizerContext(scenario="test")
        allocator = context.watch_allocator(
            InformedRandomAllocator(SPACE, np.random.default_rng(7))
        )
        visible = VisibleSet.empty()
        for __ in range(SPACE):
            result = allocator.allocate(127, visible)
            visible = VisibleSet(
                np.append(visible.addresses, result.address),
                np.append(visible.ttls, 127),
            )
        # The space is now full: the forced fallback is not a SAN201.
        forced = allocator.allocate(127, visible)
        assert forced.forced
        assert context.clean

    def test_watch_allocator_is_idempotent(self):
        context = SanitizerContext(scenario="test")
        allocator = BlindAllocator(SPACE)
        context.watch_allocator(allocator)
        context.watch_allocator(allocator)  # must not double-wrap
        visible = VisibleSet(np.array([3]), np.array([127]))
        allocator.allocate(127, visible)
        assert codes(context) == ["SAN201"]


class TestAllocOutOfBounds:
    def test_escape_from_declared_range_records_san202(self):
        context = SanitizerContext(scenario="test")
        allocator = context.watch_allocator(EscapingAllocator(SPACE))
        allocator.allocate(127, VisibleSet.empty())
        assert codes(context) == ["SAN202"]
        assert context.violations[0].rule == "alloc-out-of-bounds"

    def test_within_declared_range_clean(self):
        context = SanitizerContext(scenario="test")
        allocator = context.watch_allocator(
            InformedRandomAllocator(SPACE, np.random.default_rng(7))
        )
        for __ in range(10):
            result = allocator.allocate(127, VisibleSet.empty())
            assert 0 <= result.address < SPACE
        assert context.clean


class TestFreeOfUnallocated:
    def test_double_withdraw_records_san203(self):
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = make_directory(context, scheduler, network, 0)
        session = directory.create_session("conf", ttl=63)
        own = directory.own_sessions()[0]
        directory.delete_session(session)  # the legitimate free
        assert context.clean
        # A buggy resurrection: the session sneaks back into the
        # directory's table, so the next withdrawal is a double free.
        directory._own[(0, own.description.session_id)] = own
        directory.delete_session(session)
        assert codes(context) == ["SAN203"]
        assert context.violations[0].rule == "free-of-unallocated"

    def test_move_of_untracked_session_records_san203(self):
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = make_directory(context, scheduler, network, 0)
        session = directory.create_session("conf", ttl=63)
        own = directory.own_sessions()[0]
        directory.delete_session(session)
        context.on_session_moved(directory, own, old_address=0)
        assert codes(context) == ["SAN203"]

    def test_create_then_withdraw_clean(self):
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = make_directory(context, scheduler, network, 0)
        session = directory.create_session("conf", ttl=63)
        assert context.address_sanitizer.live_count == 1
        directory.delete_session(session)
        assert context.address_sanitizer.live_count == 0
        assert context.clean

    def test_sessions_created_before_watch_are_seeded(self):
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = SessionDirectory(
            node=0, scheduler=scheduler, network=network,
            allocator=InformedRandomAllocator(
                SPACE, np.random.default_rng(0)
            ),
            address_space=MulticastAddressSpace.abstract(SPACE),
            rng=np.random.default_rng(100),
        )
        session = directory.create_session("early", ttl=63)
        context.watch_directory(directory)
        directory.delete_session(session)  # not a free-of-unallocated
        assert context.clean


class TestUseAfterExpiry:
    def test_origin_reannounce_after_delete_records_san204(self):
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = make_directory(context, scheduler, network, 0)
        # Give the packets somewhere to go so deliveries are scheduled.
        make_directory(context, scheduler, network, 1)
        session = directory.create_session("conf", ttl=63)
        own = directory.own_sessions()[0]
        scheduler.run(until=5.0)
        directory.delete_session(session)
        assert context.clean
        # The bug: the announcer's raw send path fires after the stop.
        own.announcer.send()
        assert codes(context) == ["SAN204"]
        assert context.violations[0].rule == "use-after-expiry"

    def test_third_party_proxy_defence_is_exempt(self):
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = make_directory(context, scheduler, network, 0)
        make_directory(context, scheduler, network, 1)
        session = directory.create_session("conf", ttl=63)
        own = directory.own_sessions()[0]
        payload = own.description.format()
        scheduler.run(until=5.0)
        directory.delete_session(session)
        # Phase 3: another site re-announces node 0's session verbatim
        # (source != origin) — legitimate, must stay silent.
        message = SapMessage.announce(0, payload)
        network.send(Packet(source=2, group=0, ttl=63,
                            payload=message.encode()))
        assert context.clean

    def test_delete_message_itself_is_exempt(self):
        # The DELETE shares the ANNOUNCE's cache key; sending it must
        # not read as a use-after-expiry.
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = make_directory(context, scheduler, network, 0)
        make_directory(context, scheduler, network, 1)
        session = directory.create_session("conf", ttl=63)
        scheduler.run(until=5.0)
        directory.delete_session(session)
        scheduler.run(until=10.0)
        assert context.clean


class TestGhostSessionRegression:
    """The latent bug the sanitizer caught: self-origin echo caching.

    Phase-3 proxy defence re-sends another site's message verbatim.
    If the originator caches its own echoed announcement, it can later
    proxy-defend its *own withdrawn* session — resurrecting a session
    it knows is dead.  The directory must drop self-origin packets.
    """

    def test_self_origin_echo_is_not_cached(self):
        context = SanitizerContext(scenario="test")
        scheduler, network = make_stack(context)
        directory = make_directory(context, scheduler, network, 0)
        make_directory(context, scheduler, network, 1)
        session = directory.create_session("conf", ttl=63)
        own = directory.own_sessions()[0]
        payload = own.description.format()
        scheduler.run(until=5.0)
        # A third party echoes node 0's own announcement back at it.
        message = SapMessage.announce(0, payload)
        network.send(Packet(source=2, group=0, ttl=63,
                            payload=message.encode()))
        scheduler.run(until=6.0)
        assert len(directory.cache) == 0
        assert session.source == 0
