"""Incremental lint cache: reuse, invalidation, fail-open behaviour."""

import json

from repro.lint.cache import (
    CACHE_FORMAT,
    LintCache,
    lint_paths_cached,
)
from repro.lint.engine import lint_paths
from repro.lint.registry import get_static_rules, ruleset_signature

RULES = get_static_rules()

BAD = ("import numpy as np\n"
       "rng = np.random.default_rng()\n")
WORSE = ("import numpy as np\n"
         "rng = np.random.default_rng()\n"
         "key = hash('x')\n")


def _tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD)
    (pkg / "ok.py").write_text("VALUE = 3\n")
    return tmp_path / "src", pkg / "bad.py"


class TestCachedLinting:
    def test_warm_run_matches_cold_run(self, tmp_path):
        src, _ = _tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        cold = lint_paths_cached([str(src)], RULES,
                                 cache_file=cache_file)
        warm = lint_paths_cached([str(src)], RULES,
                                 cache_file=cache_file)
        assert cold == warm
        assert cold == lint_paths([str(src)], rules=RULES)
        assert [f.rule for f in cold] == ["unseeded-rng"]

    def test_second_run_is_served_from_cache(self, tmp_path):
        src, _ = _tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        lint_paths_cached([str(src)], RULES, cache_file=cache_file)
        cache = LintCache(cache_file, ruleset_signature(RULES))
        assert len(cache.entries) == 2
        text = BAD
        assert cache.lookup(str(src / "repro" / "core" / "bad.py"),
                            text) is not None
        assert cache.hits == 1

    def test_editing_a_file_invalidates_only_it(self, tmp_path):
        src, bad = _tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        lint_paths_cached([str(src)], RULES, cache_file=cache_file)
        bad.write_text(WORSE)
        findings = lint_paths_cached([str(src)], RULES,
                                     cache_file=cache_file)
        assert sorted(f.rule for f in findings) == [
            "builtin-hash", "unseeded-rng"]

    def test_ruleset_change_invalidates_everything(self, tmp_path):
        src, _ = _tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        lint_paths_cached([str(src)], RULES, cache_file=cache_file)
        subset = get_static_rules(select=["builtin-hash"])
        assert ruleset_signature(subset) != ruleset_signature(RULES)
        stale = LintCache(cache_file, ruleset_signature(subset))
        assert stale.entries == {}
        findings = lint_paths_cached([str(src)], subset,
                                     cache_file=cache_file)
        assert findings == []

    def test_corrupt_cache_is_fail_open(self, tmp_path):
        src, _ = _tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        findings = lint_paths_cached([str(src)], RULES,
                                     cache_file=str(cache_file))
        assert [f.rule for f in findings] == ["unseeded-rng"]
        # And the run repaired the cache on disk.
        document = json.loads(cache_file.read_text())
        assert document["format"] == CACHE_FORMAT

    def test_stale_format_is_ignored(self, tmp_path):
        src, _ = _tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        cache_file.write_text(json.dumps({
            "format": CACHE_FORMAT + 1,
            "ruleset": ruleset_signature(RULES),
            "files": {"poison": {"hash": "x", "findings": []}},
        }))
        cache = LintCache(str(cache_file), ruleset_signature(RULES))
        assert cache.entries == {}


class TestCliFlags:
    def _run(self, argv, tmp_path):
        from repro.lint.cli import main

        return main(argv)

    def test_cache_file_flag_writes_there(self, tmp_path, capsys):
        src, _ = _tree(tmp_path)
        cache_file = tmp_path / "custom-cache.json"
        status = self._run([str(src), "--cache-file", str(cache_file)],
                           tmp_path)
        capsys.readouterr()
        assert status == 1
        assert cache_file.exists()

    def test_no_cache_flag_skips_the_cache(self, tmp_path, capsys):
        src, _ = _tree(tmp_path)
        cache_file = tmp_path / "custom-cache.json"
        status = self._run([str(src), "--no-cache",
                            "--cache-file", str(cache_file)], tmp_path)
        capsys.readouterr()
        assert status == 1
        assert not cache_file.exists()

    def test_cached_and_uncached_cli_agree(self, tmp_path, capsys):
        src, _ = _tree(tmp_path)
        cache_file = tmp_path / "c.json"
        self._run([str(src), "--format", "json",
                   "--cache-file", str(cache_file)], tmp_path)
        first = json.loads(capsys.readouterr().out)
        self._run([str(src), "--format", "json",
                   "--cache-file", str(cache_file)], tmp_path)
        cached = json.loads(capsys.readouterr().out)
        self._run([str(src), "--format", "json", "--no-cache"],
                  tmp_path)
        uncached = json.loads(capsys.readouterr().out)
        assert first == cached == uncached
