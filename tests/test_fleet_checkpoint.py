"""The JSONL checkpoint: append, load, torn-tail repair, digests."""

import json

import pytest

from repro.fleet.checkpoint import (
    Checkpoint,
    CheckpointMismatch,
    LoadedCheckpoint,
)


def _meta(digest="d1"):
    return {"kind": "meta", "version": 1, "sweep": "s", "job": "noop",
            "seed": 1, "digest": digest}


def _row(shard, status="ok", **extra):
    row = {"kind": "row", "shard": shard, "attempt": 0,
           "status": status}
    if status == "ok":
        row["payload"] = extra.pop("payload", {"v": shard})
    else:
        row.setdefault("reason", "exception")
        row.setdefault("error", "boom")
    row.update(extra)
    return row


class TestRoundTrip:
    def test_missing_file_loads_empty(self, tmp_path):
        loaded = Checkpoint(str(tmp_path / "none.jsonl")).load()
        assert isinstance(loaded, LoadedCheckpoint)
        assert loaded.rows == 0 and not loaded.completed

    def test_append_then_load(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with Checkpoint(path) as journal:
            journal.append(_meta())
            journal.append(_row(1))
            journal.append(_row(0))
            journal.append(_row(2, status="failed"))
        loaded = Checkpoint(path).load(expected_digest="d1")
        assert sorted(loaded.completed) == [0, 1]
        assert loaded.completed[1] == {"v": 1}
        assert len(loaded.failures) == 1
        assert loaded.torn_bytes == 0

    def test_first_ok_row_wins(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with Checkpoint(path) as journal:
            journal.append(_meta())
            journal.append(_row(0, payload={"v": "first"}))
            journal.append(_row(0, payload={"v": "first"}))
        loaded = Checkpoint(path).load()
        assert loaded.completed[0] == {"v": "first"}
        assert loaded.mismatched == []

    def test_conflicting_duplicates_reported(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with Checkpoint(path) as journal:
            journal.append(_meta())
            journal.append(_row(0, payload={"v": "first"}))
            journal.append(_row(0, payload={"v": "second"}))
        loaded = Checkpoint(path).load()
        assert loaded.mismatched == [0]
        assert loaded.completed[0] == {"v": "first"}

    def test_ensure_meta_only_writes_once(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        journal = Checkpoint(path)
        journal.ensure_meta("s", "noop", 1, "d1")
        journal.ensure_meta("s", "noop", 1, "d1")
        journal.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1

    def test_reset_removes_file(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = Checkpoint(str(path))
        journal.append(_meta())
        journal.reset()
        assert not path.exists()
        journal.reset()  # idempotent on a missing file


class TestDigestBinding:
    def test_digest_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with Checkpoint(path) as journal:
            journal.append(_meta(digest="other"))
        with pytest.raises(CheckpointMismatch, match="digest"):
            Checkpoint(path).load(expected_digest="d1")

    def test_non_meta_first_row_refused(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with Checkpoint(path) as journal:
            journal.append(_row(0))
        with pytest.raises(CheckpointMismatch, match="meta"):
            Checkpoint(path).load()


class TestTornTail:
    def _journal(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        with Checkpoint(path) as journal:
            journal.append(_meta())
            journal.append(_row(0))
        return path

    def test_partial_last_line_truncated(self, tmp_path):
        path = self._journal(tmp_path)
        good_size = len(open(path, "rb").read())
        with open(path, "a") as handle:
            handle.write('{"kind": "row", "shard": 1, "sta')
        loaded = Checkpoint(path).load()
        assert loaded.torn_bytes > 0
        assert sorted(loaded.completed) == [0]
        # The file was repaired in place: a clean reload sees no tear.
        assert len(open(path, "rb").read()) == good_size
        assert Checkpoint(path).load().torn_bytes == 0

    def test_undecodable_terminated_line_truncated(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a") as handle:
            handle.write("{не json}\n")
            handle.write(json.dumps(_row(1)) + "\n")
        loaded = Checkpoint(path).load()
        # Everything after the first bad line is discarded, even
        # well-formed rows: order is the integrity boundary.
        assert sorted(loaded.completed) == [0]
        assert loaded.torn_bytes > 0

    def test_appending_after_repair_is_clean(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"torn": ')
        journal = Checkpoint(path)
        journal.load()
        journal.append(_row(1))
        journal.close()
        loaded = Checkpoint(path).load()
        assert sorted(loaded.completed) == [0, 1]
        assert loaded.torn_bytes == 0
