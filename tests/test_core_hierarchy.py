"""Hierarchical prefix allocation tests (paper §4.1)."""

import numpy as np
import pytest

from repro.core.allocator import VisibleSet
from repro.core.hierarchy import HierarchicalAllocator, PrefixPool


class TestPrefixPool:
    def test_ranges_tile_the_space(self):
        pool = PrefixPool(1000, 10)
        assert pool.prefix_size == 100
        assert pool.prefix_range(0) == (0, 100)
        assert pool.prefix_range(9) == (900, 1000)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            PrefixPool(10, 20)
        with pytest.raises(ValueError):
            PrefixPool(10, 0)

    def test_prefix_range_bounds(self):
        pool = PrefixPool(100, 4)
        with pytest.raises(IndexError):
            pool.prefix_range(4)

    def test_claim_avoids_taken(self, rng):
        pool = PrefixPool(100, 4)
        claimed = {0, 1, 2}
        for __ in range(20):
            assert pool.claim_prefix(claimed, rng) == 3

    def test_claim_exhausted_returns_none(self, rng):
        pool = PrefixPool(100, 2)
        assert pool.claim_prefix({0, 1}, rng) is None


class TestHierarchicalAllocator:
    def test_first_allocation_claims_a_prefix(self, rng):
        pool = PrefixPool(1000, 10)
        allocator = HierarchicalAllocator(pool, rng=rng)
        result = allocator.allocate(63, VisibleSet.empty())
        assert len(allocator.prefixes) == 1
        lo, hi = pool.prefix_range(allocator.prefixes[0])
        assert lo <= result.address < hi

    def test_regions_claim_disjoint_prefixes(self, rng):
        pool = PrefixPool(1000, 10)
        regions = [HierarchicalAllocator(pool, region_id=i,
                                         rng=np.random.default_rng(i))
                   for i in range(5)]
        claimed = set()
        for region in regions:
            region.observe_claims(claimed)
            region.allocate(63, VisibleSet.empty())
            for prefix in region.prefixes:
                assert prefix not in claimed
                claimed.add(prefix)

    def test_grows_when_occupancy_high(self, rng):
        pool = PrefixPool(100, 10)  # prefix size 10
        allocator = HierarchicalAllocator(pool, grow_at=0.67, rng=rng)
        allocator.ensure_capacity(1)
        assert len(allocator.prefixes) == 1
        # 9 live local sessions > 0.67*10 => needs a second prefix.
        allocator.ensure_capacity(9)
        assert len(allocator.prefixes) == 2

    def test_allocates_informed_within_prefix(self, rng):
        pool = PrefixPool(100, 10)
        allocator = HierarchicalAllocator(pool, rng=rng)
        allocator.ensure_capacity(1)
        prefix = allocator.prefixes[0]
        lo, hi = pool.prefix_range(prefix)
        visible = VisibleSet(
            np.arange(lo, hi - 1, dtype=np.int64),
            np.full(hi - 1 - lo, 63, dtype=np.int64),
        )
        result = allocator.allocate(63, visible)
        assert result.address == hi - 1

    def test_pool_exhaustion_raises(self):
        pool = PrefixPool(4, 2)
        a = HierarchicalAllocator(pool, rng=np.random.default_rng(1))
        a.observe_claims([0, 1])
        a.prefixes = []
        with pytest.raises(RuntimeError):
            a.allocate(63, VisibleSet.empty())

    def test_invalid_grow_at_rejected(self, rng):
        with pytest.raises(ValueError):
            HierarchicalAllocator(PrefixPool(10, 2), grow_at=0.0, rng=rng)

    def test_picks_least_occupied_prefix(self, rng):
        pool = PrefixPool(100, 10)
        allocator = HierarchicalAllocator(pool, rng=rng)
        allocator.prefixes = [0, 5]
        # Prefix 0 (addresses 0..10) nearly full; prefix 5 empty.
        visible = VisibleSet(
            np.arange(0, 9, dtype=np.int64),
            np.full(9, 63, dtype=np.int64),
        )
        result = allocator.allocate(63, visible)
        assert 50 <= result.address < 60
