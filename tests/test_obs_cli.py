"""The repro.obs CLI and its ``repro obs`` passthrough.

Only the fast ``kernel`` scenario runs here; the heavier ``clash`` and
``steady`` scenarios (and ``--bench``) are exercised by the benchmark
suite and CI, not tier-1.
"""

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.scenarios import SCENARIO_NAMES


class TestFormats:
    def test_text_clean_run(self, capsys):
        assert obs_main(["kernel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("kernel: events=")
        assert "callback latency: mean=" in out
        assert "obs[kernel]: clean (0 issues)" in out
        assert "obs: 1 scenario(s) clean" in out

    def test_json_report(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        assert obs_main(["kernel", "--format", "json",
                         "--out", str(out_file)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["count"] == 0
        assert data["findings"] == []
        report = data["reports"]["kernel"]
        assert report["scheduler"]["events_per_wall_second"] > 0
        assert report["scheduler"]["callback_latency_seconds"][
            "count"] > 0
        assert report["spans"]["nested_trees"] >= 1
        assert "sim_events_total" in report["metrics"]
        # --out wrote the same document to disk.
        assert json.loads(out_file.read_text()) == data

    def test_prom_exposition(self, capsys):
        assert obs_main(["kernel", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sim_events_total counter" in out
        assert "# TYPE sim_callback_latency_seconds histogram" in out
        assert 'scenario="kernel"' in out
        assert 'le="+Inf"' in out

    def test_github_clean_run_prints_nothing(self, capsys):
        assert obs_main(["kernel", "--format", "github"]) == 0
        assert capsys.readouterr().out == ""


class TestScenarioSelection:
    def test_scenario_flag_and_positional_merge(self, capsys):
        assert obs_main(["--scenario", "kernel",
                         "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert list(data["reports"]) == ["kernel"]

    def test_seed_changes_nothing_structural(self, capsys):
        assert obs_main(["kernel", "--seed", "7",
                         "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["reports"]["kernel"]["scenario"] == "kernel"

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert obs_main(["bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestListings:
    def test_list_scenarios_names_every_scenario(self, capsys):
        assert obs_main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert f"``{name}``" in out

    def test_list_rules_prints_shared_registry(self, capsys):
        assert obs_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "OBS401" in out
        assert "OBS402" in out
        assert "SIM101" in out
        assert "runtime/obs" in out


class TestReproPassthrough:
    def test_repro_obs_subcommand(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["obs", "--scenario", "kernel",
                           "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert list(data["reports"]) == ["kernel"]

    @pytest.mark.parametrize("flag", ["--list-scenarios",
                                      "--list-rules"])
    def test_repro_obs_listings(self, capsys, flag):
        from repro.cli import main as repro_main

        assert repro_main(["obs", flag]) == 0
        assert capsys.readouterr().out
