"""Experiment harness tests (figs. 5, 12/13, 15-19 machinery)."""

import numpy as np
import pytest

from repro.core.informed import InformedRandomAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.core.random_alloc import RandomAllocator
from repro.experiments.allocation_run import (
    allocations_before_first_clash,
    fig5_run,
)
from repro.experiments.request_response import (
    RequestResponseConfig,
    simulate_request_response,
)
from repro.experiments.steady_state import (
    allocations_at_half_clash,
    steady_state_clash_probability,
)
from repro.experiments.ttl_distributions import (
    ALL_DISTRIBUTIONS,
    DS1,
    DS4,
    TtlDistribution,
)
from repro.topology.doar import DoarParams, generate_doar


class TestTtlDistributions:
    def test_paper_values(self):
        assert DS1.values == (1, 15, 31, 47, 63, 127, 191)
        assert len(DS4.values) == 22
        assert DS4.values.count(1) == 8
        assert DS4.values.count(15) == 6

    def test_all_share_support(self):
        for dist in ALL_DISTRIBUTIONS:
            assert dist.distinct() == (1, 15, 31, 47, 63, 127, 191)

    def test_sampling(self, rng):
        samples = DS4.sample(rng, size=2000)
        values, counts = np.unique(samples, return_counts=True)
        assert set(values) <= set(DS4.values)
        # TTL 1 appears 8/22 of the time.
        share = counts[values == 1][0] / 2000
        assert 0.30 <= share <= 0.43

    def test_scalar_sample(self, rng):
        assert DS1.sample(rng) in DS1.values

    def test_validation(self):
        with pytest.raises(ValueError):
            TtlDistribution("bad", ())
        with pytest.raises(ValueError):
            TtlDistribution("bad", (0,))


class TestAllocationRun:
    def test_runs_and_is_deterministic(self, small_scope_map):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        factory = lambda n, r: RandomAllocator(n, r)
        a = allocations_before_first_clash(small_scope_map, factory, 100,
                                           DS1, rng1)
        b = allocations_before_first_clash(small_scope_map, factory, 100,
                                           DS1, rng2)
        assert a == b
        assert a > 0

    def test_cap_respected(self, small_scope_map):
        factory = lambda n, r: StaticIprmaAllocator.seven_band(n, r)
        count = allocations_before_first_clash(
            small_scope_map, factory, 400, DS4,
            np.random.default_rng(0), max_allocations=25,
        )
        assert count <= 25

    def test_fig5_ordering(self, small_scope_map):
        """The headline fig. 5 result: IPR-7 >> IR >= R at equal space."""
        algorithms = {
            "R": lambda n, r: RandomAllocator(n, r),
            "IR": lambda n, r: InformedRandomAllocator(n, r),
            "IPR 7-band": lambda n, r: StaticIprmaAllocator.seven_band(
                n, r),
        }
        rows = fig5_run(small_scope_map, algorithms, [400], [DS4],
                        trials=3, seed=1)
        means = {row.algorithm: row.mean_allocations for row in rows}
        assert means["IPR 7-band"] > 3 * means["R"]
        assert means["IR"] >= means["R"] * 0.8

    def test_fig5_row_structure(self, small_scope_map):
        rows = fig5_run(small_scope_map,
                        {"R": lambda n, r: RandomAllocator(n, r)},
                        [100, 200], [DS1, DS4], trials=2)
        assert len(rows) == 4
        assert {row.space_size for row in rows} == {100, 200}


class TestSteadyState:
    def test_probability_monotone_in_n(self, small_scope_map):
        factory = lambda n, r: StaticIprmaAllocator.seven_band(n, r)
        p_small = steady_state_clash_probability(
            small_scope_map, factory, 200, 20, DS4, trials=6, seed=2)
        p_large = steady_state_clash_probability(
            small_scope_map, factory, 200, 600, DS4, trials=6, seed=2)
        assert p_small <= p_large
        assert p_large > 0.4

    def test_half_point_search(self, small_scope_map):
        factory = lambda n, r: StaticIprmaAllocator.seven_band(n, r)
        n_half = allocations_at_half_clash(
            small_scope_map, factory, 150, DS4, trials=6, seed=3)
        assert 10 < n_half <= 600

    def test_same_site_variant_runs(self, small_scope_map):
        factory = lambda n, r: StaticIprmaAllocator.seven_band(n, r)
        p = steady_state_clash_probability(
            small_scope_map, factory, 150, 50, DS4, trials=4, seed=4,
            same_site_replacement=True)
        assert 0.0 <= p <= 1.0

    def test_invalid_n_rejected(self, small_scope_map):
        factory = lambda n, r: RandomAllocator(n, r)
        with pytest.raises(ValueError):
            steady_state_clash_probability(
                small_scope_map, factory, 100, 0, DS4)


class TestRequestResponse:
    @pytest.fixture(scope="class")
    def doar(self):
        return generate_doar(DoarParams(num_nodes=200, seed=11))

    def test_uniform_fewer_responses_with_longer_d2(self, doar):
        short = simulate_request_response(
            doar, RequestResponseConfig(d2=0.2, trials=6, seed=1))
        long = simulate_request_response(
            doar, RequestResponseConfig(d2=51.2, trials=6, seed=1))
        assert long.mean_responses < short.mean_responses
        assert long.mean_responses >= 1.0

    def test_exponential_beats_uniform(self, doar):
        uniform = simulate_request_response(
            doar, RequestResponseConfig(d2=3.2, timer="uniform",
                                        trials=8, seed=2))
        exponential = simulate_request_response(
            doar, RequestResponseConfig(d2=3.2, timer="exponential",
                                        trials=8, seed=2))
        assert exponential.mean_responses < uniform.mean_responses

    def test_at_least_one_response(self, doar):
        for routing in ("spt", "shared"):
            result = simulate_request_response(
                doar, RequestResponseConfig(d2=1.0, routing=routing,
                                            trials=5, seed=3))
            assert result.mean_responses >= 1.0
            assert result.mean_first_delay > 0.0
            assert result.max_first_delay >= result.mean_first_delay

    def test_shared_vs_spt_both_work(self, doar):
        """Paper: 'a small difference between shortest-path trees and
        shared trees ... but not one that greatly affects the choice'."""
        spt = simulate_request_response(
            doar, RequestResponseConfig(d2=6.4, routing="spt",
                                        trials=10, seed=4))
        shared = simulate_request_response(
            doar, RequestResponseConfig(d2=6.4, routing="shared",
                                        trials=10, seed=4))
        assert 0.2 < spt.mean_responses / shared.mean_responses < 5.0

    def test_jitter_variant_runs(self, doar):
        result = simulate_request_response(
            doar, RequestResponseConfig(d2=1.0, jitter=0.05,
                                        trials=4, seed=5))
        assert result.mean_responses >= 1.0

    def test_deterministic(self, doar):
        config = RequestResponseConfig(d2=1.0, trials=4, seed=6)
        a = simulate_request_response(doar, config)
        b = simulate_request_response(doar, config)
        assert a.mean_responses == b.mean_responses
        assert a.mean_first_delay == b.mean_first_delay

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RequestResponseConfig(d2=1.0, timer="gaussian")
        with pytest.raises(ValueError):
            RequestResponseConfig(d2=1.0, routing="flooding")
        with pytest.raises(ValueError):
            RequestResponseConfig(d2=-1.0)
        with pytest.raises(ValueError):
            RequestResponseConfig(d2=1.0, trials=0)
        with pytest.raises(ValueError):
            RequestResponseConfig(d2=1.0, member_fraction=0.0)

    def test_member_fraction_shrinks_responder_pool(self, doar):
        """§3's refinement: restricting responders to announcing
        sites cuts the response count at small D2."""
        everyone = simulate_request_response(
            doar, RequestResponseConfig(d2=0.2, trials=8, seed=7))
        members = simulate_request_response(
            doar, RequestResponseConfig(d2=0.2, trials=8, seed=7,
                                        member_fraction=0.1))
        assert members.mean_responses < everyone.mean_responses

    def test_member_fraction_zero_responders_safe(self):
        """A round where nobody is a member yields 0 responses and a
        NaN first delay, not a crash."""
        import math
        tiny = generate_doar(DoarParams(num_nodes=5, seed=2,
                                        redundant_links=False))
        result = simulate_request_response(
            tiny, RequestResponseConfig(d2=0.2, trials=4, seed=1,
                                        member_fraction=0.01))
        assert result.mean_responses < 1.0
        assert result.mean_responses >= 0.0 or \
            math.isnan(result.mean_first_delay)
