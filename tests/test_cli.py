"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


class TestGenerateAndStats:
    def test_generate_mbone_map(self, tmp_path, capsys):
        out = tmp_path / "m.map"
        assert main(["generate-map", "--nodes", "100", "--seed", "3",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_doar_map(self, tmp_path, capsys):
        out = tmp_path / "d.map"
        assert main(["generate-map", "--kind", "doar", "--nodes", "50",
                     "--out", str(out)]) == 0
        assert out.exists()

    def test_map_stats(self, tmp_path, capsys):
        out = tmp_path / "m.map"
        main(["generate-map", "--nodes", "100", "--out", str(out)])
        capsys.readouterr()
        assert main(["map-stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "nodes:" in text
        assert "threshold census:" in text


class TestAnalysisCommands:
    def test_analyze_birthday(self, capsys):
        assert main(["analyze", "birthday", "--space", "10000",
                     "--allocations", "118"]) == 0
        out = capsys.readouterr().out
        assert "P(clash" in out
        assert "= 0.49" in out or "= 0.50" in out

    def test_analyze_eq1(self, capsys):
        assert main(["analyze", "eq1", "--space", "8192",
                     "--i-fraction", "0.001"]) == 0
        assert "2061" in capsys.readouterr().out

    def test_analyze_responders(self, capsys):
        assert main(["analyze", "responders", "--sites", "1600",
                     "--buckets", "32"]) == 0
        out = capsys.readouterr().out
        assert "uniform=50.00" in out
        assert "exponential=1.443" in out


class TestSimulationCommands:
    def test_hopcount(self, capsys):
        assert main(["hopcount", "--nodes", "100", "--seed", "3",
                     "--ttls", "15", "127"]) == 0
        out = capsys.readouterr().out
        assert "Intercontinental" in out
        assert "Local" in out

    def test_hopcount_from_map(self, tmp_path, capsys):
        out_file = tmp_path / "m.map"
        main(["generate-map", "--nodes", "100", "--out",
              str(out_file)])
        capsys.readouterr()
        assert main(["hopcount", "--map", str(out_file)]) == 0
        assert "ttl" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5", "--nodes", "100", "--sizes", "100",
                     "--trials", "1", "--algorithms", "random",
                     "ipr7"]) == 0
        out = capsys.readouterr().out
        assert "ipr7" in out
        assert "random" in out
        assert "ds4" in out

    def test_steady_state(self, capsys):
        assert main(["steady-state", "--nodes", "100", "--algorithm",
                     "ipr7", "--spaces", "100", "--trials", "3"]) == 0
        assert "allocations@0.5" in capsys.readouterr().out

    def test_request_response(self, capsys):
        assert main(["request-response", "--sites", "150", "--d2",
                     "1.6", "--trials", "3"]) == 0
        assert "mean responses" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_reproduce_report(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["reproduce", "--nodes", "150", "--out",
                     str(out)]) == 0
        text = capsys.readouterr().out
        assert "16,488" in text
        assert "fig. 5" in text
        assert out.read_text().startswith("repro — compact")
