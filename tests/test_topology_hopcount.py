"""Hop-count distribution tests (fig. 10 / §2.4.1 table)."""

import numpy as np
import pytest

from repro.routing.scoping import ScopeMap
from repro.topology.hopcount import (
    PAPER_TTLS,
    hop_count_distribution,
    usage_table,
)


@pytest.fixture(scope="module")
def mbone_stats(small_mbone_module, small_scope_map_module):
    return hop_count_distribution(small_mbone_module,
                                  scope_map=small_scope_map_module)


@pytest.fixture(scope="module")
def small_mbone_module():
    from repro.topology.mbone import MboneParams, generate_mbone
    return generate_mbone(MboneParams(total_nodes=150, seed=42))


@pytest.fixture(scope="module")
def small_scope_map_module(small_mbone_module):
    return ScopeMap.from_topology(small_mbone_module)


class TestHopCountDistribution:
    def test_covers_requested_ttls(self, mbone_stats):
        assert set(mbone_stats) == set(PAPER_TTLS)

    def test_normalized_sums_to_one(self, mbone_stats):
        for stats in mbone_stats.values():
            assert stats.normalized.sum() == pytest.approx(1.0)

    def test_local_scope_smaller_than_global(self, mbone_stats):
        """Fig. 10 shape: local scopes peak at few hops, global at many."""
        assert mbone_stats[15].mean_hops < mbone_stats[63].mean_hops
        assert mbone_stats[63].mean_hops <= mbone_stats[127].mean_hops
        assert mbone_stats[15].max_hops < mbone_stats[127].max_hops

    def test_ttl47_matches_ttl63_outside_europe(self, mbone_stats):
        """TTL 47 behaves like TTL 63 except inside Europe, so its mean
        is close to but no larger than TTL 63's."""
        assert mbone_stats[47].mean_hops <= mbone_stats[63].mean_hops
        assert mbone_stats[47].mean_hops > mbone_stats[15].mean_hops

    def test_max_hops_below_dvmrp_infinity(self, mbone_stats):
        assert mbone_stats[127].max_hops < 32

    def test_mode_within_histogram(self, mbone_stats):
        for stats in mbone_stats.values():
            assert 0 <= stats.mode_hops < len(stats.histogram)
            assert stats.histogram[stats.mode_hops] == stats.histogram.max()

    def test_source_subset(self, small_mbone_module,
                           small_scope_map_module):
        subset = hop_count_distribution(
            small_mbone_module, ttls=(63,),
            scope_map=small_scope_map_module, sources=[0, 1, 2],
        )
        assert 63 in subset
        assert subset[63].histogram.sum() > 0

    def test_empty_scope_handled(self, chain_topology):
        """A TTL nobody can use still yields a well-formed result."""
        stats = hop_count_distribution(chain_topology, ttls=(1,))
        assert stats[1].histogram.sum() == 0
        assert stats[1].mean_hops == 0.0


class TestUsageTable:
    def test_rows_sorted_descending(self, mbone_stats):
        rows = usage_table(mbone_stats)
        ttls = [row["ttl"] for row in rows]
        assert ttls == sorted(ttls, reverse=True)

    def test_known_usage_labels(self, mbone_stats):
        rows = {row["ttl"]: row for row in usage_table(mbone_stats)}
        assert rows[127]["example_usage"] == "Intercontinental"
        assert rows[63]["example_usage"] == "International"
        assert rows[47]["example_usage"] == "National"
        assert rows[15]["example_usage"] == "Local"

    def test_typical_below_max(self, mbone_stats):
        for row in usage_table(mbone_stats):
            assert row["typical_hop_count"] <= row["max_hop_count"]
