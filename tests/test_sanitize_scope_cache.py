"""ScopeSanitizer and CacheSanitizer: mutation tests for SAN211/231/232.

The scope check cross-validates what the network *delivered* against
what the scope map says is audible; the cache check compares every
directory's cache with the originators' ground truth after
convergence.  Each mutation goes through the real delivery/caching
paths and then corrupts exactly one thing.
"""

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.routing.spt import ShortestPathForest
from repro.sanitize import SanitizerContext
from repro.sap.directory import SessionDirectory
from repro.sim.adapters import scoped_receiver_map
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel, Packet

SPACE = 64


def codes(context):
    return [violation.code for violation in context.violations]


def leaky_full_mesh(num_nodes):
    """A receiver map that ignores TTL scoping entirely (the bug)."""

    def receivers(source, ttl):
        return [(node, 0.01) for node in range(num_nodes)
                if node != source]

    return receivers


class TestScopeViolation:
    def test_leaky_receiver_map_records_san211(self, chain_scope_map):
        context = SanitizerContext(scope_map=chain_scope_map,
                                   scenario="test")
        scheduler = context.attach_scheduler(EventScheduler())
        network = context.attach_network(NetworkModel(
            scheduler, leaky_full_mesh(chain_scope_map.num_nodes)
        ))
        for node in range(chain_scope_map.num_nodes):
            network.listen(node, lambda receiver, packet: None)
        # need[0] = [0, 2, 18, 18, 68]: ttl 5 legally reaches node 1
        # only, but the leaky map delivers to 2, 3 and 4 as well.
        network.send(Packet(source=0, group=0, ttl=5, payload=b"x"))
        scheduler.run()
        assert codes(context) == ["SAN211", "SAN211", "SAN211"]
        assert all(v.rule == "scope-violation"
                   for v in context.violations)
        assert context.scope_sanitizer.deliveries_checked == 4

    def test_scoped_receiver_map_clean(self, chain_topology,
                                       chain_scope_map):
        context = SanitizerContext(scope_map=chain_scope_map,
                                   scenario="test")
        scheduler = context.attach_scheduler(EventScheduler())
        forest = ShortestPathForest(chain_topology, weight="delay")
        network = context.attach_network(NetworkModel(
            scheduler, scoped_receiver_map(chain_scope_map, forest)
        ))
        for node in range(chain_scope_map.num_nodes):
            network.listen(node, lambda receiver, packet: None)
        for ttl in (5, 20, 68, 127):
            network.send(Packet(source=0, group=0, ttl=ttl,
                                payload=b"x"))
        scheduler.run()
        assert context.scope_sanitizer.deliveries_checked > 0
        assert context.clean

    def test_no_scope_map_disables_check(self):
        context = SanitizerContext(scenario="test")
        scheduler = context.attach_scheduler(EventScheduler())
        network = context.attach_network(NetworkModel(
            scheduler, leaky_full_mesh(3)
        ))
        for node in range(3):
            network.listen(node, lambda receiver, packet: None)
        network.send(Packet(source=0, group=0, ttl=1, payload=b"x"))
        scheduler.run()
        assert context.scope_sanitizer.deliveries_checked == 0
        assert context.clean


def make_pair(context):
    """Two directories on a lossless full mesh, both watched."""
    scheduler = context.attach_scheduler(EventScheduler())
    network = context.attach_network(NetworkModel(
        scheduler, leaky_full_mesh(2)
    ))
    directories = []
    for node in (0, 1):
        directory = SessionDirectory(
            node=node,
            scheduler=scheduler,
            network=network,
            allocator=InformedRandomAllocator(
                SPACE, np.random.default_rng(node)
            ),
            address_space=MulticastAddressSpace.abstract(SPACE),
            username=f"user{node}",
            rng=np.random.default_rng(100 + node),
        )
        directories.append(context.watch_directory(directory))
    return scheduler, directories


class TestCacheDivergence:
    def test_synced_caches_clean(self):
        context = SanitizerContext(scenario="test")
        scheduler, (a, b) = make_pair(context)
        a.create_session("conf", ttl=63)
        scheduler.run(until=5.0)
        assert len(b.cache) == 1
        checked = context.check_convergence()
        assert checked == 1
        assert context.clean

    def test_corrupted_address_records_san231(self):
        context = SanitizerContext(scenario="test")
        scheduler, (a, b) = make_pair(context)
        session = a.create_session("conf", ttl=63)
        scheduler.run(until=5.0)
        entry = b.cache.entries()[0]
        entry.address_index = (session.address + 1) % SPACE
        context.check_convergence()
        assert codes(context) == ["SAN231"]
        assert context.violations[0].rule == "cache-divergence"

    def test_stale_version_is_legal_lag_not_divergence(self):
        # Loss can leave a cache a whole version behind; only *equal*
        # versions must agree on the address.
        context = SanitizerContext(scenario="test")
        scheduler, (a, b) = make_pair(context)
        session = a.create_session("conf", ttl=63)
        scheduler.run(until=5.0)
        own = a.own_sessions()[0]
        # The originator retreats (bumps version + address); B misses
        # the re-announcement entirely.
        a.retreat(own)
        assert own.description.version == 2
        entry = b.cache.entries()[0]
        assert entry.description.version == 1
        context.check_convergence()
        assert session.source == 0
        assert context.clean

    def test_withdrawn_session_entries_are_skipped(self):
        # A lingering entry for a withdrawn session is a legal
        # consequence of a lost DELETE, not a divergence.
        context = SanitizerContext(scenario="test")
        scheduler, (a, b) = make_pair(context)
        session = a.create_session("conf", ttl=63)
        scheduler.run(until=5.0)
        entry = b.cache.entries()[0]
        a.delete_session(session)  # B never hears the DELETE...
        entry.address_index = (session.address + 1) % SPACE
        checked = context.check_convergence()
        assert checked == 0
        assert context.clean


class TestCacheFutureVersion:
    def test_version_ahead_of_originator_records_san232(self):
        context = SanitizerContext(scenario="test")
        scheduler, (a, b) = make_pair(context)
        a.create_session("conf", ttl=63)
        scheduler.run(until=5.0)
        entry = b.cache.entries()[0]
        entry.description.version += 1  # impossible without corruption
        context.check_convergence()
        assert codes(context) == ["SAN232"]
        assert context.violations[0].rule == "cache-future-version"

    def test_explicit_directory_list_overrides_tracking(self):
        context = SanitizerContext(scenario="test")
        scheduler, (a, b) = make_pair(context)
        a.create_session("conf", ttl=63)
        scheduler.run(until=5.0)
        entry = b.cache.entries()[0]
        entry.description.version += 1
        fresh = SanitizerContext(scenario="other")
        fresh.check_convergence([a, b])
        assert codes(fresh) == ["SAN232"]
