"""Mutation suite for the ALIAS8xx escape/aliasing analysis.

Every rule in the band is exercised as a (mutant, clean twin) pair:
the mutant plants exactly the defect the rule describes and must
fire; the twin is the repaired version of the same code and must
stay silent.  This pins the analysis from both sides — a rule that
never fires is dead weight, and a rule that fires on the repaired
idiom would force suppressions all over ``src/``.

Fixture paths are placed under ``src/repro/core/`` so the classes
count as *migrating* (the ledger's SoA candidates); the seeded sweep
at the bottom varies surface details (attribute names, container
kinds) to check the detectors key on structure, not spelling.
"""

from __future__ import annotations

import random
import textwrap

import pytest

from repro.alias.analysis import AliasReport, analyze_sources
from repro.alias.rules import ALIAS_RULES

SEED = 0x1998_0902

#: Codes whose findings land in ``report.advisory``.
ADVISORY_CODES = {code for code, _, advisory, _ in ALIAS_RULES
                  if advisory}

#: Fixture path: anchors the module at repro.core.mut (migrating).
PATH = "src/repro/core/mut.py"


def report_for(src: str, path: str = PATH) -> AliasReport:
    return analyze_sources([(path, textwrap.dedent(src))])


def hard_codes(report: AliasReport) -> set:
    return {f.code for f in report.findings}


def adv_codes(report: AliasReport) -> set:
    return {f.code for f in report.advisory}


def all_codes(report: AliasReport) -> set:
    return hard_codes(report) | adv_codes(report)


# --------------------------------------------------------------------
# (rule, mutant, clean twin) triples.  The twin must not fire the
# rule under test *and* must be free of hard findings entirely.
# --------------------------------------------------------------------

MUTATIONS = [
    ("ALIAS801", """
        class SessionCache:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return self._entries
     """, """
        class SessionCache:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return list(self._entries.values())
     """),
    ("ALIAS802", """
        class SessionCache:
            def __init__(self):
                self._entries = {}

            def keys(self):
                return self._entries.keys()
     """, """
        class SessionCache:
            def __init__(self):
                self._entries = {}

            def keys(self):
                return list(self._entries.keys())
     """),
    # ALIAS802's other face: handing out a live *element* container
    # of a dict-of-lists index.
    ("ALIAS802", """
        class AddressIndex:
            def __init__(self):
                self._by_address = {}

            def add(self, address, session):
                self._by_address.setdefault(address, []).append(session)

            def same_address(self, address):
                return self._by_address[address]
     """, """
        class AddressIndex:
            def __init__(self):
                self._by_address = {}

            def add(self, address, session):
                self._by_address.setdefault(address, []).append(session)

            def same_address(self, address):
                return list(self._by_address.get(address, ()))
     """),
    # Stored caller container, then mutated: the caller's set and
    # ours are the same object.
    ("ALIAS803", """
        class ScopeZone:
            def __init__(self, members):
                self.members = members

            def join(self, node):
                self.members.add(node)
     """, """
        class ScopeZone:
            def __init__(self, members):
                self.members = set(members)

            def join(self, node):
                self.members.add(node)
     """),
    ("ALIAS804", """
        class Expiry:
            def __init__(self):
                self._entries = {}

            def sweep(self):
                for key in self._entries:
                    self._entries.pop(key)
     """, """
        class Expiry:
            def __init__(self):
                self._entries = {}

            def sweep(self):
                for key in list(self._entries):
                    self._entries.pop(key)
     """),
    ("ALIAS805", """
        REGISTRY = []

        class Session:
            def __init__(self, key):
                self.key = key

        def publish(s: Session):
            REGISTRY.append(s)
            s.key = 0
     """, """
        REGISTRY = []

        class Session:
            def __init__(self, key):
                self.key = key

        def publish(s: Session):
            s.key = 0
            REGISTRY.append(s)
     """),
    ("ALIAS806", """
        class Session:
            def __init__(self, key):
                self.key = key

        def same(a: Session, b: Session):
            return a is b
     """, """
        class Session:
            def __init__(self, key):
                self.key = key

        def same(a: Session, b: Session):
            return a.key == b.key
     """),
    ("ALIAS807", """
        class Session:
            def __init__(self, key):
                self.key = key

        def probe(s: Session):
            return id(s)
     """, """
        class Session:
            def __init__(self, key):
                self.key = key

        def probe(s: Session):
            return s.key
     """),
    ("ALIAS808", """
        class Session:
            def __init__(self, key):
                self.key = key

        def remember(table, s: Session):
            table[s] = 1
     """, """
        class Session:
            def __init__(self, key):
                self.key = key

            def __eq__(self, other):
                return self.key == other.key

            def __hash__(self):
                return hash(self.key)

        def remember(table, s: Session):
            table[s] = 1
     """),
    ("ALIAS811", """
        class World:
            def __init__(self):
                self._items = []

        WORLD = World()
     """, """
        class World:
            def __init__(self):
                self._items = []

        def make_world():
            return World()
     """),
    # Soundness boundary: a call the graph cannot resolve inside a
    # migrating class must be reported, never silently trusted.
    ("ALIAS813", """
        class Probe:
            def __init__(self, dep):
                self.dep = dep

            def fire(self):
                return self.dep.launch()
     """, """
        class Probe:
            def fire(self):
                return self._step()

            def _step(self):
                return 3
     """),
    # A defensive copy on a hot path is a cost worth surfacing; the
    # same copy off the hot path is not.
    ("ALIAS814", """
        class EventScheduler:
            def __init__(self):
                self._queue = []

            def step(self):
                total = 0
                for event in list(self._queue):
                    total += 1
                return total
     """, """
        class EventScheduler:
            def __init__(self):
                self._queue = []

            def step(self):
                total = 0
                for event in self._queue:
                    total += 1
                return total
     """),
]


@pytest.mark.parametrize(
    "rule,mutant,twin", MUTATIONS,
    ids=[f"{rule}-{i}" for i, (rule, _, _) in enumerate(MUTATIONS)])
def test_mutant_fires_and_twin_is_clean(rule, mutant, twin):
    mutated = report_for(mutant)
    assert rule in all_codes(mutated), (
        f"{rule} did not fire on its mutant; "
        f"got {sorted(all_codes(mutated))}")
    if rule in ADVISORY_CODES:
        assert rule in adv_codes(mutated)
    else:
        assert rule in hard_codes(mutated)

    repaired = report_for(twin)
    assert rule not in all_codes(repaired), (
        f"{rule} still fires on the repaired twin")
    assert not repaired.findings, (
        f"twin for {rule} has hard findings: "
        f"{[f.code for f in repaired.findings]}")


def test_every_alias_rule_is_covered():
    """Each rule in the table has a mutant (812 has its own test)."""
    covered = {rule for rule, _, _ in MUTATIONS} | {"ALIAS812"}
    assert covered == {code for code, _, _, _ in ALIAS_RULES}


# --------------------------------------------------------------------
# Interprocedural pass B: a leak in one function, the mutation in
# another, the finding at the *caller* with a via-label provenance.
# --------------------------------------------------------------------

def test_interprocedural_leak_mutation_fires_at_caller():
    report = report_for("""
        class Cache:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return self._entries

        def clobber(cache: Cache):
            xs = cache.entries()
            xs.clear()
    """)
    assert "ALIAS801" in hard_codes(report)
    mutations = [f for f in report.findings if f.code == "ALIAS803"]
    assert mutations, "pass B did not flag the caller-side mutation"
    assert any("reached via" in f.message for f in mutations), (
        "ALIAS803 lost its interprocedural provenance label")


def test_interprocedural_twin_with_copy_is_clean():
    report = report_for("""
        class Cache:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return dict(self._entries)

        def clobber(cache: Cache):
            xs = cache.entries()
            xs.clear()
    """)
    assert not report.findings


# --------------------------------------------------------------------
# ALIAS812: the ledger rollup advisory, derived from the verdict.
# --------------------------------------------------------------------

def test_blocked_core_class_gets_ledger_rollup():
    report = report_for("""
        class SessionCache:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return self._entries
    """)
    assert "ALIAS812" in adv_codes(report)
    entries = {e["qualname"]: e for e in report.ledger["entries"]}
    entry = entries["repro.core.mut.SessionCache"]
    assert entry["verdict"] == "soa-blocked-by-ALIAS801"
    assert "ALIAS801" in entry["blocking_rules"]
    rollup = [f for f in report.advisory if f.code == "ALIAS812"]
    assert any("alias-ledger.json" in f.message for f in rollup)


def test_clean_core_class_is_soa_safe():
    report = report_for("""
        class SessionCache:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return list(self._entries.values())
    """)
    assert "ALIAS812" not in adv_codes(report)
    entries = {e["qualname"]: e for e in report.ledger["entries"]}
    entry = entries["repro.core.mut.SessionCache"]
    assert entry["verdict"] == "soa-safe"
    assert entry["blocking_rules"] == []
    assert report.ledger["summary"]["soa_blocked"] == 0


def test_enum_class_is_always_soa_safe():
    report = report_for("""
        import enum

        class Phase(enum.Enum):
            IDLE = 0
            ACTIVE = 1
    """)
    entries = {e["qualname"]: e for e in report.ledger["entries"]}
    assert entries["repro.core.mut.Phase"]["verdict"] == "soa-safe"


def test_non_migrating_module_scoping():
    """Hard aliasing bugs fire everywhere; the SoA identity
    advisories and the ledger are scoped to migrating packages."""
    report = report_for("""
        class Helper:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return self._entries

        def same(a: Helper, b: Helper):
            return a is b
    """, path="src/repro/tools/mut.py")
    # The container leak is a bug regardless of any migration plan.
    assert "ALIAS801" in hard_codes(report)
    # ...but identity reliance only matters for migrating classes,
    # and the ledger only covers core/sim/sap.
    assert "ALIAS806" not in adv_codes(report)
    assert report.ledger["entries"] == []


# --------------------------------------------------------------------
# Private-method leak exemption: a _helper that never escapes the
# class may return internals; one called from outside may not.
# --------------------------------------------------------------------

def test_private_helper_leak_needs_external_caller():
    internal_only = report_for("""
        class Cache:
            def __init__(self):
                self._entries = {}

            def _raw(self):
                return self._entries

            def size(self):
                return len(self._raw())
    """)
    assert "ALIAS801" not in all_codes(internal_only)

    externally_called = report_for("""
        class Cache:
            def __init__(self):
                self._entries = {}

            def _raw(self):
                return self._entries

        def peek(cache: Cache):
            return cache._raw()
    """)
    assert "ALIAS801" in hard_codes(externally_called)


# --------------------------------------------------------------------
# Suppressions: the escape hatch works and is counted.
# --------------------------------------------------------------------

def test_suppression_silences_and_counts():
    report = report_for("""
        class Cache:
            def __init__(self):
                self._entries = {}

            def entries(self):
                return self._entries  # simlint: disable=leaked-internal-container (test fixture)
    """)
    assert "ALIAS801" not in hard_codes(report)
    assert report.suppressed >= 1


# --------------------------------------------------------------------
# Seeded sweep: the leak detector keys on structure, not on the
# attribute spelling or container kind the fixture happened to use.
# --------------------------------------------------------------------

def test_seeded_leak_sweep():
    rng = random.Random(SEED)
    kinds = ["{}", "[]", "set()", "dict()", "list()"]
    for trial in range(8):
        attr = "_" + "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(6))
        method = "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(5))
        kind = rng.choice(kinds)
        src = f"""
            class Holder:
                def __init__(self):
                    self.{attr} = {kind}

                def {method}(self):
                    return self.{attr}
        """
        report = report_for(src)
        assert "ALIAS801" in hard_codes(report), (
            f"trial {trial}: attr={attr} kind={kind} did not fire")
        fixed = report_for(src.replace(
            f"return self.{attr}", f"return list(self.{attr})"))
        assert not fixed.findings, f"trial {trial}: copy still fires"
