"""Birthday model tests (fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.birthday import (
    allocations_for_clash_probability,
    clash_probability,
    expected_allocations_before_clash,
)


class TestClashProbability:
    def test_zero_allocations_no_clash(self):
        assert clash_probability(10_000, 0) == 0.0

    def test_one_allocation_no_clash(self):
        assert clash_probability(10_000, 1) == 0.0

    def test_classic_birthday_365(self):
        """23 people, 365 days: the canonical 50.7%."""
        assert clash_probability(365, 23) == pytest.approx(0.5073, abs=1e-3)

    def test_fig4_anchor(self):
        """Fig. 4: a space of 10,000 crosses p=0.5 near 118."""
        assert clash_probability(10_000, 118) == pytest.approx(0.5,
                                                               abs=0.01)
        assert clash_probability(10_000, 50) < 0.2
        assert clash_probability(10_000, 300) > 0.98

    def test_more_than_space_certain(self):
        import math
        assert clash_probability(10, 11) == 1.0
        # k = n is NOT certain: all-distinct has probability n!/n^n.
        expected = 1.0 - math.factorial(10) / 10 ** 10
        assert clash_probability(10, 10) == pytest.approx(expected,
                                                          abs=1e-9)

    def test_vector_input(self):
        out = clash_probability(10_000, np.array([0, 118, 400]))
        assert out.shape == (3,)
        assert out[0] == 0.0
        assert out[2] > out[1] > 0.4

    def test_monotone_in_allocations(self):
        ks = np.arange(0, 500)
        probs = clash_probability(10_000, ks)
        assert (np.diff(probs) >= 0).all()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            clash_probability(0, 5)
        with pytest.raises(ValueError):
            clash_probability(10, -1)

    @given(st.integers(min_value=2, max_value=10 ** 6),
           st.integers(min_value=0, max_value=1000))
    def test_property_valid_probability(self, n, k):
        p = clash_probability(n, k)
        assert 0.0 <= p <= 1.0


class TestInverseAndExpectation:
    def test_inverse_matches_forward(self):
        k = allocations_for_clash_probability(10_000, 0.5)
        assert clash_probability(10_000, k) >= 0.5
        assert clash_probability(10_000, k - 1) < 0.5

    def test_sqrt_scaling(self):
        """O(sqrt n): quadrupling the space doubles the count."""
        k1 = allocations_for_clash_probability(10_000, 0.5)
        k4 = allocations_for_clash_probability(40_000, 0.5)
        assert k4 / k1 == pytest.approx(2.0, rel=0.05)

    def test_expected_allocations_sqrt(self):
        e = expected_allocations_before_clash(10_000)
        assert e == pytest.approx(np.sqrt(np.pi * 10_000 / 2) + 2 / 3)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            allocations_for_clash_probability(100, 0.0)
        with pytest.raises(ValueError):
            allocations_for_clash_probability(100, 1.0)
