"""Packet-level forwarding tests + ScopeMap cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.forwarding import ForwardedPacket, ForwardingEngine
from repro.routing.scoping import ScopeMap
from repro.sim.events import EventScheduler
from repro.topology.graph import Topology
from repro.topology.mbone import MboneParams, generate_mbone


class TestFlood:
    def test_chain_reachability(self, chain_topology):
        engine = ForwardingEngine(chain_topology)
        # need[0] = [0, 2, 18, 18, 68]
        assert engine.reachable_set(0, 1) == {0}
        assert engine.reachable_set(0, 2) == {0, 1}
        assert engine.reachable_set(0, 18) == {0, 1, 2, 3}
        assert engine.reachable_set(0, 68) == {0, 1, 2, 3, 4}

    def test_records_carry_hops_and_ttl(self, chain_topology):
        engine = ForwardingEngine(chain_topology)
        records = {r.node: r for r in engine.flood(0, 18)}
        assert records[0].hops == 0
        assert records[3].hops == 3
        assert records[3].remaining_ttl == 15
        assert records[1].remaining_ttl == 17

    def test_delivery_times_accumulate_link_delays(self, chain_topology):
        engine = ForwardingEngine(chain_topology)
        records = {r.node: r for r in engine.flood(0, 255)}
        assert records[1].at_time == pytest.approx(0.010)
        assert records[2].at_time == pytest.approx(0.030)
        assert records[4].at_time == pytest.approx(0.100)

    def test_ttl_zero(self, chain_topology):
        engine = ForwardingEngine(chain_topology)
        assert engine.reachable_set(0, 0) == {0}

    def test_invalid_ttl(self, chain_topology):
        engine = ForwardingEngine(chain_topology)
        with pytest.raises(ValueError):
            engine.flood(0, 256)

    def test_drop_counter(self, chain_topology):
        engine = ForwardingEngine(chain_topology)
        engine.flood(0, 2)
        assert engine.packets_dropped_ttl >= 1


class TestCrossValidation:
    def test_matches_scope_map_on_mbone(self):
        topo = generate_mbone(MboneParams(total_nodes=120, seed=9))
        scope_map = ScopeMap.from_topology(topo)
        engine = ForwardingEngine(topo)
        rng = np.random.default_rng(0)
        for __ in range(25):
            source = int(rng.integers(0, topo.num_nodes))
            ttl = int(rng.choice([1, 15, 31, 47, 63, 127, 191]))
            mechanism = engine.reachable_set(source, ttl)
            analysis = set(np.nonzero(scope_map.reachable(source,
                                                          ttl))[0])
            assert mechanism == analysis, (source, ttl)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(2, 14))
    def test_property_matches_scope_map_random_trees(self, seed, n):
        """On random small trees the hop-by-hop mechanism and the
        vectorised analysis agree for every (source, ttl)."""
        rng = np.random.default_rng(seed)
        topo = Topology()
        for __ in range(n):
            topo.add_node()
        for i in range(1, n):
            topo.add_link(
                int(rng.integers(0, i)), i,
                metric=int(rng.integers(1, 3)),
                threshold=int(rng.choice([1, 1, 16, 48, 64])),
            )
        scope_map = ScopeMap.from_topology(topo)
        engine = ForwardingEngine(topo)
        for source in range(n):
            for ttl in (1, 5, 16, 17, 48, 66, 100, 255):
                mechanism = engine.reachable_set(source, ttl)
                analysis = set(np.nonzero(
                    scope_map.reachable(source, ttl)
                )[0])
                assert mechanism == analysis


class TestScheduledForwarding:
    def test_taps_fire_in_delay_order(self, chain_topology):
        sched = EventScheduler()
        engine = ForwardingEngine(chain_topology, scheduler=sched)
        taps = []
        packet = ForwardedPacket(source=0, group=1, ttl=255,
                                 payload="hello")
        engine.send(packet, lambda node, p: taps.append(
            (node, sched.now, p.ttl)
        ))
        sched.run()
        nodes = [t[0] for t in taps]
        times = [t[1] for t in taps]
        assert nodes == [0, 1, 2, 3, 4]
        assert times == sorted(times)
        assert times[4] == pytest.approx(0.100)
        # TTL decremented along the way.
        assert taps[4][2] == 251

    def test_scoped_scheduled_delivery(self, chain_topology):
        sched = EventScheduler()
        engine = ForwardingEngine(chain_topology, scheduler=sched)
        taps = []
        engine.send(ForwardedPacket(source=0, group=1, ttl=18),
                    lambda node, p: taps.append(node))
        sched.run()
        assert taps == [0, 1, 2, 3]

    def test_send_without_scheduler_raises(self, chain_topology):
        engine = ForwardingEngine(chain_topology)
        with pytest.raises(RuntimeError):
            engine.send(ForwardedPacket(source=0, group=1, ttl=8),
                        lambda node, p: None)

    def test_payload_preserved(self, chain_topology):
        sched = EventScheduler()
        engine = ForwardingEngine(chain_topology, scheduler=sched)
        payloads = []
        engine.send(ForwardedPacket(source=0, group=1, ttl=255,
                                    payload={"k": 1}),
                    lambda node, p: payloads.append(p.payload))
        sched.run()
        assert all(p == {"k": 1} for p in payloads)
