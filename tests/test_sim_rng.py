"""RandomStreams determinism tests."""

import numpy as np

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(seed=1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_different_sequences(self):
        streams = RandomStreams(seed=1)
        a = streams.get("a").random(8)
        b = streams.get("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        first = RandomStreams(seed=9).get("loss").random(16)
        second = RandomStreams(seed=9).get("loss").random(16)
        assert np.allclose(first, second)

    def test_creation_order_does_not_matter(self):
        one = RandomStreams(seed=3)
        one.get("x")
        x_then = one.get("y").random(4)
        two = RandomStreams(seed=3)
        y_only = two.get("y").random(4)
        assert np.allclose(x_then, y_only)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("s").random(8)
        b = RandomStreams(seed=2).get("s").random(8)
        assert not np.allclose(a, b)

    def test_fork_is_independent(self):
        base = RandomStreams(seed=5)
        fork1 = base.fork(1).get("s").random(8)
        fork2 = base.fork(2).get("s").random(8)
        assert not np.allclose(fork1, fork2)

    def test_fork_reproducible(self):
        a = RandomStreams(seed=5).fork(7).get("s").random(8)
        b = RandomStreams(seed=5).fork(7).get("s").random(8)
        assert np.allclose(a, b)
