"""RandomStreams determinism tests."""

import numpy as np

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(seed=1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_different_sequences(self):
        streams = RandomStreams(seed=1)
        a = streams.get("a").random(8)
        b = streams.get("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        first = RandomStreams(seed=9).get("loss").random(16)
        second = RandomStreams(seed=9).get("loss").random(16)
        assert np.allclose(first, second)

    def test_creation_order_does_not_matter(self):
        one = RandomStreams(seed=3)
        one.get("x")
        x_then = one.get("y").random(4)
        two = RandomStreams(seed=3)
        y_only = two.get("y").random(4)
        assert np.allclose(x_then, y_only)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("s").random(8)
        b = RandomStreams(seed=2).get("s").random(8)
        assert not np.allclose(a, b)

    def test_fork_is_independent(self):
        base = RandomStreams(seed=5)
        fork1 = base.fork(1).get("s").random(8)
        fork2 = base.fork(2).get("s").random(8)
        assert not np.allclose(fork1, fork2)

    def test_fork_reproducible(self):
        a = RandomStreams(seed=5).fork(7).get("s").random(8)
        b = RandomStreams(seed=5).fork(7).get("s").random(8)
        assert np.allclose(a, b)


class TestSpawnKeyDeterminism:
    """The crc32-based spawn keys are part of the determinism contract:
    stream identity must not depend on Python's per-process str hash."""

    def test_spawn_key_is_crc32_of_name(self):
        import zlib

        streams = RandomStreams(seed=11)
        expected = np.random.default_rng(np.random.SeedSequence(
            entropy=11, spawn_key=(zlib.crc32(b"loss"),),
        )).random(8)
        assert np.allclose(streams.get("loss").random(8), expected)

    def test_streams_stable_across_hash_randomisation(self):
        """Draws must be identical under different PYTHONHASHSEED,
        i.e. across independent worker processes."""
        import os
        import subprocess
        import sys

        snippet = (
            "from repro.sim.rng import RandomStreams\n"
            "s = RandomStreams(seed=42)\n"
            "print(list(s.get('loss').random(4)),"
            " list(s.get('delay').random(4)))\n"
        )
        outputs = []
        for hash_seed in ("0", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            result = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, env=env,
                cwd=os.path.dirname(os.path.dirname(__file__)),
            )
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]

    def test_many_names_all_distinct(self):
        streams = RandomStreams(seed=4)
        first_draws = {
            name: streams.get(name).random()
            for name in (f"component.{i}" for i in range(50))
        }
        assert len(set(first_draws.values())) == 50


class TestDerivedStream:
    def test_deterministic_for_name(self):
        from repro.sim.rng import derived_stream

        assert np.allclose(derived_stream("sap.announcer").random(8),
                           derived_stream("sap.announcer").random(8))

    def test_distinct_names_distinct_sequences(self):
        from repro.sim.rng import derived_stream

        a = derived_stream("core.allocator").random(8)
        b = derived_stream("topology.mcollect").random(8)
        assert not np.allclose(a, b)

    def test_matches_randomstreams_seed_zero(self):
        from repro.sim.rng import derived_stream

        expected = RandomStreams(seed=0).get("x").random(8)
        assert np.allclose(derived_stream("x").random(8), expected)

    def test_bare_components_are_replayable(self):
        """The five formerly-unseeded components now fall back to
        derived streams: two bare constructions draw identically."""
        from repro.sap.response_timer import UniformDelayTimer

        first = UniformDelayTimer(0.0, 1.0).sample_many(8)
        second = UniformDelayTimer(0.0, 1.0).sample_many(8)
        assert np.allclose(first, second)
