"""Fuzz campaign contract: deterministic, shardable, cache-sound."""

import json

import pytest

from repro.scenario.cache import RunCache
from repro.scenario.fuzz import (
    fuzz_stream_key,
    run_fuzz,
    run_row,
    spec_for_run,
)

SEED = 0x19980902
BUDGET = 40_000
RUNS = 3


def report_bytes(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestDeterminism:
    def test_two_campaigns_are_byte_identical(self):
        first = run_fuzz(SEED, runs=RUNS, max_events=BUDGET,
                         shrink=False)
        second = run_fuzz(SEED, runs=RUNS, max_events=BUDGET,
                          shrink=False)
        assert report_bytes(first) == report_bytes(second)

    def test_rows_are_keyed_by_global_index(self):
        report = run_fuzz(SEED, runs=RUNS, max_events=BUDGET,
                          shrink=False)
        assert [row["index"] for row in report.rows] == list(range(RUNS))
        for row in report.rows:
            assert row["digest"] == spec_for_run(row["index"],
                                                 SEED).digest()


class TestFleetSharding:
    def test_worker_count_cannot_change_the_report(self):
        inline = run_fuzz(SEED, runs=RUNS, max_events=BUDGET,
                          shrink=False)
        sharded = run_fuzz(SEED, runs=RUNS, max_events=BUDGET,
                           jobs=2, shrink=False)
        assert report_bytes(inline) == report_bytes(sharded)


class TestRunCache:
    def test_warm_cache_reproduces_the_cold_report(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(path)
        cold = run_fuzz(SEED, runs=RUNS, max_events=BUDGET,
                        shrink=False, cache=cache)
        assert cache.save()

        warm_cache = RunCache(path)
        warm = run_fuzz(SEED, runs=RUNS, max_events=BUDGET,
                        shrink=False, cache=warm_cache)
        assert report_bytes(cold) == report_bytes(warm)
        assert warm_cache.hits >= RUNS

    def test_signature_mismatch_discards_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(path)
        cache.put("k", {"codes": []})
        cache.save()
        with open(path, "r+", encoding="utf-8") as handle:
            payload = json.load(handle)
            payload["signature"] = "stale"
            handle.seek(0)
            json.dump(payload, handle)
            handle.truncate()
        assert RunCache(path).entries == {}


class TestStreamKeys:
    def test_fuzz_keys_live_in_the_scenario_namespace(self):
        assert fuzz_stream_key(7) == "scenario/fuzz/run-7"

    def test_row_digest_is_stable_across_processes(self):
        # spec_for_run is pure in (index, seed): the digest a worker
        # computes equals the parent's.
        row = run_row(1, SEED, BUDGET)
        assert row["digest"] == spec_for_run(1, SEED).digest()


class TestValidation:
    def test_zero_runs_is_a_usage_error(self):
        with pytest.raises(ValueError, match="runs"):
            run_fuzz(SEED, runs=0)


class TestCounterexamples:
    def test_artifacts_carry_everything_a_replay_needs(self):
        report = run_fuzz(SEED, runs=1, max_events=BUDGET,
                          shrink=False)
        assert report.counterexamples  # run 0 violates at this seed
        artifact = report.counterexamples[0]["artifact"]
        for field in ("spec", "seed", "max_events", "digest",
                      "trace_sha256"):
            assert field in artifact
