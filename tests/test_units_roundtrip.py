"""Round-trip laws for the int-level address mapping.

The array-backed core works in dense indices and absolute 32-bit
ints; these tests pin the conversion laws at exactly the block edges
the UNIT711/713 rules police — index 0, ``size - 1``, one past the
end, and the 224/4 boundary itself — plus seeded property-style
sweeps over random interior points.
"""

import random

import pytest

from repro.core.address_space import (
    MULTICAST_BASE,
    MULTICAST_END,
    MULTICAST_TOTAL,
    MulticastAddressSpace,
    int_to_ip,
    ip_to_int,
)

SEED = 0xAD4C  # fixed so failures reproduce


SPACES = [
    MulticastAddressSpace.sdr_dynamic(),
    MulticastAddressSpace.admin_local_scope(),
    MulticastAddressSpace.full_ipv4(),
    MulticastAddressSpace.abstract(1),          # degenerate: one slot
    MulticastAddressSpace.abstract(10_000),
    # a block flush against the very end of multicast space
    MulticastAddressSpace(MULTICAST_END - 256, 256, name="tail"),
]


def space_id(space):
    return space.name


class TestIpStringRoundTrip:
    @pytest.mark.parametrize("dotted", [
        "224.0.0.0", "224.2.128.0", "239.255.0.0",
        "239.255.255.255", "0.0.0.0", "255.255.255.255",
    ])
    def test_named_corners(self, dotted):
        assert int_to_ip(ip_to_int(dotted)) == dotted

    def test_seeded_sweep(self):
        rng = random.Random(SEED)
        for __ in range(200):
            value = rng.randint(0, 2 ** 32 - 1)
            assert ip_to_int(int_to_ip(value)) == value

    def test_multicast_boundary_values(self):
        assert ip_to_int("224.0.0.0") == MULTICAST_BASE
        assert ip_to_int("240.0.0.0") == MULTICAST_END
        assert MULTICAST_END - MULTICAST_BASE == MULTICAST_TOTAL \
            == 2 ** 28

    @pytest.mark.parametrize("bad", [
        "224.0.0", "224.0.0.0.0", "224.0.0.256", "224.0.0.-1",
        "not.an.ip.addr", "",
    ])
    def test_malformed_strings_raise(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_out_of_range_int_raises(self):
        with pytest.raises(ValueError):
            int_to_ip(2 ** 32)
        with pytest.raises(ValueError):
            int_to_ip(-1)


class TestIndexAddressRoundTrip:
    @pytest.mark.parametrize("space", SPACES, ids=space_id)
    def test_edge_indices_round_trip(self, space):
        for index in {0, space.size - 1, space.size // 2}:
            addr = space.index_to_address(index)
            assert space.contains_address(addr)
            assert space.address_to_index(addr) == index
            # the dotted-quad path agrees with the int path
            assert space.ip_to_index(space.index_to_ip(index)) == index

    @pytest.mark.parametrize("space", SPACES, ids=space_id)
    def test_one_past_the_end_raises(self, space):
        with pytest.raises(IndexError):
            space.index_to_address(space.size)
        with pytest.raises(IndexError):
            space.index_to_address(-1)

    @pytest.mark.parametrize("space", SPACES, ids=space_id)
    def test_addresses_just_outside_the_block_raise(self, space):
        for addr in (space.base - 1, space.base + space.size):
            assert not space.contains_address(addr)
            with pytest.raises(ValueError):
                space.address_to_index(addr)

    def test_full_space_reaches_multicast_end_minus_one(self):
        space = MulticastAddressSpace.full_ipv4()
        last = space.index_to_address(space.size - 1)
        assert last == MULTICAST_END - 1
        assert int_to_ip(last) == "239.255.255.255"
        with pytest.raises(ValueError):
            space.address_to_index(MULTICAST_END)

    @pytest.mark.parametrize("space", SPACES, ids=space_id)
    def test_seeded_interior_round_trip(self, space):
        rng = random.Random(SEED ^ space.size)
        for __ in range(50):
            index = rng.randrange(space.size)
            addr = space.index_to_address(index)
            assert space.base <= addr < space.base + space.size
            assert space.address_to_index(addr) == index

    def test_index_to_ip_delegates_to_the_int_path(self):
        space = MulticastAddressSpace.sdr_dynamic()
        assert space.index_to_ip(0) == int_to_ip(space.base)
        assert space.index_to_ip(space.size - 1) == \
            int_to_ip(space.base + space.size - 1)
        with pytest.raises(IndexError):
            space.index_to_ip(space.size)
