"""ObsContext probes exercised against small real simulations."""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.allocator import VisibleSet
from repro.core.informed import InformedRandomAllocator
from repro.obs import ObsContext
from repro.sap.directory import SessionDirectory
from repro.sap.announcer import FixedIntervalStrategy
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel

SPACE = MulticastAddressSpace.abstract(8)
NODES = 3


def full_mesh(source, ttl):
    return [(node, 0.01) for node in range(NODES)]


class FakeWall:
    """Deterministic wall clock: every reading advances one step."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_rig(context):
    scheduler = context.attach_scheduler(EventScheduler())
    network = context.attach_network(NetworkModel(scheduler, full_mesh))
    directories = []
    for node in range(NODES):
        directory = SessionDirectory(
            node, scheduler, network,
            InformedRandomAllocator(SPACE.size,
                                    np.random.default_rng(node)),
            SPACE,
            strategy_factory=lambda: FixedIntervalStrategy(5.0),
            rng=np.random.default_rng(100 + node),
        )
        directories.append(context.watch_directory(directory))
    return scheduler, network, directories


@pytest.fixture()
def observed_run():
    """One small observed run: a session announced for 20 seconds.

    ``sample_rate=1`` turns sampling off so the per-event assertions
    below (histogram counts equal to counter values) stay exact.
    """
    context = ObsContext(scenario="unit", wall=FakeWall(),
                         sample_rate=1)
    scheduler, network, directories = make_rig(context)
    directories[0].create_session("obs-test", ttl=127)
    scheduler.run(until=20.0)
    context.finish()
    return context, scheduler, network, directories


class TestSchedulerProbe:
    def test_counts_and_times_every_event(self):
        context = ObsContext(wall=FakeWall(step=0.001), sample_rate=1)
        scheduler = context.attach_scheduler(EventScheduler())
        for index in range(3):
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                float(index), lambda: None
            )
        scheduler.run()
        context.finish()  # read barrier: syncs the native totals
        probe = context.scheduler_probe
        assert probe.events.value == 3
        assert probe.scheduled.value == 3
        assert probe.heap_depth_max == 3
        # FakeWall advances exactly one step between the two readings
        # around each callback, so every observation is one step.
        assert probe.latency.count == 3
        assert probe.latency.sum == pytest.approx(0.003)

    def test_events_match_scheduler_counter(self, observed_run):
        context, scheduler, __, __dirs = observed_run
        assert context.scheduler_probe.events.value == \
            scheduler.events_run


class TestNetworkProbe:
    def test_traffic_counters_accumulate(self, observed_run):
        context, __, network, __dirs = observed_run
        probe = context.network_probe
        assert probe.sent.value == network.packets_sent
        assert probe.delivered.value == network.packets_delivered
        assert probe.sent.value > 0
        # Full mesh of three nodes: every send reaches the two peers.
        assert probe.fanout.count == probe.sent.value
        assert probe.fanout.mean == pytest.approx(2.0)
        # Simulated delivery latency is the 10 ms mesh delay.
        assert probe.delivery_latency.count == probe.delivered.value
        assert probe.delivery_latency.mean == pytest.approx(0.01)


class TestDirectoryProbes:
    def test_cache_sees_misses_then_hits(self, observed_run):
        context, __, __net, __dirs = observed_run
        # 20 s of 5 s re-announcements: first observation per peer is
        # a miss, every refresh after that a hit.
        assert 0.0 < context.cache_hit_rate() < 1.0

    def test_clash_handler_is_hooked(self, observed_run):
        __, __sched, __net, directories = observed_run
        for directory in directories:
            assert directory.clash_handler._obs is not None
            assert directory.cache._obs is not None

    def test_announcement_and_session_counters(self, observed_run):
        context, __, __net, __dirs = observed_run
        created = context.registry.get("sap_sessions_created_total",
                                       {"node": 0})
        assert created.value == 1
        rx = sum(
            context.registry.get("sap_announcements_rx_total",
                                 {"node": node}).value
            for node in range(NODES)
        )
        assert rx > 0

    def test_announce_span_nests_allocate(self, observed_run):
        context, __, __net, __dirs = observed_run
        announces = [root for root in context.spans.roots()
                     if root.name == "announce"]
        assert len(announces) == 1
        assert [child.name for child in announces[0].children] == \
            ["allocate"]
        assert context.spans.nested_root_count() >= 1


class TestWatchAllocator:
    def test_forced_allocations_are_counted(self):
        context = ObsContext(wall=FakeWall())
        allocator = context.watch_allocator(
            InformedRandomAllocator(4, np.random.default_rng(0))
        )
        full = VisibleSet(np.arange(4), np.full(4, 127))
        result = allocator.allocate(127, full)
        assert result.forced
        allocator.allocate(127, VisibleSet.empty())
        labels = {"allocator": allocator.name, "node": "-"}
        registry = context.registry
        assert registry.get("alloc_allocations_total", labels).value == 2
        assert registry.get("alloc_forced_total", labels).value == 1
        latency = registry.get("alloc_latency_seconds",
                               {"allocator": allocator.name})
        assert latency.count == 2

    def test_watching_twice_does_not_double_count(self):
        context = ObsContext(wall=FakeWall())
        allocator = InformedRandomAllocator(4, np.random.default_rng(0))
        context.watch_allocator(allocator)
        context.watch_allocator(allocator)
        allocator.allocate(127, VisibleSet.empty())
        labels = {"allocator": allocator.name, "node": "-"}
        assert context.registry.get("alloc_allocations_total",
                                    labels).value == 1


class TestFinishAndReport:
    def test_finish_sets_run_gauges(self, observed_run):
        context, scheduler, network, __dirs = observed_run
        registry = context.registry
        assert registry.get("sim_wall_seconds").value > 0
        assert registry.get("sim_time_seconds").value == scheduler.now
        assert context.events_per_wall_second > 0
        assert registry.get("sim_heap_depth_max").value > 0
        assert registry.get("net_packets_lost_total").value == \
            network.packets_lost

    def test_finish_is_idempotent(self, observed_run):
        context, __, __net, __dirs = observed_run
        before = context.registry.get("sim_wall_seconds").value
        events = context.scheduler_probe.events.value
        context.finish()
        assert context.registry.get("sim_wall_seconds").value == before
        assert context.scheduler_probe.events.value == events

    def test_run_is_clean(self, observed_run):
        context, __, __net, __dirs = observed_run
        assert context.clean
        assert context.issues == []

    def test_report_shape(self, observed_run):
        context, __, __net, __dirs = observed_run
        report = context.report()
        assert report["scenario"] == "unit"
        block = report["scheduler"]
        assert block["events_run"] > 0
        assert block["events_per_wall_second"] > 0
        latency = block["callback_latency_seconds"]
        assert latency["count"] == block["events_run"]
        assert len(latency["counts"]) == len(latency["bounds"]) + 1
        assert report["findings"] == {"count": 0, "findings": []}
        assert report["spans"]["started"] == context.spans.started
        assert "sim_events_total" in report["metrics"]
