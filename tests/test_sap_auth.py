"""SAP authentication tests, including the forged-retreat attack."""

import pytest
from hypothesis import given, strategies as st

from repro.sap.auth import (
    MAC_LENGTH,
    AuthenticationError,
    SapAuthenticator,
)
from repro.sap.messages import SapMessage
from repro.sap.sdp import SessionDescription

PAYLOAD = SessionDescription(name="talk", ttl=63).format()


class TestSealOpen:
    def test_roundtrip(self):
        auth = SapAuthenticator(b"secret")
        message = SapMessage.announce(3, PAYLOAD)
        sealed = auth.seal(message)
        assert auth.open(sealed) == message

    def test_wrong_key_rejected(self):
        signer = SapAuthenticator(b"alpha")
        verifier = SapAuthenticator(b"bravo")
        sealed = signer.seal(SapMessage.announce(3, PAYLOAD))
        with pytest.raises(AuthenticationError):
            verifier.open(sealed)

    def test_tampered_payload_rejected(self):
        auth = SapAuthenticator(b"secret")
        sealed = bytearray(auth.seal(SapMessage.announce(3, PAYLOAD)))
        # Flip one bit of a payload character (stays valid UTF-8, so
        # the failure is the MAC, not the codec).
        sealed[-2] ^= 0x01
        with pytest.raises(AuthenticationError):
            auth.open(bytes(sealed))

    def test_tampered_origin_rejected(self):
        """The origin is covered by the MAC — an attacker cannot
        re-attribute a captured announcement."""
        auth = SapAuthenticator(b"secret")
        sealed = bytearray(auth.seal(SapMessage.announce(3, PAYLOAD)))
        # Origin lives in the inner SAP header (bytes 4..8 of body).
        offset = 2 + MAC_LENGTH + 4
        sealed[offset + 3] ^= 0x01
        with pytest.raises(AuthenticationError):
            auth.open(bytes(sealed))

    def test_truncation_rejected(self):
        auth = SapAuthenticator(b"secret")
        sealed = auth.seal(SapMessage.announce(3, PAYLOAD))
        with pytest.raises(AuthenticationError):
            auth.open(sealed[:1])
        with pytest.raises(AuthenticationError):
            auth.open(sealed[:10])

    def test_verify_returns_none_on_failure(self):
        auth = SapAuthenticator(b"secret")
        assert auth.verify(b"garbage") is None
        message = SapMessage.announce(3, PAYLOAD)
        assert auth.verify(auth.seal(message)) == message

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            SapAuthenticator(b"")

    @given(st.binary(min_size=1, max_size=32), st.integers(0, 2 ** 16))
    def test_property_roundtrip_any_key(self, key, origin_base):
        auth = SapAuthenticator(key)
        message = SapMessage.announce(origin_base % 1000, PAYLOAD)
        assert auth.open(auth.seal(message)) == message

    @given(st.binary(max_size=80))
    def test_property_fuzz_never_crashes(self, data):
        auth = SapAuthenticator(b"secret")
        result = auth.verify(data)
        # Random bytes essentially never carry a valid MAC.
        assert result is None


class TestForgedRetreatAttack:
    def test_unauthenticated_directory_can_be_displaced(self):
        """Without auth, a forged clashing announcement makes a young
        session retreat — the DoS the footnote warns about."""
        import numpy as np
        from repro.core.address_space import MulticastAddressSpace
        from repro.core.informed import InformedRandomAllocator
        from repro.sap.directory import SessionDirectory
        from repro.sim.events import EventScheduler
        from repro.sim.network import NetworkModel, Packet

        space = MulticastAddressSpace.abstract(64)
        sched = EventScheduler()
        net = NetworkModel(sched,
                           lambda s, t: [(n, 0.01) for n in range(3)])
        victim = SessionDirectory(
            0, sched, net,
            InformedRandomAllocator(space.size,
                                    np.random.default_rng(1)),
            space, rng=np.random.default_rng(1),
        )
        session = victim.create_session("victim", ttl=63)
        original = session.address
        forged_description = SessionDescription(
            name="evil", session_id=666,
            connection_address=space.index_to_ip(original), ttl=63,
        )
        forged = SapMessage.announce(2, forged_description.format())
        net.send(Packet(source=2, group=0, ttl=63,
                        payload=forged.encode()))
        sched.run(until=5.0)
        # The young session retreated (or defended, depending on the
        # tie-break) — either way the attacker influenced it.
        assert victim.clash_handler.clashes_seen >= 1


class TestAuthenticatedDirectory:
    def make_world(self, key_for):
        """key_for: node -> key bytes or None."""
        import numpy as np
        from repro.core.address_space import MulticastAddressSpace
        from repro.core.informed import InformedRandomAllocator
        from repro.sap.directory import SessionDirectory
        from repro.sim.events import EventScheduler
        from repro.sim.network import NetworkModel

        space = MulticastAddressSpace.abstract(64)
        sched = EventScheduler()
        net = NetworkModel(sched,
                           lambda s, t: [(n, 0.01) for n in range(4)])
        dirs = {}
        for node in range(3):
            key = key_for(node)
            auth = SapAuthenticator(key) if key else None
            dirs[node] = SessionDirectory(
                node, sched, net,
                InformedRandomAllocator(space.size,
                                        np.random.default_rng(node)),
                space, rng=np.random.default_rng(node),
                authenticator=auth,
            )
        return sched, net, space, dirs

    def test_shared_key_directories_interoperate(self):
        sched, net, space, dirs = self.make_world(lambda n: b"team")
        dirs[0].create_session("signed", ttl=63)
        sched.run(until=5.0)
        assert len(dirs[1].cache) == 1
        assert dirs[1].auth_failures == 0

    def test_unauthenticated_sender_rejected(self):
        sched, net, space, dirs = self.make_world(
            lambda n: b"team" if n != 2 else None
        )
        dirs[2].create_session("unsigned", ttl=63)
        sched.run(until=5.0)
        assert len(dirs[0].cache) == 0
        assert dirs[0].auth_failures >= 1

    def test_forged_retreat_attack_blocked(self):
        """With auth on, the footnote-8 DoS no longer works: a forged
        clashing announcement is dropped before the clash handler."""
        from repro.sap.messages import SapMessage
        from repro.sap.sdp import SessionDescription
        from repro.sim.network import Packet

        sched, net, space, dirs = self.make_world(lambda n: b"team")
        victim = dirs[0]
        session = victim.create_session("victim", ttl=63)
        original = session.address
        forged_description = SessionDescription(
            name="evil", session_id=666,
            connection_address=space.index_to_ip(original), ttl=63,
        )
        forged = SapMessage.announce(9, forged_description.format())
        net.send(Packet(source=9, group=0, ttl=63,
                        payload=forged.encode()))
        sched.run(until=5.0)
        assert victim.clash_handler.clashes_seen == 0
        assert victim.own_sessions()[0].session.address == original
        assert victim.auth_failures >= 1
