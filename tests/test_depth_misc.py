"""Depth tests: map-file property round-trips, directory internals,
hierarchical capacity monotonicity, scope-map cache behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.scaling import hierarchical_capacity
from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.routing.scoping import ScopeMap
from repro.sap.directory import SessionDirectory
from repro.sap.messages import SapMessage
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.topology.graph import Topology
from repro.topology.mapfile import dump_map, parse_map


class TestMapfileProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(2, 20))
    def test_property_random_topology_roundtrip(self, seed, n):
        rng = np.random.default_rng(seed)
        topo = Topology()
        for i in range(n):
            label = f"node-{i}" if rng.random() < 0.5 else None
            pos = ((float(rng.random()), float(rng.random()))
                   if rng.random() < 0.5 else None)
            topo.add_node(position=pos, label=label)
        for i in range(1, n):
            topo.add_link(
                int(rng.integers(0, i)), i,
                metric=int(rng.integers(1, 31)),
                threshold=int(rng.integers(1, 255)),
                delay=float(rng.random()),
            )
        again = parse_map(dump_map(topo))
        assert again.num_nodes == topo.num_nodes
        assert again.num_links == topo.num_links
        for link in topo.links():
            twin = again.link(link.u, link.v)
            assert twin.metric == link.metric
            assert twin.threshold == link.threshold
            assert twin.delay == link.delay
        for node in topo.nodes():
            assert again.label(node) == topo.label(node)


class TestScopeMapCaching:
    def test_reach_cache_is_keyed_by_source_and_ttl(self,
                                                    chain_scope_map):
        a = chain_scope_map.reachable(0, 18)
        b = chain_scope_map.reachable(0, 19)
        c = chain_scope_map.reachable(1, 18)
        assert a is chain_scope_map.reachable(0, 18)
        assert b is not a
        assert c is not a

    def test_overlap_uses_cached_masks(self, chain_scope_map):
        # Warm the cache, then ensure repeated queries agree.
        first = chain_scope_map.scopes_overlap(0, 18, 3, 18)
        second = chain_scope_map.scopes_overlap(0, 18, 3, 18)
        assert first == second == True  # noqa: E712


class TestHierarchicalCapacityShape:
    def test_monotone_in_prefix_timeliness(self):
        values = [
            hierarchical_capacity(
                prefix_i_fraction=f
            ).prefixes_usable
            for f in (1e-7, 1e-5, 1e-3)
        ]
        assert values == sorted(values, reverse=True)

    def test_prefix_size_tradeoff_exists(self):
        small = hierarchical_capacity(prefix_size=1000)
        large = hierarchical_capacity(prefix_size=100_000)
        # Bigger prefixes pack each prefix worse (fig. 6), smaller
        # prefixes need more prefix-layer slots; both configurations
        # remain far above flat allocation.
        assert small.total_sessions > 10 ** 6
        assert large.total_sessions > 10 ** 6


class TestDirectoryInternals:
    @pytest.fixture
    def world(self):
        space = MulticastAddressSpace.abstract(64)
        sched = EventScheduler()
        net = NetworkModel(sched,
                           lambda s, t: [(n, 0.01) for n in range(3)])

        def make(node):
            rng = np.random.default_rng(node)
            return SessionDirectory(
                node, sched, net,
                InformedRandomAllocator(space.size, rng), space,
                rng=rng,
            )

        return sched, net, space, make

    def test_message_key_tracks_description_changes(self, world):
        sched, net, space, make = world
        alice = make(0)
        alice.create_session("x", ttl=63)
        own = alice.own_sessions()[0]
        key_before = own.message_key()
        own.description.version += 1
        assert own.message_key() != key_before

    def test_owns_reflects_current_payload(self, world):
        sched, net, space, make = world
        alice = make(0)
        alice.create_session("x", ttl=63)
        own = alice.own_sessions()[0]
        assert alice.owns(own.message_key())
        assert not alice.owns((999, 1))

    def test_allocation_view_combines_cache_and_own(self, world):
        sched, net, space, make = world
        alice, bob = make(0), make(1)
        s1 = alice.create_session("a", ttl=63)
        sched.run(until=1.0)
        s2 = bob.create_session("b", ttl=63)
        view = bob._allocation_view()
        assert set(view.addresses.tolist()) == {s1.address, s2.address}

    def test_expire_cache_drops_stale(self, world):
        sched, net, space, make = world
        alice, bob = make(0), make(1)
        alice.create_session("a", ttl=63)
        sched.run(until=1.0)
        alice.own_sessions()[0].announcer.stop()
        sched.run(until=5000.0)
        assert bob.expire_cache() == 1

    def test_retreat_supersedes_stale_cache_entry(self, world):
        """After a retreat, peers' caches must not keep the old
        address occupied (the supersession rule end-to-end)."""
        sched, net, space, make = world
        alice, bob, carol = make(0), make(1), make(2)
        session = alice.create_session("old", ttl=63)
        sched.run(until=40.0)
        newcomer = bob.create_session("new", ttl=63)
        own_bob = bob.own_sessions()[0]
        own_bob.session.address = session.address
        own_bob.description.connection_address = space.index_to_ip(
            session.address
        )
        own_bob.description.version += 1
        own_bob.announcer.announce_now()
        sched.run(until=80.0)
        # Bob retreated; carol's cache has exactly one entry for bob's
        # session, at the new address.
        bob_entries = [
            e for e in carol.cache.entries()
            if e.message.origin == 1
        ]
        assert len(bob_entries) == 1
        assert bob_entries[0].address_index == \
            own_bob.session.address

    def test_unparseable_announcement_counted_not_cached(self, world):
        sched, net, space, make = world
        bob = make(1)
        from repro.sim.network import Packet
        bad = SapMessage.announce(0, "this is not sdp")
        net.send(Packet(source=0, group=0, ttl=63,
                        payload=bad.encode()))
        sched.run()
        assert bob.announcements_received == 1
        assert len(bob.cache) == 0
