"""The repro.fleet CLI and its repro-toplevel integration."""

import json
import os

from repro.cli import main as repro_main
from repro.fleet.cli import main as fleet_main


class TestListings:
    def test_list_rules_includes_fleet_codes(self, capsys):
        assert fleet_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "FLT501" in out
        assert "shard-retries-exhausted" in out
        assert "runtime/fleet" in out

    def test_list_sweeps(self, capsys):
        assert fleet_main(["--list-sweeps"]) == 0
        out = capsys.readouterr().out
        for name in ("demo", "fig5", "steady", "saploop", "chaos"):
            assert name in out


class TestExitContract:
    def test_unknown_sweep_is_usage_error(self, capsys):
        assert fleet_main(["no-such-sweep"]) == 2
        assert "unknown sweep" in capsys.readouterr().err

    def test_clean_sweep_exits_zero(self, capsys):
        assert fleet_main(["demo", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "sweep demo: complete" in out
        assert "no execution issues" in out

    def test_chaos_sweep_exits_one(self, capsys):
        assert fleet_main(["chaos", "--jobs", "2"]) == 1
        out = capsys.readouterr().out
        assert "FLT501" in out


class TestFormats:
    def test_json_report_shape(self, tmp_path, capsys):
        out_path = str(tmp_path / "fleet-report.json")
        assert fleet_main(["demo", "--jobs", "2", "--format", "json",
                           "--out", out_path]) == 0
        capsys.readouterr()
        document = json.load(open(out_path))
        assert document["count"] == 0
        report = document["reports"]["demo"]
        assert report["complete"] is True
        assert report["jobs"] == 2
        assert len(report["aggregate"]["rows"]) == 6
        assert "fleet_shards_completed_total" in report["metrics"]

    def test_github_annotations_on_shard_failures(self, capsys):
        assert fleet_main(["chaos", "--jobs", "2",
                           "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error title=FLT501::" in out
        assert "<fleet:chaos>" in out

    def test_github_silent_when_clean(self, capsys):
        assert fleet_main(["demo", "--format", "github"]) == 0
        assert capsys.readouterr().out == ""


class TestCheckpointFlow:
    def test_checkpoint_dir_and_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "journals")
        assert fleet_main(["demo", "--jobs", "2",
                           "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(ckpt, "demo.jsonl"))
        assert fleet_main(["demo", "--jobs", "2",
                           "--checkpoint", ckpt, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "(6 resumed)" in out

    def test_resumed_bytes_match_straight_run(self, tmp_path,
                                              capsys):
        ckpt = str(tmp_path / "journals")
        straight = str(tmp_path / "straight.json")
        resumed = str(tmp_path / "resumed.json")
        assert fleet_main(["demo", "--format", "json",
                           "--out", straight]) == 0
        assert fleet_main(["demo", "--jobs", "2",
                           "--checkpoint", ckpt]) == 0
        assert fleet_main(["demo", "--jobs", "2",
                           "--checkpoint", ckpt, "--resume",
                           "--format", "json",
                           "--out", resumed]) == 0
        capsys.readouterr()
        one = json.load(open(straight))["reports"]["demo"]
        two = json.load(open(resumed))["reports"]["demo"]
        assert one["aggregate"] == two["aggregate"]


class TestToplevelIntegration:
    def test_repro_fleet_delegates(self, capsys):
        assert repro_main(["fleet", "demo", "--jobs", "2"]) == 0
        assert "sweep demo: complete" in capsys.readouterr().out

    def test_repro_fleet_list_rules(self, capsys):
        assert repro_main(["fleet", "--list-rules"]) == 0
        assert "FLT502" in capsys.readouterr().out

    def test_fig5_jobs_table_matches_serial(self, capsys):
        argv = ["fig5", "--nodes", "40", "--sizes", "60",
                "--trials", "1", "--algorithms", "random"]
        assert repro_main(argv) == 0
        serial = capsys.readouterr().out
        assert repro_main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "random" in serial

    def test_steady_jobs_table_matches_serial(self, capsys):
        argv = ["steady-state", "--nodes", "40", "--algorithm",
                "random", "--spaces", "60", "--trials", "1"]
        assert repro_main(argv) == 0
        serial = capsys.readouterr().out
        assert repro_main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
