"""§4.1 capacity-model tests."""

import pytest

from repro.analysis.scaling import (
    FLAT_BAND_BOUND,
    IPV4_MULTICAST,
    flat_capacity,
    hierarchical_capacity,
    improvement_factor,
)


class TestFlatCapacity:
    def test_paper_flat_bound_magnitude(self):
        """§4.1: flat allocation of the full 2^28 space is hopeless —
        the fraction usable collapses."""
        capacity = flat_capacity(IPV4_MULTICAST, 0.001)
        assert capacity / IPV4_MULTICAST < 0.01

    def test_small_space_packs_well(self):
        # "It could probably allocate an address space of 65,536
        # addresses" — ~10% of the space at i=0.001m as one flat band.
        capacity = flat_capacity(65_536, 0.001)
        assert capacity / 65_536 > 0.08

    def test_validation(self):
        with pytest.raises(ValueError):
            flat_capacity(0, 0.001)


class TestHierarchicalCapacity:
    def test_structure(self):
        result = hierarchical_capacity()
        assert result.prefix_size == FLAT_BAND_BOUND
        assert result.prefixes == IPV4_MULTICAST // FLAT_BAND_BOUND
        assert 0 < result.prefixes_usable <= result.prefixes
        assert 0 < result.sessions_per_prefix <= result.prefix_size
        assert result.total_sessions == (
            result.prefixes_usable * result.sessions_per_prefix
        )

    def test_hierarchy_beats_flat_by_orders_of_magnitude(self):
        """The paper's whole point: the hierarchy makes the 2^28 space
        usable."""
        factor = improvement_factor()
        assert factor > 100

    def test_timely_addresses_matter(self):
        fresh = hierarchical_capacity(address_i_fraction=0.00005)
        stale = hierarchical_capacity(address_i_fraction=0.01)
        assert fresh.total_sessions > stale.total_sessions

    def test_validation(self):
        with pytest.raises(ValueError):
            hierarchical_capacity(total_space=100, prefix_size=1000)
