"""SAP-in-the-loop experiment tests."""

import pytest

from repro.experiments.sap_in_the_loop import (
    SapLoopConfig,
    run_sap_in_the_loop,
)
from repro.experiments.ttl_distributions import DS1
from repro.routing.scoping import ScopeMap
from repro.topology.mbone import MboneParams, generate_mbone


@pytest.fixture(scope="module")
def loop_world():
    topology = generate_mbone(MboneParams(total_nodes=150, seed=6))
    return topology, ScopeMap.from_topology(topology)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SapLoopConfig(strategy="sometimes")
        with pytest.raises(ValueError):
            SapLoopConfig(loss=1.0)
        with pytest.raises(ValueError):
            SapLoopConfig(num_directories=1)


class TestRun:
    def test_roomy_configuration_clash_free(self, loop_world):
        topology, scope_map = loop_world
        config = SapLoopConfig(num_directories=10,
                               sessions_per_directory=3,
                               space_size=512, inter_arrival=30.0,
                               seed=1)
        result = run_sap_in_the_loop(topology, scope_map, config)
        assert result.allocations == 30
        assert result.residual_clashing_pairs == 0
        assert result.announcements_sent > 30

    def test_deterministic(self, loop_world):
        topology, scope_map = loop_world
        config = SapLoopConfig(num_directories=8,
                               sessions_per_directory=2, seed=9,
                               settle_time=300.0)
        a = run_sap_in_the_loop(topology, scope_map, config)
        b = run_sap_in_the_loop(topology, scope_map, config)
        assert a == b

    def test_flash_crowd_races_repaired(self, loop_world):
        topology, scope_map = loop_world
        base = dict(num_directories=20, sessions_per_directory=8,
                    space_size=600, inter_arrival=0.005,
                    distribution=DS1, settle_time=600.0)
        residual_off = 0
        for seed in (2, 3, 4, 5):
            off = run_sap_in_the_loop(
                topology, scope_map,
                SapLoopConfig(seed=seed, enable_clash_protocol=False,
                              **base),
            )
            residual_off += off.residual_clashing_pairs
            on = run_sap_in_the_loop(
                topology, scope_map,
                SapLoopConfig(seed=seed, enable_clash_protocol=True,
                              **base),
            )
            assert on.residual_clashing_pairs == 0
        assert residual_off >= 1

    def test_backoff_sends_more_announcements_early(self, loop_world):
        topology, scope_map = loop_world
        base = dict(num_directories=8, sessions_per_directory=2,
                    settle_time=600.0, seed=4)
        fixed = run_sap_in_the_loop(
            topology, scope_map, SapLoopConfig(strategy="fixed", **base)
        )
        backoff = run_sap_in_the_loop(
            topology, scope_map,
            SapLoopConfig(strategy="backoff", **base),
        )
        assert backoff.announcements_sent > fixed.announcements_sent

    def test_loss_counted(self, loop_world):
        topology, scope_map = loop_world
        config = SapLoopConfig(num_directories=8,
                               sessions_per_directory=3, loss=0.4,
                               seed=7, settle_time=600.0)
        result = run_sap_in_the_loop(topology, scope_map, config)
        assert result.announcements_lost > 0
