"""Cross-tool registry invariants, grown with each new tool.

Nine tools now share one rule registry; these tests make the code
bands structural (no future rule can silently collide), make every
CLI list every rule, and pin the cache-filename single-source so tool
defaults and ``.gitignore`` cannot drift.
"""

import re
from pathlib import Path

from repro.lint import registry

REPO_ROOT = Path(__file__).resolve().parents[1]

#: tool -> (band regex, example rule). The bands are the public
#: contract: SIM1xx lint, SAN2xx sanitize, MC3xx modelcheck,
#: OBS4xx obs, FLT5xx fleet, FLOW6xx flow, UNIT7xx units,
#: ALIAS8xx alias, SCN9xx scenario.
BANDS = {
    "lint": re.compile(r"^SIM1\d\d$"),
    "sanitize": re.compile(r"^SAN2\d\d$"),
    "modelcheck": re.compile(r"^MC3\d\d$"),
    "obs": re.compile(r"^OBS4\d\d$"),
    "fleet": re.compile(r"^FLT5\d\d$"),
    "flow": re.compile(r"^FLOW6\d\d$"),
    "units": re.compile(r"^UNIT7\d\d$"),
    "alias": re.compile(r"^ALIAS8\d\d$"),
    "scenario": re.compile(r"^SCN9\d\d$"),
}


class TestBands:
    def test_every_tool_has_entries(self):
        tools = {entry.tool for entry in registry.all_entries()}
        assert tools == set(BANDS)

    def test_every_code_sits_in_its_tools_band(self):
        for entry in registry.all_entries():
            assert BANDS[entry.tool].match(entry.code), (
                f"{entry.code} is outside the {entry.tool} band"
            )

    def test_bands_never_overlap(self):
        # The numeric prefixes are pairwise distinct, so two tools
        # cannot mint the same code even in principle; and the
        # concrete registry has no duplicates today.
        codes = [entry.code for entry in registry.all_entries()]
        assert len(codes) == len(set(codes))
        numeric_prefixes = [code[:-2] for code in codes]
        by_tool = {}
        for entry in registry.all_entries():
            by_tool.setdefault(entry.tool, set()).add(entry.code[:-2])
        seen = {}
        for tool, prefixes in by_tool.items():
            for prefix in prefixes:
                assert prefix not in seen, (
                    f"{tool} and {seen[prefix]} share prefix {prefix}"
                )
                seen[prefix] = tool
        assert len(numeric_prefixes) >= len(seen)

    def test_alias_rules_are_present_and_split_correctly(self):
        alias = [entry for entry in registry.all_entries()
                 if entry.tool == "alias"]
        codes = {entry.code for entry in alias}
        assert codes == {"ALIAS801", "ALIAS802", "ALIAS803",
                         "ALIAS804", "ALIAS805", "ALIAS806",
                         "ALIAS807", "ALIAS808", "ALIAS811",
                         "ALIAS812", "ALIAS813", "ALIAS814"}
        advisory = {entry.code for entry in alias if entry.advisory}
        assert advisory == {"ALIAS806", "ALIAS807", "ALIAS808",
                            "ALIAS811", "ALIAS812", "ALIAS813",
                            "ALIAS814"}
        for entry in alias:
            assert entry.kind == "static"
            assert entry.description

    def test_scenario_rules_are_present_and_split_correctly(self):
        scenario = [entry for entry in registry.all_entries()
                    if entry.tool == "scenario"]
        codes = {entry.code for entry in scenario}
        assert codes == {"SCN901", "SCN902", "SCN903", "SCN904",
                         "SCN905", "SCN911", "SCN912"}
        advisory = {entry.code for entry in scenario
                    if entry.advisory}
        assert advisory == {"SCN911"}
        for entry in scenario:
            assert entry.kind == "runtime"
            assert entry.description

    def test_unit_rules_are_present_and_split_correctly(self):
        units = [entry for entry in registry.all_entries()
                 if entry.tool == "units"]
        codes = {entry.code for entry in units}
        assert codes == {"UNIT701", "UNIT702", "UNIT703", "UNIT704",
                         "UNIT705", "UNIT711", "UNIT712", "UNIT713",
                         "UNIT714"}
        advisory = {entry.code for entry in units if entry.advisory}
        assert advisory == {"UNIT714"}
        for entry in units:
            assert entry.kind == "static"
            assert entry.description


class TestEveryCliListsEveryRule:
    def test_nine_clis_print_the_identical_registry(self, capsys):
        from repro.alias.cli import main as alias_main
        from repro.fleet.cli import main as fleet_main
        from repro.flow.cli import main as flow_main
        from repro.lint.cli import main as lint_main
        from repro.modelcheck.cli import main as mc_main
        from repro.obs.cli import main as obs_main
        from repro.sanitize.cli import main as san_main
        from repro.scenario.cli import main as scenario_main
        from repro.units.cli import main as units_main

        outputs = set()
        for main in (lint_main, san_main, mc_main, obs_main,
                     fleet_main, flow_main, units_main, alias_main,
                     scenario_main):
            assert main(["--list-rules"]) == 0
            outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1

        output = outputs.pop()
        for entry in registry.all_entries():
            assert entry.code in output, (
                f"--list-rules is missing {entry.code}"
            )


class TestCacheFilenameRegistry:
    def test_tool_defaults_read_from_the_registry(self):
        from repro.alias.cache import DEFAULT_CACHE_FILE as alias_file
        from repro.flow.cache import DEFAULT_CACHE_FILE as flow_file
        from repro.lint.cache import DEFAULT_CACHE_FILE as lint_file
        from repro.scenario.cache import (
            DEFAULT_CACHE_FILE as scenario_file,
        )
        from repro.units.cache import DEFAULT_CACHE_FILE as units_file

        assert lint_file == registry.CACHE_FILES["lint"]
        assert flow_file == registry.CACHE_FILES["flow"]
        assert units_file == registry.CACHE_FILES["units"]
        assert alias_file == registry.CACHE_FILES["alias"]
        assert scenario_file == registry.CACHE_FILES["scenario"]

    def test_gitignore_lists_every_cache_file(self):
        ignored = (REPO_ROOT / ".gitignore").read_text().splitlines()
        for filename in registry.CACHE_FILES.values():
            assert filename in ignored, (
                f"{filename} missing from .gitignore"
            )
