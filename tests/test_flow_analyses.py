"""Seeded-defect tests: each analysis must catch its mutation.

Every test has the same shape as the modelcheck mutation suite: a
*clean twin* that passes, and one injected defect that must produce
exactly the expected FLOW code.  This is the evidence the analyses
detect what they claim to detect, not merely that ``src/`` happens
to be quiet.
"""

from repro.flow.analysis import analyze_sources

JOBS_PATH = "src/repro/fleet/jobs.py"

REGISTER = (
    "import numpy as np\n"
    "from repro.sim.rng import derived_stream\n"
    "def register(name):\n"
    "    def deco(fn):\n"
    "        return fn\n"
    "    return deco\n"
)


def codes(report):
    return sorted({f.code for f in report.findings})


def advisory_codes(report):
    return sorted({f.code for f in report.advisory})


def analyze_job(body, extra_sources=()):
    text = REGISTER + body
    return analyze_sources([(JOBS_PATH, text), *extra_sources])


# --- FLOW601: untraced draw on a job path ---------------------------

def test_untraced_draw_in_job_fires_flow601():
    report = analyze_job(
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    wild = np.random.default_rng()\n"
        "    return {'x': wild.random()}\n"
    )
    assert "FLOW601" in codes(report)


def test_shard_stream_draw_is_clean():
    report = analyze_job(
        "@register('ok')\n"
        "def ok(params, rng, attempt):\n"
        "    return {'x': float(rng.random())}\n"
    )
    assert codes(report) == []


def test_seeded_generator_is_clean():
    report = analyze_job(
        "@register('ok')\n"
        "def ok(params, rng, attempt):\n"
        "    local = np.random.default_rng(int(params['seed']))\n"
        "    return {'x': float(local.random())}\n"
    )
    assert codes(report) == []


# --- FLOW602: stream-key collision ----------------------------------

def test_stream_key_collision_fires_flow602():
    report = analyze_job(
        "def component_a():\n"
        "    return derived_stream('shared.key').random()\n"
        "def component_b():\n"
        "    return derived_stream('shared.key').random()\n"
    )
    assert "FLOW602" in codes(report)


def test_distinct_stream_keys_are_clean():
    report = analyze_job(
        "def component_a():\n"
        "    return derived_stream('mod.a').random()\n"
        "def component_b():\n"
        "    return derived_stream('mod.b').random()\n"
    )
    assert "FLOW602" not in codes(report)


def test_scenario_fuzz_key_reused_cross_site_fires_flow602():
    # The scenario namespace is part of the repo-wide key space: a
    # second site minting the same ``scenario/fuzz/...`` key is the
    # exact collision FLOW602 exists to catch.
    report = analyze_job(
        "def site_a():\n"
        "    return derived_stream('scenario/fuzz/run-0').random()\n",
        extra_sources=[(
            "src/repro/scenario/mut.py",
            "from repro.sim.rng import derived_stream\n"
            "def site_b():\n"
            "    return derived_stream('scenario/fuzz/run-0')"
            ".random()\n",
        )],
    )
    assert "FLOW602" in codes(report)


def test_real_scenario_sources_do_not_collide_with_harnesses():
    # Digest-keyed engine streams and the ``scenario/fuzz/run-<i>``
    # generator keys must stay disjoint from the lint/obs workload
    # namespaces they share a process with.
    from pathlib import Path

    paths = (
        "src/repro/scenario/engine.py",
        "src/repro/scenario/fuzz.py",
        "src/repro/lint/determinism.py",
        "src/repro/obs/scenarios.py",
    )
    report = analyze_sources(
        [(path, Path(path).read_text()) for path in paths]
    )
    assert "FLOW602" not in codes(report)


# --- FLOW603: tainted stream key ------------------------------------

def test_wallclock_in_stream_key_fires_flow603():
    report = analyze_job(
        "import time\n"
        "def component():\n"
        "    return derived_stream(f'run-{time.time()}').random()\n"
    )
    assert "FLOW603" in codes(report)


def test_spec_pure_formatted_key_is_clean():
    report = analyze_job(
        "def component(cell):\n"
        "    return derived_stream(f'cell-{cell}').random()\n"
    )
    assert "FLOW603" not in codes(report)


# --- FLOW604: ambient constant-key stream on a job path -------------

def test_ambient_stream_in_job_fires_flow604():
    report = analyze_job(
        "def helper():\n"
        "    return derived_stream('ambient.const').random()\n"
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    return {'x': helper()}\n"
    )
    assert "FLOW604" in codes(report)


def test_ambient_stream_off_job_path_is_clean():
    report = analyze_job(
        "def helper():\n"
        "    return derived_stream('ambient.const').random()\n"
        "@register('ok')\n"
        "def ok(params, rng, attempt):\n"
        "    return {'x': float(rng.random())}\n"
    )
    assert "FLOW604" not in codes(report)


# --- FLOW611: global mutation ---------------------------------------

def test_global_mutation_in_job_fires_flow611():
    report = analyze_job(
        "COUNTER = 0\n"
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    global COUNTER\n"
        "    COUNTER += 1\n"
        "    return {'n': COUNTER}\n"
    )
    assert "FLOW611" in codes(report)


def test_module_container_mutation_in_job_fires_flow611():
    report = analyze_job(
        "SEEN = []\n"
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    SEEN.append(params)\n"
        "    return {}\n"
    )
    assert "FLOW611" in codes(report)


# --- FLOW612 / FLOW613: wall clock and I/O --------------------------

def test_wallclock_read_in_job_fires_flow612():
    report = analyze_job(
        "import time\n"
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    return {'t': time.time()}\n"
    )
    assert "FLOW612" in codes(report)


def test_wallclock_reached_through_helper_fires_flow612():
    report = analyze_job(
        "import time\n"
        "def helper():\n"
        "    return time.monotonic()\n"
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    return {'t': helper()}\n"
    )
    assert "FLOW612" in codes(report)


def test_file_io_in_job_fires_flow613():
    report = analyze_job(
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    with open('/tmp/out.txt', 'w') as fh:\n"
        "        fh.write('x')\n"
        "    return {}\n"
    )
    assert "FLOW613" in codes(report)


def test_pure_job_is_clean():
    report = analyze_job(
        "@register('ok')\n"
        "def ok(params, rng, attempt):\n"
        "    total = 0\n"
        "    for step in range(int(params.get('n', 10))):\n"
        "        total += int(rng.integers(0, 7))\n"
        "    return {'total': total}\n"
    )
    assert codes(report) == []


# --- FLOW614: mutation through captured state -----------------------

def test_captured_mutable_write_fires_flow614():
    report = analyze_job(
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    acc = []\n"
        "    def leak():\n"
        "        acc.append(1)\n"
        "    leak()\n"
        "    return {'n': len(acc)}\n"
    )
    assert "FLOW614" in codes(report)


# --- FLOW62x: injected hot scan, strict mode ------------------------

HOT_PATH = "src/repro/sap/cache.py"


def test_injected_hot_scan_fires_flow621_and_strict_fails():
    report = analyze_sources([(
        HOT_PATH,
        "class SessionCache:\n"
        "    def __init__(self):\n"
        "        self._entries = {}\n"
        "    def observe(self, key, value):\n"
        "        stale = [k for k, v in self._entries.items()\n"
        "                 if v is None]\n"
        "        for k in stale:\n"
        "            del self._entries[k]\n"
        "        self._entries[key] = value\n"
    )])
    assert "FLOW621" in advisory_codes(report)
    # Advisory by default, errors under --strict.
    assert report.exit_findings(strict=False) == []
    assert report.exit_findings(strict=True)


def test_hot_rebuild_and_sort_are_ranked():
    report = analyze_sources([(
        HOT_PATH,
        "class SessionCache:\n"
        "    def __init__(self):\n"
        "        self._entries = {}\n"
        "    def observe(self, key, value):\n"
        "        self._entries[key] = value\n"
        "        snapshot = list(self._entries)\n"
        "        return sorted(snapshot)\n"
    )])
    advisory = advisory_codes(report)
    assert "FLOW622" in advisory
    assert "FLOW624" in advisory
    sites = report.hotpaths["sites"]
    assert sites[0]["rank"] == 1
    assert sites == sorted(sites, key=lambda s: s["rank"])


# --- Suppressions apply to flow findings ----------------------------

def test_suppression_with_justification_silences_finding():
    report = analyze_job(
        "import time\n"
        "@register('mut')\n"
        "def mut(params, rng, attempt):\n"
        "    return {'t': time.time()}"
        "  # simlint: disable=job-reads-wallclock (test fixture)\n"
    )
    assert "FLOW612" not in codes(report)
    assert report.suppressed >= 1
