"""Topology graph tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology.graph import DVMRP_INFINITY, Link, Topology


class TestLink:
    def test_attributes(self):
        link = Link(0, 1, metric=3, threshold=64, delay=0.05)
        assert link.other(0) == 1
        assert link.other(1) == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(2, 2)

    def test_metric_bounds(self):
        with pytest.raises(ValueError):
            Link(0, 1, metric=0)
        with pytest.raises(ValueError):
            Link(0, 1, metric=DVMRP_INFINITY)

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            Link(0, 1, threshold=0)
        with pytest.raises(ValueError):
            Link(0, 1, threshold=256)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link(0, 1, delay=-0.1)

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Link(0, 1).other(5)


class TestTopology:
    def test_add_nodes_sequential_ids(self):
        topo = Topology()
        assert [topo.add_node() for __ in range(3)] == [0, 1, 2]
        assert topo.num_nodes == 3

    def test_add_link_and_query(self):
        topo = Topology()
        topo.add_node()
        topo.add_node()
        topo.add_link(0, 1, metric=2, threshold=16, delay=0.01)
        link = topo.link(0, 1)
        assert link.metric == 2
        assert link.threshold == 16
        assert topo.link(1, 0) is link
        assert topo.has_link(0, 1)
        assert topo.num_links == 1

    def test_link_replacement_does_not_double_count(self):
        topo = Topology()
        topo.add_node()
        topo.add_node()
        topo.add_link(0, 1, metric=1)
        topo.add_link(0, 1, metric=5)
        assert topo.num_links == 1
        assert topo.link(0, 1).metric == 5

    def test_unknown_node_raises(self):
        topo = Topology()
        topo.add_node()
        with pytest.raises(KeyError):
            topo.add_link(0, 7)
        with pytest.raises(KeyError):
            topo.neighbors(9)

    def test_missing_link_raises(self):
        topo = Topology()
        topo.add_node()
        topo.add_node()
        with pytest.raises(KeyError):
            topo.link(0, 1)

    def test_neighbors_and_degree(self):
        topo = Topology()
        for __ in range(4):
            topo.add_node()
        topo.add_link(0, 1)
        topo.add_link(0, 2)
        assert sorted(topo.neighbors(0)) == [1, 2]
        assert topo.degree(0) == 2
        assert topo.degree(3) == 0

    def test_links_iterates_each_once(self):
        topo = Topology()
        for __ in range(3):
            topo.add_node()
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        assert len(list(topo.links())) == 2

    def test_labels_and_positions(self):
        topo = Topology()
        node = topo.add_node(position=(1.0, 2.0), label="hub")
        assert topo.position(node) == (1.0, 2.0)
        assert topo.label(node) == "hub"
        topo.set_label(node, "core")
        assert topo.label(node) == "core"

    def test_connectivity(self):
        topo = Topology()
        for __ in range(4):
            topo.add_node()
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert not topo.is_connected()
        topo.add_link(1, 2)
        assert topo.is_connected()

    def test_empty_topology_connected(self):
        assert Topology().is_connected()

    def test_largest_connected_subgraph(self):
        topo = Topology()
        for __ in range(6):
            topo.add_node(label=f"n{__}" if False else None)
        # Component A: 0-1-2, component B: 3-4 (node 5 isolated).
        topo.add_link(0, 1, metric=2, threshold=16, delay=0.5)
        topo.add_link(1, 2)
        topo.add_link(3, 4)
        sub = topo.largest_connected_subgraph()
        assert sub.num_nodes == 3
        assert sub.num_links == 2
        assert sub.is_connected()
        # Attributes preserved.
        assert sub.link(0, 1).threshold == 16
        assert sub.link(0, 1).delay == 0.5

    def test_edge_arrays_roundtrip(self):
        topo = Topology()
        for __ in range(3):
            topo.add_node()
        topo.add_link(0, 1, metric=2, threshold=48, delay=0.25)
        topo.add_link(1, 2, metric=3, threshold=1, delay=0.5)
        us, vs, metrics, thresholds, delays = topo.edge_arrays()
        assert us.tolist() == [0, 1]
        assert vs.tolist() == [1, 2]
        assert metrics.tolist() == [2, 3]
        assert thresholds.tolist() == [48, 1]
        assert np.allclose(delays, [0.25, 0.5])

    @given(st.integers(min_value=2, max_value=30), st.integers(0, 2 ** 31))
    def test_property_random_tree_is_connected(self, n, seed):
        rng = np.random.default_rng(seed)
        topo = Topology()
        for __ in range(n):
            topo.add_node()
        for i in range(1, n):
            topo.add_link(int(rng.integers(0, i)), i)
        assert topo.is_connected()
        assert topo.num_links == n - 1
