"""AllocationWorld tests."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.session import Session
from repro.experiments.world import AllocationWorld


class TestAllocationWorld:
    def test_add_and_visible(self, chain_scope_map):
        world = AllocationWorld(chain_scope_map)
        world.add(Session(address=5, ttl=18, source=0))
        world.add(Session(address=6, ttl=2, source=0))
        # Node 3 is inside the ttl-18 scope of node 0 but not ttl-2.
        visible = world.visible_at(3)
        assert visible.addresses.tolist() == [5]
        # Node 1 sees both.
        assert sorted(world.visible_at(1).addresses.tolist()) == [5, 6]

    def test_clash_detection(self, chain_scope_map):
        world = AllocationWorld(chain_scope_map)
        world.add(Session(address=5, ttl=18, source=0))
        assert world.clashes(Session(address=5, ttl=18, source=1))
        assert not world.clashes(Session(address=9, ttl=18, source=1))
        # Disjoint scopes, same address: no clash.
        assert not world.clashes(Session(address=5, ttl=64, source=4))

    def test_remove_swaps_last(self, chain_scope_map):
        world = AllocationWorld(chain_scope_map)
        a = Session(address=1, ttl=18, source=0)
        b = Session(address=2, ttl=18, source=1)
        c = Session(address=3, ttl=18, source=2)
        for s in (a, b, c):
            world.add(s)
        removed = world.remove_at(0)
        assert removed is a
        assert len(world) == 2
        assert sorted(world.visible_at(1).addresses.tolist()) == [2, 3]
        # Clash bookkeeping still correct after the swap.
        assert world.clashes(Session(address=3, ttl=18, source=0))
        assert not world.clashes(Session(address=1, ttl=18, source=0))

    def test_remove_out_of_range(self, chain_scope_map):
        world = AllocationWorld(chain_scope_map)
        with pytest.raises(IndexError):
            world.remove_at(0)

    def test_growth_beyond_capacity(self, chain_scope_map):
        world = AllocationWorld(chain_scope_map, initial_capacity=4)
        for i in range(100):
            world.add(Session(address=i, ttl=18, source=i % 5))
        assert len(world) == 100
        assert len(world.visible_at(0).addresses) > 0

    def test_random_slot(self, chain_scope_map, rng):
        world = AllocationWorld(chain_scope_map)
        with pytest.raises(ValueError):
            world.random_slot(rng)
        world.add(Session(address=1, ttl=18, source=0))
        assert world.random_slot(rng) == 0

    # The scope map is immutable, so sharing it across examples is safe.
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.lists(st.tuples(st.integers(0, 4), st.sampled_from(
        [2, 18, 68, 255]), st.integers(0, 30)), min_size=1, max_size=40),
        st.integers(0, 4))
    def test_property_visibility_matches_bruteforce(self, chain_scope_map,
                                                    triples, node):
        world = AllocationWorld(chain_scope_map)
        sessions = []
        for source, ttl, address in triples:
            s = Session(address=address, ttl=ttl, source=source)
            world.add(s)
            sessions.append(s)
        visible = world.visible_at(node)
        expected = sorted(
            s.address for s in sessions
            if chain_scope_map.can_hear(node, s.source, s.ttl)
        )
        assert sorted(visible.addresses.tolist()) == expected
