"""Original (fig. 7) adaptive IPRMA tests — including its failure."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.adaptive_legacy import LegacyAdaptiveIprmaAllocator
from repro.core.allocator import VisibleSet

PAPER_TTLS = (1, 15, 31, 47, 63, 127, 191)


def visible_of(pairs):
    return VisibleSet(
        np.array([a for a, __ in pairs], dtype=np.int64),
        np.array([t for __, t in pairs], dtype=np.int64),
    )


class TestLegacyGeometry:
    def test_empty_world_even_partitions(self, rng):
        allocator = LegacyAdaptiveIprmaAllocator(700, mode="push",
                                                 rng=rng)
        geometry = allocator.band_geometry(VisibleSet.empty())
        widths = [hi - lo for lo, hi in geometry]
        assert len(geometry) == 7
        assert all(w == 100 for w in widths)
        assert geometry[0][0] == 0
        assert geometry[-1][1] == 700

    def test_push_mode_band_grows_and_pushes(self, rng):
        allocator = LegacyAdaptiveIprmaAllocator(700, mode="push",
                                                 rng=rng)
        # Load band for TTL 47 far beyond its 100-address default.
        visible = visible_of([(300 + i, 47) for i in range(150)])
        geometry = allocator.band_geometry(visible)
        band = allocator.partition_map.band_of(47)
        lo, hi = geometry[band]
        assert hi - lo >= 223  # ceil(150/0.67)
        # Higher bands got pushed upwards, still ordered and disjoint.
        for (a_lo, a_hi), (b_lo, b_hi) in zip(geometry, geometry[1:]):
            assert a_hi <= b_lo or b_hi == 700

    def test_proportional_mode_tracks_counts(self, rng):
        allocator = LegacyAdaptiveIprmaAllocator(700, mode="proportional",
                                                 rng=rng)
        visible = visible_of([(i, 127) for i in range(60)])
        geometry = allocator.band_geometry(visible)
        band = allocator.partition_map.band_of(127)
        widths = [hi - lo for lo, hi in geometry]
        assert widths[band] > max(
            w for i, w in enumerate(widths) if i != band
        )
        assert geometry[0][0] == 0
        assert geometry[-1][1] == 700

    def test_allocates_in_own_band(self, rng):
        for mode in ("push", "proportional"):
            allocator = LegacyAdaptiveIprmaAllocator(700, mode=mode,
                                                     rng=rng)
            for ttl in PAPER_TTLS:
                result = allocator.allocate(ttl, VisibleSet.empty())
                band = allocator.partition_map.band_of(ttl)
                lo, hi = allocator.band_geometry(VisibleSet.empty())[band]
                assert lo <= result.address < hi

    def test_invalid_mode_rejected(self, rng):
        with pytest.raises(ValueError):
            LegacyAdaptiveIprmaAllocator(100, mode="magic", rng=rng)


class TestLegacyFailureMode:
    def test_geometry_depends_on_lower_ttl_counts(self, rng):
        """The documented flaw: lower-TTL sessions move higher bands —
        exactly what the deterministic variant forbids."""
        legacy = LegacyAdaptiveIprmaAllocator(700, mode="push", rng=rng)
        band_127 = legacy.partition_map.band_of(127)
        bare = legacy.band_geometry(visible_of([(650, 127)]))
        loaded = legacy.band_geometry(visible_of(
            [(650, 127)] + [(10 + i, 15) for i in range(200)]
        ))
        assert bare[band_127] != loaded[band_127]

    def test_deterministic_variant_immune(self, rng):
        deterministic = AdaptiveIprmaAllocator.aipr1(700, rng=rng)
        band_127 = deterministic.partition_map.band_of(127)
        lowest, __ = deterministic.partition_map.ttl_range(band_127)
        bare = deterministic.band_geometry(
            visible_of([(650, 127)]).with_ttl_at_least(lowest)
        )
        loaded = deterministic.band_geometry(
            visible_of([(650, 127)] + [(10 + i, 15) for i in range(200)]
                       ).with_ttl_at_least(lowest)
        )
        assert bare[band_127] == loaded[band_127]

    def test_cross_site_divergence(self, rng):
        """Two sites with different *local* session views compute
        different geometry for the same high band under the legacy
        scheme — the root of fig. 7's clash scenario."""
        legacy = LegacyAdaptiveIprmaAllocator(700, mode="push", rng=rng)
        band_127 = legacy.partition_map.band_of(127)
        global_sessions = [(650 + i, 191) for i in range(5)]
        site_a_view = visible_of(global_sessions +
                                 [(10 + i, 15) for i in range(120)])
        site_b_view = visible_of(global_sessions)  # sees no locals
        geo_a = legacy.band_geometry(site_a_view)
        geo_b = legacy.band_geometry(site_b_view)
        assert geo_a[band_127] != geo_b[band_127]
