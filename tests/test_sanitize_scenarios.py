"""Clean-run scenario tests, the CLI, and the zero-cost-when-off contract.

The mutation tests prove each checker *can* fire; these prove the real
protocol stack *doesn't* make them fire: the full §4 clash-protocol
simulation and the AIPR steady-state churn run under every sanitizer
with zero violations, as tier-1 tests.
"""

import json

import pytest

from repro.sanitize import (
    SCENARIO_NAMES,
    VIOLATION_CODES,
    SanitizerContext,
    Violation,
    render_json,
    render_text,
    run_scenario,
)
from repro.sanitize.cli import main as sanitize_main
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel


@pytest.fixture(scope="module")
def scenario_results():
    """Run every registered scenario once per module."""
    return {name: run_scenario(name, seed=1998)
            for name in SCENARIO_NAMES}


class TestCleanScenarios:
    def test_kernel_scenario_clean(self, scenario_results):
        result = scenario_results["kernel"]
        assert result.clean, result.context.render_text()
        # The run must have exercised the cache cross-check.
        assert result.context.cache_sanitizer.entries_checked > 0

    def test_clash_protocol_scenario_clean(self, scenario_results):
        result = scenario_results["clash"]
        assert result.clean, result.context.render_text()
        assert result.context.scope_sanitizer.deliveries_checked > 0

    def test_steady_state_scenario_clean(self, scenario_results):
        result = scenario_results["steady"]
        assert result.clean, result.context.render_text()

    def test_summaries_name_their_scenario(self, scenario_results):
        for name, result in scenario_results.items():
            assert result.name == name
            assert result.summary.startswith(f"{name}:")

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("no-such-scenario")


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert sanitize_main(["kernel"]) == 0
        out = capsys.readouterr().out
        assert "sanitize[kernel]: clean (0 violations)" in out
        assert "1 scenario(s) clean" in out

    def test_json_format_matches_lint_schema(self, capsys):
        assert sanitize_main(["kernel", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {"count": 0, "findings": []}

    def test_unknown_scenario_exits_two(self, capsys):
        assert sanitize_main(["bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_list_scenarios(self, capsys):
        assert sanitize_main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert name in out


class TestReportModel:
    def test_every_code_has_a_distinct_rule(self):
        rules = list(VIOLATION_CODES.values())
        assert len(rules) == len(set(rules))

    def test_record_rejects_unregistered_pairs(self):
        context = SanitizerContext(scenario="test")
        with pytest.raises(ValueError, match="unregistered"):
            context.record("SAN999", "made-up", "nope")
        with pytest.raises(ValueError, match="unregistered"):
            context.record("SAN201", "scope-violation", "wrong rule")

    def test_render_text_breaks_down_by_rule(self):
        violations = [
            Violation("SAN221", "clock-backwards", "a", time=1.0),
            Violation("SAN221", "clock-backwards", "b", time=2.0),
            Violation("SAN211", "scope-violation", "c", time=3.0),
        ]
        text = render_text(violations, "demo")
        assert "t=1.0000: SAN221 [clock-backwards] a" in text
        assert ("sanitize[demo]: 3 violations "
                "(clock-backwards=2, scope-violation=1)") in text

    def test_render_json_uses_pseudo_paths(self):
        violations = [Violation("SAN211", "scope-violation", "leak",
                                time=4.5)]
        data = json.loads(render_json(violations, "demo"))
        assert data["count"] == 1
        finding = data["findings"][0]
        assert finding["path"] == "<sanitize:demo>"
        assert finding["code"] == "SAN211"
        assert finding["message"].startswith("t=4.5000: ")


class TestZeroCostWhenOff:
    """Sanitizers off must leave the kernel objects untouched.

    The hook contract is a single ``is not None`` attribute check, so
    the structural assertion is that no monitor, wrapper or shadow
    attribute exists unless a context explicitly attached one.
    """

    def test_fresh_kernel_objects_have_no_monitor(self):
        scheduler = EventScheduler()
        network = NetworkModel(scheduler, lambda source, ttl: [])
        assert scheduler._monitor is None
        assert scheduler.clock._monitor is None
        assert network._monitor is None

    def test_fresh_directory_has_no_sanitizer(self, rng):
        import numpy as np

        from repro.core.address_space import MulticastAddressSpace
        from repro.core.informed import InformedRandomAllocator
        from repro.sap.directory import SessionDirectory

        scheduler = EventScheduler()
        network = NetworkModel(scheduler, lambda source, ttl: [])
        directory = SessionDirectory(
            node=0, scheduler=scheduler, network=network,
            allocator=InformedRandomAllocator(
                64, np.random.default_rng(0)
            ),
            address_space=MulticastAddressSpace.abstract(64),
            rng=rng,
        )
        assert directory._sanitizer is None
        # The allocator's allocate is the plain bound method: no
        # wrapper marker unless watch_allocator ran.
        assert not hasattr(directory.allocator, "_sanitize_watched")

    def test_unsanitized_harness_runs_are_byte_identical(self):
        # The determinism harness is the sensitive consumer: running
        # it with and without hooks *present but detached* must not
        # perturb the trace (monitors only observe, never steer).
        from repro.lint.determinism import run_scenario as run_det

        plain = run_det(seed=7)
        context = SanitizerContext(scenario="kernel")
        sanitized = run_det(seed=7, sanitizer=context)
        assert context.clean
        assert sanitized == plain
