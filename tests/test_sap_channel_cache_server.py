"""Announcement channel and proxy cache server tests."""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.sap.cache_server import ProxyCacheServer
from repro.sap.channel import AnnouncementChannel
from repro.sap.directory import SessionDirectory
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel

SPACE = MulticastAddressSpace.abstract(128)


class TestAnnouncementChannel:
    def test_empty_channel_floor_interval(self):
        channel = AnnouncementChannel()
        assert channel.interval() == 300.0

    def test_interval_scales_with_population(self):
        channel = AnnouncementChannel(bandwidth_bps=4000,
                                      mean_payload_bytes=500)
        for key in range(1000):
            channel.register(key)
        # 1000 ads * 500 B * 8 / 4000 bps = 1000 s per announcement.
        assert channel.interval() == pytest.approx(1000.0)

    def test_small_population_hits_floor(self):
        channel = AnnouncementChannel()
        channel.register("one")
        assert channel.interval() == 300.0

    def test_unregister(self):
        channel = AnnouncementChannel()
        channel.register("a", payload_bytes=1000)
        channel.register("b", payload_bytes=2000)
        assert channel.total_bytes() == 3000
        channel.unregister("a")
        channel.unregister("a")  # idempotent
        assert channel.total_bytes() == 2000
        assert channel.session_count == 1

    def test_stats_invisibility_grows_with_population(self):
        sparse = AnnouncementChannel()
        dense = AnnouncementChannel()
        for key in range(10):
            sparse.register(key)
        for key in range(10_000):
            dense.register(key)
        assert dense.stats().invisible_fraction > \
            sparse.stats().invisible_fraction
        assert dense.stats().interval > sparse.stats().interval

    def test_interval_for_population_sweep(self):
        """§4's scaling argument: interval grows linearly once past
        the floor."""
        small = AnnouncementChannel.interval_for_population(100)
        large = AnnouncementChannel.interval_for_population(100_000)
        assert small == 300.0
        assert large == pytest.approx(1000 * small * (102400 / 307200),
                                      rel=0.5)
        assert large > 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnouncementChannel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            AnnouncementChannel(min_interval=0)
        with pytest.raises(ValueError):
            AnnouncementChannel(mean_payload_bytes=0)


def full_mesh(source, ttl):
    return [(node, 0.01) for node in range(6)]


class TestProxyCacheServer:
    def make_world(self):
        sched = EventScheduler()
        net = NetworkModel(sched, full_mesh)
        return sched, net

    def make_directory(self, node, sched, net):
        rng = np.random.default_rng(node)
        return SessionDirectory(
            node, sched, net,
            InformedRandomAllocator(SPACE.size, rng), SPACE, rng=rng,
        )

    def test_server_caches_announcements(self):
        sched, net = self.make_world()
        server = ProxyCacheServer(5, sched, net)
        alice = self.make_directory(0, sched, net)
        alice.create_session("talk", ttl=63)
        sched.run(until=1.0)
        assert len(server.cache) == 1

    def test_sync_warm_starts_new_directory(self):
        sched, net = self.make_world()
        server = ProxyCacheServer(5, sched, net)
        alice = self.make_directory(0, sched, net)
        for i in range(5):
            alice.create_session(f"s{i}", ttl=63)
        sched.run(until=1.0)
        # A directory started later would normally wait a whole
        # re-announcement interval; the server fills it instantly.
        late = self.make_directory(1, sched, net)
        assert len(late.cache) == 0
        transferred = server.sync_directory(late)
        assert transferred == 5
        assert len(late.cache) == 5
        assert server.syncs_served == 1

    def test_synced_view_feeds_allocator(self):
        sched, net = self.make_world()
        server = ProxyCacheServer(5, sched, net)
        alice = self.make_directory(0, sched, net)
        taken = {alice.create_session(f"s{i}", ttl=63).address
                 for i in range(60)}
        sched.run(until=1.0)
        late = self.make_directory(1, sched, net)
        server.sync_directory(late)
        fresh = late.create_session("mine", ttl=63)
        assert fresh.address not in taken

    def test_trickle_reannounces_for_lossy_listeners(self):
        sched, net = self.make_world()
        server = ProxyCacheServer(5, sched, net, trickle_interval=2.0)
        alice = self.make_directory(0, sched, net)
        alice.create_session("talk", ttl=63)
        sched.run(until=1.0)
        alice.own_sessions()[0].announcer.stop()  # origin goes quiet
        late = self.make_directory(1, sched, net)
        sched.run(until=10.0)
        # The trickle kept the announcement flowing to the latecomer.
        assert server.trickles_sent >= 3
        assert "talk" in [d.name for d in late.known_sessions()]

    def test_stop_halts_trickle(self):
        sched, net = self.make_world()
        server = ProxyCacheServer(5, sched, net, trickle_interval=1.0)
        alice = self.make_directory(0, sched, net)
        alice.create_session("talk", ttl=63)
        sched.run(until=3.0)
        server.stop()
        sent = server.trickles_sent
        sched.run(until=10.0)
        assert server.trickles_sent == sent

    def test_invalid_trickle_interval(self):
        sched, net = self.make_world()
        with pytest.raises(ValueError):
            ProxyCacheServer(5, sched, net, trickle_interval=0.0)
