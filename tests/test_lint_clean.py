"""Tier-1 gate: the repo's own source must satisfy its determinism
contract.

``test_src_tree_is_clean`` is the enforcement point — any future PR
that reintroduces an unseeded RNG, a wall-clock read, a discarded
event handle (etc.) anywhere under ``src/`` fails here, with the
linter's own report as the assertion message.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.registry import get_static_rules
from repro.lint.report import render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def run_cli(args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", "--no-cache", *args],
        cwd=cwd or REPO_ROOT, env=env,
        capture_output=True, text=True,
    )


class TestTreeIsClean:
    def test_src_tree_is_clean(self):
        # The full static contract: SIM1xx plus the MC30x spec rules.
        findings = lint_paths([str(SRC)], rules=get_static_rules())
        assert findings == [], "\n" + render_text(findings)

    def test_cli_exits_zero_on_clean_tree(self):
        result = run_cli(["src"])
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout


class TestSeededViolationsAreCaught:
    def test_unseeded_default_rng_reintroduced(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad_alloc.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import numpy as np\n\n\n"
            "def pick():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng.integers(0, 10)\n"
        )
        findings = lint_paths([str(tmp_path)])
        assert [f.rule for f in findings] == ["unseeded-rng"]
        assert findings[0].line == 5

    def test_cli_exits_nonzero_with_readable_report(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n"
                       "r = np.random.default_rng()\n")
        result = run_cli([str(bad)])
        assert result.returncode == 1
        assert "SIM101" in result.stdout
        assert "unseeded-rng" in result.stdout
        assert f"{bad}:2:" in result.stdout

    def test_cli_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("t = __import__('time').time\n"
                       "key = hash('x')\n")
        result = run_cli([str(bad), "--format", "json"])
        assert result.returncode == 1
        data = json.loads(result.stdout)
        assert data["count"] == len(data["findings"]) >= 1

    def test_cli_missing_path_is_usage_error(self):
        result = run_cli(["definitely/not/a/path"])
        assert result.returncode == 2

    def test_cli_list_rules(self):
        result = run_cli(["--list-rules"])
        assert result.returncode == 0
        # The unified registry: static SIM and MC rules plus the
        # runtime-only SAN2xx / MC31x codes.
        for code in ("SIM101", "SIM105", "SIM110",
                     "MC301", "MC311", "SAN204"):
            assert code in result.stdout


class TestSanitizeBridge:
    def test_lint_cli_sanitize_merges_clean(self):
        result = run_cli(["src", "--sanitize"])
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_lint_cli_sanitize_json_schema(self):
        result = run_cli(["src", "--sanitize", "--format", "json"])
        assert result.returncode == 0, result.stdout + result.stderr
        data = json.loads(result.stdout)
        assert data == {"count": 0, "findings": []}


class TestReproCliIntegration:
    def test_repro_cli_lint_subcommand(self):
        from repro.cli import main

        assert main(["lint", "src"]) == 0

    def test_repro_cli_lint_sanitize_passthrough(self):
        from repro.cli import main

        assert main(["lint", "src", "--sanitize"]) == 0

    def test_repro_cli_lint_select(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("key = hash('x')\n")
        assert main(["lint", str(bad),
                     "--select", "builtin-hash"]) == 1
        out = capsys.readouterr().out
        assert "builtin-hash" in out
