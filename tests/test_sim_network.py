"""Network model tests: delivery, scoping hook, loss, jitter."""

import pytest

from repro.sim.events import EventScheduler
from repro.sim.network import LinkModel, NetworkModel, Packet
from repro.sim.rng import RandomStreams


def star_receiver_map(source, ttl):
    """Everyone (0..4) hears everyone; delay = 0.01 * receiver id."""
    return [(node, 0.01 * node) for node in range(5)]


def ttl_limited_map(source, ttl):
    """Node i requires ttl >= i to be reached."""
    return [(node, 0.01) for node in range(5) if ttl >= node]


@pytest.fixture
def sched():
    return EventScheduler()


class TestLinkModel:
    def test_valid(self):
        link = LinkModel(delay=0.01, loss=0.5)
        assert link.delay == 0.01

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(delay=-1.0)

    def test_bad_loss_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(delay=0.0, loss=1.5)


class TestNetworkModel:
    def test_delivers_to_listeners_with_delay(self, sched):
        net = NetworkModel(sched, star_receiver_map)
        got = []
        net.listen(2, lambda node, pkt: got.append((node, sched.now)))
        net.send(Packet(source=0, group=0, ttl=16))
        sched.run()
        assert got == [(2, pytest.approx(0.02))]

    def test_sender_does_not_hear_itself(self, sched):
        net = NetworkModel(sched, star_receiver_map)
        got = []
        net.listen(0, lambda node, pkt: got.append(node))
        net.listen(1, lambda node, pkt: got.append(node))
        net.send(Packet(source=0, group=0, ttl=16))
        sched.run()
        assert got == [1]

    def test_non_listeners_skipped(self, sched):
        net = NetworkModel(sched, star_receiver_map)
        count = net.send(Packet(source=0, group=0, ttl=16))
        assert count == 0

    def test_ttl_passed_to_receiver_map(self, sched):
        net = NetworkModel(sched, ttl_limited_map)
        got = []
        for node in range(5):
            net.listen(node, lambda n, p: got.append(n))
        net.send(Packet(source=0, group=0, ttl=2))
        sched.run()
        assert sorted(got) == [1, 2]

    def test_unlisten_stops_delivery(self, sched):
        net = NetworkModel(sched, star_receiver_map)
        got = []
        net.listen(1, lambda n, p: got.append(n))
        net.unlisten(1)
        net.send(Packet(source=0, group=0, ttl=16))
        sched.run()
        assert got == []

    def test_full_loss_drops_everything(self, sched):
        net = NetworkModel(sched, star_receiver_map,
                           streams=RandomStreams(0), loss_rate=1.0)
        got = []
        net.listen(1, lambda n, p: got.append(n))
        net.send(Packet(source=0, group=0, ttl=16))
        sched.run()
        assert got == []
        assert net.packets_lost == 1

    def test_loss_rate_statistics(self, sched):
        net = NetworkModel(sched, star_receiver_map,
                           streams=RandomStreams(3), loss_rate=0.3)
        hits = []
        for node in range(1, 5):
            net.listen(node, lambda n, p: hits.append(n))
        for __ in range(500):
            net.send(Packet(source=0, group=0, ttl=16))
        sched.run()
        # 4 receivers * 500 sends * 0.7 expected delivery.
        assert 1250 <= len(hits) <= 1550

    def test_jitter_spreads_delivery_times(self, sched):
        net = NetworkModel(sched, star_receiver_map,
                           streams=RandomStreams(1), jitter=0.5)
        times = []
        net.listen(1, lambda n, p: times.append(sched.now))
        for __ in range(50):
            net.send(Packet(source=0, group=0, ttl=16))
        sched.run()
        assert max(times) - min(times) > 0.1
        assert all(t >= 0.01 for t in times)

    def test_invalid_loss_rejected(self, sched):
        with pytest.raises(ValueError):
            NetworkModel(sched, star_receiver_map, loss_rate=2.0)

    def test_invalid_jitter_rejected(self, sched):
        with pytest.raises(ValueError):
            NetworkModel(sched, star_receiver_map, jitter=-0.1)

    def test_packet_stamped_with_send_time(self, sched):
        net = NetworkModel(sched, star_receiver_map)
        packet = Packet(source=0, group=0, ttl=16)
        sched.schedule(3.0, lambda: net.send(packet))
        sched.run()
        assert packet.sent_at == 3.0

    def test_counters(self, sched):
        net = NetworkModel(sched, star_receiver_map)
        net.listen(1, lambda n, p: None)
        net.listen(2, lambda n, p: None)
        net.send(Packet(source=0, group=0, ttl=16))
        sched.run()
        assert net.packets_sent == 1
        assert net.packets_delivered == 2
