"""End-to-end integration tests: directories over the simulated Mbone.

These exercise the whole stack at once — synthetic topology, DVMRP
scoping, lossy SAP delivery, caches, allocation and the clash protocol
— in the configurations the paper discusses.
"""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.sap.announcer import ExponentialBackoffStrategy
from repro.sap.directory import SessionDirectory
from repro.sim.adapters import build_network_stack
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.sim.rng import RandomStreams
from repro.topology.mbone import MboneParams, generate_mbone


@pytest.fixture(scope="module")
def stack():
    topo = generate_mbone(MboneParams(total_nodes=120, seed=77))
    scope_map, delay_forest, receiver_map = build_network_stack(topo)
    return topo, scope_map, receiver_map


def build_directories(stack, sched, nodes, loss=0.0, space_size=512,
                      allocator_cls="iprma7", **dir_kwargs):
    topo, scope_map, receiver_map = stack
    net = NetworkModel(sched, receiver_map, streams=RandomStreams(5),
                       loss_rate=loss)
    space = MulticastAddressSpace.abstract(space_size)
    directories = []
    for node in nodes:
        rng = np.random.default_rng(1000 + node)
        if allocator_cls == "iprma7":
            allocator = StaticIprmaAllocator.seven_band(space_size, rng)
        else:
            allocator = AdaptiveIprmaAllocator.aipr1(space_size, rng=rng)
        directories.append(SessionDirectory(
            node, sched, net, allocator, space, rng=rng, **dir_kwargs
        ))
    return net, directories


class TestScopedDiscovery:
    def test_global_sessions_seen_everywhere(self, stack):
        topo, scope_map, __ = stack
        sched = EventScheduler()
        nodes = [0, 10, 50, topo.num_nodes - 1]
        __, dirs = build_directories(stack, sched, nodes)
        dirs[0].create_session("world", ttl=191)
        sched.run(until=5.0)
        for directory in dirs[1:]:
            assert "world" in [d.name for d in directory.known_sessions()]

    def test_local_sessions_stay_local(self, stack):
        topo, scope_map, __ = stack
        sched = EventScheduler()
        # Find a pair outside each other's ttl-15 scope.
        src = 5
        outside = [v for v in range(topo.num_nodes)
                   if scope_map.need[src, v] > 15]
        inside = [v for v in range(topo.num_nodes)
                  if 0 < scope_map.need[src, v] <= 15]
        if not inside:
            pytest.skip("seeded map has no ttl-15 neighbour for node 5")
        nodes = [src, inside[0], outside[0]]
        __, dirs = build_directories(stack, sched, nodes)
        dirs[0].create_session("campus", ttl=15)
        sched.run(until=5.0)
        assert "campus" in [d.name for d in dirs[1].known_sessions()]
        assert "campus" not in [d.name for d in dirs[2].known_sessions()]

    def test_loss_delays_but_does_not_stop_discovery(self, stack):
        sched = EventScheduler()
        __, dirs = build_directories(stack, sched, [0, 40], loss=0.6)
        dirs[0].create_session(
            "lossy", ttl=191
        )
        # With 60% loss and 600 s re-announcement, discovery can take
        # several periods but is eventually certain.
        sched.run(until=5 * 600.0 + 5)
        assert "lossy" in [d.name for d in dirs[1].known_sessions()]

    def test_backoff_strategy_discovers_fast_under_loss(self, stack):
        sched = EventScheduler()
        __, dirs = build_directories(
            stack, sched, [0, 40], loss=0.5,
            strategy_factory=ExponentialBackoffStrategy,
        )
        dirs[0].create_session("fast", ttl=191)
        sched.run(until=60.0)
        assert "fast" in [d.name for d in dirs[1].known_sessions()]


class TestConcurrentAllocation:
    def test_many_directories_allocate_without_global_clash(self, stack):
        """With perfect (lossless) announcements and IPR-7 over a
        roomy space, concurrent global allocations never clash."""
        topo, scope_map, __ = stack
        sched = EventScheduler()
        nodes = list(range(0, topo.num_nodes, 7))
        __, dirs = build_directories(stack, sched, nodes,
                                     space_size=2048)
        sessions = []
        for round_no in range(4):
            for directory in dirs:
                sessions.append(directory.create_session(
                    f"s{round_no}@{directory.node}", ttl=191
                ))
            sched.run(until=sched.now + 5.0)
        addresses = [s.address for s in sessions]
        assert len(set(addresses)) == len(addresses)

    def test_racing_allocations_resolved_by_clash_protocol(self, stack):
        """Two directories allocating simultaneously (before hearing
        each other) may pick the same address; the clash protocol must
        separate them."""
        topo, scope_map, __ = stack
        sched = EventScheduler()
        nodes = [0, 40]
        __, dirs = build_directories(stack, sched, nodes, space_size=512)
        # Force the race deterministically: same allocator seed means
        # the same first pick from an empty view.
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        dirs[0].allocator = StaticIprmaAllocator.seven_band(512, rng_a)
        dirs[1].allocator = StaticIprmaAllocator.seven_band(512, rng_b)
        a = dirs[0].create_session("left", ttl=191)
        b = dirs[1].create_session("right", ttl=191)
        assert a.address == b.address  # the race happened
        sched.run(until=10.0)
        assert (dirs[0].own_sessions()[0].session.address
                != dirs[1].own_sessions()[0].session.address)
        # The deterministic tie-break moves exactly one side, once.
        assert dirs[0].address_changes + dirs[1].address_changes == 1


class TestAdaptiveEndToEnd:
    def test_adaptive_allocator_over_sap(self, stack):
        topo, scope_map, __ = stack
        sched = EventScheduler()
        nodes = [0, 25, 60]
        __, dirs = build_directories(stack, sched, nodes,
                                     allocator_cls="adaptive",
                                     space_size=1024)
        created = []
        for ttl in (191, 127, 63, 15):
            for directory in dirs:
                created.append(directory.create_session(
                    f"t{ttl}@{directory.node}", ttl=ttl))
            sched.run(until=sched.now + 3.0)
        # Higher-TTL sessions live above lower-TTL sessions (band
        # clustering at the top of the space).
        by_ttl = {}
        for session in created:
            by_ttl.setdefault(session.ttl, []).append(session.address)
        assert min(by_ttl[191]) > max(by_ttl[15])
