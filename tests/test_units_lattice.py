"""The semantic-unit lattice and its algebra.

The algebra is the paper's address/time geometry: ``Addr`` is an
affine point over ``SlotIndex``/``Count`` offsets, ``SimTime`` is
affine over ``Duration``, and the discrete units translate by
``Count``.  These tests pin the exact rules the abstract interpreter
relies on, in particular the quiet-by-default behaviour around TOP.
"""

import pytest

from repro.units.lattice import (
    CONFLICT,
    TOP,
    UNIT_DEFAULT_RANGE,
    UNITS,
    assignable,
    combine_additive,
    comparable,
    is_unit,
    join,
)
from repro.units.types import UNIT_NAMES


class TestLatticeShape:
    def test_the_eight_units(self):
        assert UNITS == {"Addr", "SlotIndex", "Ttl", "ScopeMask",
                         "SimTime", "Duration", "SeedInt", "Count"}
        assert set(UNIT_NAMES) == UNITS

    def test_top_and_conflict_are_not_units(self):
        assert not is_unit(TOP)
        assert not is_unit(CONFLICT)
        assert not is_unit(None)
        assert is_unit("Addr")

    def test_join_is_flat(self):
        assert join("Addr", "Addr") == "Addr"
        assert join("Addr", TOP) == TOP
        assert join(TOP, "Ttl") == TOP
        # distinct concrete units have no common concrete ancestor
        assert join("Addr", "SlotIndex") == TOP

    def test_every_unit_has_a_default_range(self):
        assert set(UNIT_DEFAULT_RANGE) == set(UNITS)
        lo, hi = UNIT_DEFAULT_RANGE["Addr"]
        assert lo == 0xE0000000 and hi == 0xF0000000 - 1
        assert UNIT_DEFAULT_RANGE["Ttl"] == (1, 255)
        assert UNIT_DEFAULT_RANGE["SlotIndex"][0] == 0


class TestAdditiveAlgebra:
    @pytest.mark.parametrize("left,op,right,expect", [
        # affine address geometry
        ("Addr", "+", "SlotIndex", "Addr"),
        ("Addr", "-", "SlotIndex", "Addr"),
        ("SlotIndex", "+", "Addr", "Addr"),   # symmetric + closure
        ("Addr", "-", "Addr", "SlotIndex"),
        # time geometry
        ("SimTime", "+", "Duration", "SimTime"),
        ("Duration", "+", "SimTime", "SimTime"),
        ("SimTime", "-", "Duration", "SimTime"),
        ("SimTime", "-", "SimTime", "Duration"),
        ("Duration", "-", "Duration", "Duration"),
        # discrete translations
        ("SlotIndex", "-", "SlotIndex", "Count"),
        ("SlotIndex", "+", "Count", "SlotIndex"),
        ("Ttl", "-", "Ttl", "Count"),
        ("Count", "+", "Count", "Count"),
    ])
    def test_legal_pairs(self, left, op, right, expect):
        unit, ok = combine_additive(left, op, right)
        assert ok
        assert unit == expect

    @pytest.mark.parametrize("left,op,right", [
        ("Addr", "+", "Addr"),        # two absolute points
        ("Addr", "+", "Ttl"),
        ("SimTime", "+", "SimTime"),
        ("Ttl", "+", "Duration"),
        ("Addr", "-", "SimTime"),
        ("SlotIndex", "-", "Addr"),   # subtraction is not symmetric
    ])
    def test_illegal_pairs_are_unit701(self, left, op, right):
        __, ok = combine_additive(left, op, right)
        assert not ok

    def test_top_mixes_silently(self):
        unit, ok = combine_additive(TOP, "+", "SimTime")
        assert ok and unit == "SimTime"
        unit, ok = combine_additive("SlotIndex", "+", TOP)
        assert ok and unit == "SlotIndex"
        unit, ok = combine_additive(TOP, "+", TOP)
        assert ok and unit == TOP

    def test_subtracting_unknown_expression_drops_to_top(self):
        # SimTime - x is a SimTime if x is a Duration but a Duration
        # if x is a SimTime; guessing either way misfires on
        # ``now - entry.last_heard > timeout``.
        unit, ok = combine_additive("SimTime", "-", TOP)
        assert ok and unit == TOP

    def test_subtracting_a_literal_preserves_the_unit(self):
        unit, ok = combine_additive("SlotIndex", "-", TOP,
                                    right_is_literal=True)
        assert ok and unit == "SlotIndex"
        unit, ok = combine_additive("SimTime", "-", TOP,
                                    right_is_literal=True)
        assert ok and unit == "SimTime"


class TestComparisons:
    def test_index_against_count_is_the_canonical_guard(self):
        assert comparable("SlotIndex", "Count")
        assert comparable("Count", "SlotIndex")

    def test_same_unit_always_compares(self):
        for unit in UNITS:
            assert comparable(unit, unit)

    def test_top_compares_with_anything(self):
        assert comparable(TOP, "Addr")
        assert comparable("SimTime", TOP)

    @pytest.mark.parametrize("left,right", [
        ("SimTime", "Duration"),
        ("Ttl", "SimTime"),
        ("Addr", "SlotIndex"),
        ("Addr", "Count"),
        ("ScopeMask", "Ttl"),
    ])
    def test_cross_scale_comparisons_are_unit702(self, left, right):
        assert not comparable(left, right)


class TestAssignability:
    def test_count_flows_into_discrete_units(self):
        assert assignable("Count", "SlotIndex")
        assert assignable("Count", "Ttl")
        assert assignable("Count", "SeedInt")

    def test_nothing_flows_into_addr(self):
        for unit in UNITS - {"Addr"}:
            assert not assignable(unit, "Addr")

    def test_addr_flows_nowhere(self):
        for unit in UNITS - {"Addr"}:
            assert not assignable("Addr", unit)

    def test_times_and_durations_do_not_mix(self):
        assert not assignable("SimTime", "Duration")
        assert not assignable("Duration", "SimTime")

    def test_top_binds_everywhere(self):
        assert assignable(TOP, "Addr")
        assert assignable("Addr", TOP)
