"""Mbone and Doar generator tests."""

import numpy as np
import pytest

from repro.topology.doar import DoarParams, generate_doar
from repro.topology.graph import DVMRP_INFINITY
from repro.topology.mbone import (
    COUNTRY_THRESHOLD,
    EUROPE_COUNTRY_THRESHOLD,
    SITE_THRESHOLD,
    MboneParams,
    boundary_census,
    generate_mbone,
)


class TestMboneGenerator:
    def test_node_count_near_target(self, small_mbone):
        assert 130 <= small_mbone.num_nodes <= 180

    def test_connected(self, small_mbone):
        assert small_mbone.is_connected()

    def test_deterministic_for_seed(self):
        a = generate_mbone(MboneParams(total_nodes=100, seed=5))
        b = generate_mbone(MboneParams(total_nodes=100, seed=5))
        assert a.num_nodes == b.num_nodes
        assert [(l.u, l.v, l.metric, l.threshold) for l in a.links()] == \
               [(l.u, l.v, l.metric, l.threshold) for l in b.links()]

    def test_different_seeds_differ(self):
        a = generate_mbone(MboneParams(total_nodes=100, seed=5))
        b = generate_mbone(MboneParams(total_nodes=100, seed=6))
        edges_a = [(l.u, l.v) for l in a.links()]
        edges_b = [(l.u, l.v) for l in b.links()]
        assert edges_a != edges_b

    def test_boundary_policy_thresholds_present(self, small_mbone):
        census = boundary_census(small_mbone)
        assert SITE_THRESHOLD in census
        assert EUROPE_COUNTRY_THRESHOLD in census
        assert COUNTRY_THRESHOLD in census
        assert 1 in census
        # Plain links dominate.
        assert census[1] > census[SITE_THRESHOLD]

    def test_europe_borders_at_48_only_in_europe(self, small_mbone):
        for link in small_mbone.links():
            if link.threshold == EUROPE_COUNTRY_THRESHOLD:
                labels = (small_mbone.label(link.u) or "",
                          small_mbone.label(link.v) or "")
                assert any("europe" in label for label in labels)

    def test_metrics_below_dvmrp_infinity(self, small_mbone):
        assert all(l.metric < DVMRP_INFINITY for l in small_mbone.links())

    def test_labels_encode_hierarchy(self, small_mbone):
        hubs = [n for n in small_mbone.nodes()
                if (small_mbone.label(n) or "").endswith("/hub")]
        assert len(hubs) == 4

    def test_too_small_target_rejected(self):
        with pytest.raises(ValueError):
            MboneParams(total_nodes=10)

    def test_full_default_size(self):
        topo = generate_mbone(MboneParams(total_nodes=1864, seed=1998))
        assert abs(topo.num_nodes - 1864) < 40
        assert topo.is_connected()


class TestDoarGenerator:
    def test_basic_shape(self, small_doar):
        topo = small_doar.topology
        assert topo.num_nodes == 300
        assert topo.is_connected()
        # Tree links plus the redundant ones for nodes n/30..n/20.
        assert topo.num_links >= 299
        assert topo.num_links <= 299 + (300 // 20 - 300 // 30) + 2

    def test_tree_edges_form_spanning_tree(self, small_doar):
        assert len(small_doar.tree_edges) == 299
        tree = small_doar.shared_tree()
        assert tree.num_nodes == 300

    def test_tree_edge_connects_to_nearest_neighbor(self):
        doar = generate_doar(DoarParams(num_nodes=40, seed=3,
                                        redundant_links=False))
        coords = doar.coordinates
        for parent, child in doar.tree_edges:
            assert parent < child  # connected to a pre-existing node
            dist = np.hypot(*(coords[child] - coords[parent]))
            earlier = coords[:child]
            best = np.min(np.hypot(earlier[:, 0] - coords[child, 0],
                                   earlier[:, 1] - coords[child, 1]))
            assert dist == pytest.approx(best)

    def test_no_redundant_links_option(self):
        doar = generate_doar(DoarParams(num_nodes=100, seed=1,
                                        redundant_links=False))
        assert doar.topology.num_links == 99

    def test_delays_scale_with_distance(self, small_doar):
        params = DoarParams(num_nodes=2)
        topo = small_doar.topology
        coords = small_doar.coordinates
        for link in topo.links():
            dist = float(np.hypot(*(coords[link.u] - coords[link.v])))
            expected = params.min_delay + dist * params.delay_scale
            assert link.delay == pytest.approx(expected)

    def test_deterministic(self):
        a = generate_doar(DoarParams(num_nodes=80, seed=9))
        b = generate_doar(DoarParams(num_nodes=80, seed=9))
        assert a.tree_edges == b.tree_edges

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            DoarParams(num_nodes=1)

    def test_invalid_delay_scale_rejected(self):
        with pytest.raises(ValueError):
            DoarParams(num_nodes=10, delay_scale=0.0)
