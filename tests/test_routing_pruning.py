"""DVMRP prune/graft (membership-driven delivery) tests."""

import pytest

from repro.routing.pruning import GroupMembership, PruningSimulation
from repro.topology.graph import Topology


@pytest.fixture
def y_topology():
    """0 - 1, then 1 - 2 and 1 - 3 (a Y rooted anywhere)."""
    topo = Topology()
    for __ in range(4):
        topo.add_node()
    topo.add_link(0, 1)
    topo.add_link(1, 2)
    topo.add_link(1, 3)
    return topo


class TestGroupMembership:
    def test_join_leave(self):
        membership = GroupMembership()
        membership.join(7, 1)
        membership.join(7, 2)
        assert membership.members(7) == {1, 2}
        assert membership.is_member(7, 1)
        membership.leave(7, 1)
        assert membership.members(7) == {2}
        membership.leave(7, 2)
        assert membership.groups() == []
        membership.leave(7, 99)  # idempotent on unknown state

    def test_groups_listing(self):
        membership = GroupMembership()
        membership.join(9, 0)
        membership.join(3, 0)
        assert membership.groups() == [3, 9]


class TestPrunedTree:
    def test_no_members_prunes_everything_but_source(self, y_topology):
        sim = PruningSimulation(y_topology)
        tree = sim.pruned_tree(source=0, group=5)
        assert tree.forwarding == {0}
        assert tree.pruned == {1, 2, 3}

    def test_single_member_keeps_path_only(self, y_topology):
        sim = PruningSimulation(y_topology)
        sim.membership.join(5, 2)
        tree = sim.pruned_tree(source=0, group=5)
        assert tree.forwarding == {0, 1, 2}
        assert tree.pruned == {3}

    def test_graft_restores_branch(self, y_topology):
        sim = PruningSimulation(y_topology)
        sim.membership.join(5, 2)
        assert 3 in sim.pruned_tree(0, 5).pruned
        sim.membership.join(5, 3)  # graft
        tree = sim.pruned_tree(0, 5)
        assert tree.forwarding == {0, 1, 2, 3}
        assert tree.pruned == set()

    def test_leave_triggers_reprune(self, y_topology):
        sim = PruningSimulation(y_topology)
        sim.membership.join(5, 2)
        sim.membership.join(5, 3)
        sim.membership.leave(5, 3)
        assert 3 in sim.pruned_tree(0, 5).pruned

    def test_intermediate_member(self, y_topology):
        sim = PruningSimulation(y_topology)
        sim.membership.join(5, 1)
        tree = sim.pruned_tree(0, 5)
        assert tree.forwarding == {0, 1}
        assert tree.pruned == {2, 3}

    def test_traffic_bearing_links(self, y_topology):
        sim = PruningSimulation(y_topology)
        sim.membership.join(5, 2)
        assert sim.traffic_bearing_links(0, 5) == 2  # 0-1, 1-2
        sim.membership.join(5, 3)
        assert sim.traffic_bearing_links(0, 5) == 3

    def test_savings(self, y_topology):
        sim = PruningSimulation(y_topology)
        assert sim.savings(0, 5) == pytest.approx(0.75)
        sim.membership.join(5, 2)
        assert sim.savings(0, 5) == pytest.approx(0.25)

    def test_source_as_member_of_own_group(self, y_topology):
        sim = PruningSimulation(y_topology)
        sim.membership.join(5, 0)
        tree = sim.pruned_tree(0, 5)
        assert tree.forwarding == {0}

    def test_on_mbone_sparse_group_prunes_most(self, small_mbone):
        sim = PruningSimulation(small_mbone)
        sim.membership.join(1, 5)
        sim.membership.join(1, 20)
        tree = sim.pruned_tree(source=0, group=1)
        assert {5, 20}.issubset(tree.forwarding)
        # A two-member group needs a small fraction of the map.
        assert len(tree.forwarding) < small_mbone.num_nodes / 3
