"""Session directory integration tests on a tiny full-mesh network."""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.sap.clash_protocol import ClashPolicy
from repro.sap.directory import SessionDirectory
from repro.sap.response_timer import UniformDelayTimer
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel

SPACE = MulticastAddressSpace.abstract(64)


def full_mesh(source, ttl, nodes=4, delay=0.01):
    return [(node, delay) for node in range(nodes)]


def make_directory(node, sched, net, seed=None, **kwargs):
    rng = np.random.default_rng(seed if seed is not None else node)
    allocator = InformedRandomAllocator(SPACE.size, rng)
    return SessionDirectory(node, sched, net, allocator, SPACE,
                            rng=rng, **kwargs)


@pytest.fixture
def sched():
    return EventScheduler()


@pytest.fixture
def net(sched):
    return NetworkModel(sched, full_mesh)


class TestDiscovery:
    def test_peer_learns_session(self, sched, net):
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        session = alice.create_session("seminar", ttl=63)
        sched.run(until=1.0)
        names = [d.name for d in bob.known_sessions()]
        assert names == ["seminar"]
        entry = bob.cache.entries()[0]
        assert entry.address_index == session.address
        assert entry.ttl == 63

    def test_allocator_avoids_discovered_addresses(self, sched, net):
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        taken = {alice.create_session(f"s{i}", ttl=63).address
                 for i in range(40)}
        sched.run(until=1.0)
        new = bob.create_session("mine", ttl=63)
        assert new.address not in taken

    def test_delete_session_clears_peers(self, sched, net):
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        session = alice.create_session("temp", ttl=63)
        sched.run(until=1.0)
        assert len(bob.cache) == 1
        alice.delete_session(session)
        sched.run(until=2.0)
        assert len(bob.cache) == 0
        assert alice.own_sessions() == []

    def test_delete_foreign_session_raises(self, sched, net):
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        session = alice.create_session("temp", ttl=63)
        with pytest.raises(KeyError):
            bob.delete_session(session)

    def test_own_sessions_included_in_allocation_view(self, sched, net):
        alice = make_directory(0, sched, net)
        taken = {alice.create_session(f"s{i}", ttl=63).address
                 for i in range(30)}
        assert len(taken) == 30  # never reused its own addresses

    def test_cache_expiry_via_directory(self, sched, net):
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        session = alice.create_session("temp", ttl=63)
        sched.run(until=1.0)
        # Silence alice, then advance beyond the cache timeout.
        alice.own_sessions()[0].announcer.stop()
        sched.run(until=5000.0)
        assert bob.expire_cache() == 1
        assert len(bob.cache) == 0


def rig_clash(directory, address):
    """Point a directory's (single) own session at ``address``."""
    own = directory.own_sessions()[0]
    own.session.address = address
    own.description.connection_address = SPACE.index_to_ip(address)
    own.description.version += 1
    return own


class TestClashPhases:
    def test_phase1_established_session_defends(self, sched, net):
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net, enable_clash_protocol=False)
        session = alice.create_session("old", ttl=63)
        sched.run(until=100.0)  # alice's session is now established
        bob.create_session("new", ttl=63)
        own_bob = rig_clash(bob, session.address)
        alice_before = alice.own_sessions()[0].announcer.announcements_sent
        own_bob.announcer.announce_now()
        sched.run(until=101.0)
        alice_after = alice.own_sessions()[0].announcer.announcements_sent
        assert alice.clash_handler.clashes_seen >= 1
        assert alice_after > alice_before  # immediate re-announcement
        assert alice.address_changes == 0  # defended, did not move

    def test_phase2_newcomer_retreats(self, sched, net):
        alice = make_directory(0, sched, net, enable_clash_protocol=False)
        bob = make_directory(1, sched, net,
                             clash_policy=ClashPolicy(recent_window=30.0))
        session = alice.create_session("old", ttl=63)
        sched.run(until=50.0)
        bob.create_session("new", ttl=63)
        own_bob = rig_clash(bob, session.address)
        # Alice's next periodic announcement reaches bob while bob's
        # session is still inside the recent window.
        alice.own_sessions()[0].announcer.announce_now()
        sched.run(until=51.0)
        assert bob.address_changes == 1
        assert own_bob.session.address != session.address
        assert bob.clash_handler.retreats == 1

    def test_phase3_third_party_defends_partitioned_origin(self, sched,
                                                           net):
        fast_timer = ClashPolicy(
            recent_window=30.0,
            timer_factory=lambda rng: UniformDelayTimer(1.0, 1.0, rng),
        )
        slow_timer = ClashPolicy(
            recent_window=30.0,
            timer_factory=lambda rng: UniformDelayTimer(5.0, 5.0, rng),
        )
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        carol = make_directory(2, sched, net, clash_policy=fast_timer)
        dave = make_directory(3, sched, net, clash_policy=slow_timer)
        session = alice.create_session("old", ttl=63)
        sched.run(until=50.0)
        # Alice is partitioned: she can no longer hear anything.
        net.unlisten(0)
        bob.create_session("new", ttl=63)
        own_bob = rig_clash(bob, session.address)
        own_bob.announcer.announce_now()
        sched.run(until=60.0)
        # Carol (fast timer) proxied the defence; Dave was suppressed.
        assert carol.clash_handler.defences_sent == 1
        assert dave.clash_handler.defences_sent == 0
        # Bob saw the defence within his recent window and retreated.
        assert bob.address_changes >= 1
        assert own_bob.session.address != session.address

    def test_third_party_suppressed_when_origin_defends(self, sched, net):
        policy = ClashPolicy(
            recent_window=30.0,
            timer_factory=lambda rng: UniformDelayTimer(2.0, 2.0, rng),
        )
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        carol = make_directory(2, sched, net, clash_policy=policy)
        session = alice.create_session("old", ttl=63)
        sched.run(until=50.0)
        bob.create_session("new", ttl=63)
        own_bob = rig_clash(bob, session.address)
        own_bob.announcer.announce_now()
        sched.run(until=60.0)
        # Alice defended herself immediately (phase 1), so carol's
        # pending third-party defence found a fresher last_heard and
        # stayed silent.
        assert carol.clash_handler.defences_sent == 0

    def test_clash_protocol_disabled(self, sched, net):
        alice = make_directory(0, sched, net,
                               enable_clash_protocol=False)
        assert alice.clash_handler is None

    def test_simultaneous_newcomers_tiebreak_moves_one(self, sched, net):
        """Two sessions announced in the same instant with the same
        address: the deterministic tie-break makes exactly one side
        retreat and the other stand (no retreat livelock)."""
        alice = make_directory(0, sched, net)
        bob = make_directory(1, sched, net)
        a = alice.create_session("left", ttl=63)
        bob.create_session("right", ttl=63)
        own_bob = rig_clash(bob, a.address)
        own_bob.announcer.announce_now()
        sched.run(until=10.0)
        assert alice.address_changes + bob.address_changes == 1
        assert (alice.own_sessions()[0].session.address
                != bob.own_sessions()[0].session.address)

    def test_defence_rate_limited(self, sched, net):
        """A peer re-announcing a clashing session every 100 ms cannot
        provoke more than ~1 defence per defend_interval."""
        alice = make_directory(
            0, sched, net,
            clash_policy=ClashPolicy(recent_window=1.0,
                                     defend_interval=1.0),
        )
        bob = make_directory(1, sched, net, enable_clash_protocol=False)
        session = alice.create_session("old", ttl=63)
        sched.run(until=50.0)  # alice's session is established
        bob.create_session("new", ttl=63)
        own_bob = rig_clash(bob, session.address)
        before = alice.own_sessions()[0].announcer.announcements_sent
        for i in range(20):
            sched.schedule(0.1 * i, own_bob.announcer.announce_now)
        sched.run(until=52.5)
        defences = (alice.own_sessions()[0].announcer.announcements_sent
                    - before)
        # 20 provocations in ~2 s, defend_interval 1 s => at most 3-4
        # defences (plus nothing else).
        assert 1 <= defences <= 4
