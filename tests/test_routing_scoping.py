"""TTL scoping (ScopeMap) tests — the heart of the reproduction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.scoping import UNREACHABLE_TTL, ScopeMap
from repro.topology.graph import Topology


class TestChainScoping:
    """The deterministic chain fixture: need[0] = [0, 2, 18, 18, 68]."""

    def test_need_from_node0(self, chain_scope_map):
        assert chain_scope_map.need[0].tolist() == [0, 2, 18, 18, 68]

    def test_need_from_node4(self, chain_scope_map):
        # From 4: hop1 crosses the 64-threshold: need 65; then 16
        # threshold at hop 3 gives max(65, 16+3)=65; plain links +hops.
        assert chain_scope_map.need[4].tolist() == [65, 65, 65, 65, 0]

    def test_asymmetry(self, chain_scope_map):
        """Fig. 9: thresholds not equidistant => asymmetric scoping."""
        need = chain_scope_map.need
        assert need[0, 4] == 68
        assert need[4, 0] == 65
        assert need[0, 4] != need[4, 0]

    def test_reachable_masks(self, chain_scope_map):
        assert chain_scope_map.reachable(0, 1).tolist() == [
            True, False, False, False, False
        ]
        assert chain_scope_map.reachable(0, 2).tolist() == [
            True, True, False, False, False
        ]
        assert chain_scope_map.reachable(0, 18).tolist() == [
            True, True, True, True, False
        ]
        assert chain_scope_map.reachable(0, 255).tolist() == [
            True, True, True, True, True
        ]

    def test_can_hear(self, chain_scope_map):
        assert chain_scope_map.can_hear(listener=3, source=0, ttl=18)
        assert not chain_scope_map.can_hear(listener=3, source=0, ttl=17)

    def test_visible_mask(self, chain_scope_map):
        sources = np.array([0, 0, 4])
        ttls = np.array([2, 18, 70])
        visible = chain_scope_map.visible_mask(1, sources, ttls)
        assert visible.tolist() == [True, True, True]
        visible_at_4 = chain_scope_map.visible_mask(4, sources, ttls)
        assert visible_at_4.tolist() == [False, False, True]

    def test_scopes_overlap(self, chain_scope_map):
        # Both local around node 0/1: overlap.
        assert chain_scope_map.scopes_overlap(0, 2, 1, 2)
        # Node 0 with ttl 2 reaches {0,1}; node 4 with ttl 64 reaches
        # only {4}: no overlap.
        assert not chain_scope_map.scopes_overlap(0, 2, 4, 64)
        # Node 4 with ttl 65 reaches everything: overlap with anything.
        assert chain_scope_map.scopes_overlap(0, 2, 4, 65)

    def test_scope_size(self, chain_scope_map):
        assert chain_scope_map.scope_size(0, 2) == 2
        assert chain_scope_map.scope_size(0, 255) == 5

    def test_reachable_cached_and_readonly(self, chain_scope_map):
        mask = chain_scope_map.reachable(0, 18)
        assert chain_scope_map.reachable(0, 18) is mask
        with pytest.raises(ValueError):
            mask[0] = False


class TestScopeMapGeneral:
    def test_diagonal_zero(self, small_scope_map):
        assert (np.diag(small_scope_map.need) == 0).all()

    def test_need_within_ttl_bounds_when_connected(self, small_scope_map):
        off_diag = small_scope_map.need + np.eye(
            small_scope_map.num_nodes, dtype=small_scope_map.need.dtype
        )
        assert (off_diag > 0).all()
        assert small_scope_map.need.max() < UNREACHABLE_TTL

    def test_monotone_in_ttl(self, small_scope_map):
        """Raising TTL never shrinks the reach set."""
        for source in (0, 5, 17):
            smaller = small_scope_map.reachable(source, 15)
            bigger = small_scope_map.reachable(source, 63)
            assert not np.any(smaller & ~bigger)

    def test_ttl_one_reaches_only_plain_neighbors(self, small_scope_map):
        # TTL 1: packet dies at the first hop (decrement to 0 < any
        # threshold >= 1 fails: t-k >= theta needs 1-1 >= 1 false).
        for source in (0, 3):
            mask = small_scope_map.reachable(source, 1)
            assert mask.sum() == 1  # only the source itself

    def test_disconnected_pair_unreachable(self):
        topo = Topology()
        topo.add_node()
        topo.add_node()
        scope = ScopeMap.from_topology(topo)
        assert scope.need[0, 1] == UNREACHABLE_TTL
        assert not scope.can_hear(1, 0, 255)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            ScopeMap(np.zeros((2, 3), dtype=np.int16))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_property_need_equals_path_walk(self, seed):
        """need[s, v] computed by matrix iteration equals an explicit
        walk over the shortest-path tree."""
        rng = np.random.default_rng(seed)
        n = 12
        topo = Topology()
        for __ in range(n):
            topo.add_node()
        thresholds = [1, 1, 1, 16, 48, 64]
        for i in range(1, n):
            parent = int(rng.integers(0, i))
            topo.add_link(parent, i, metric=int(rng.integers(1, 4)),
                          threshold=int(rng.choice(thresholds)))
        scope = ScopeMap.from_topology(topo)

        from repro.routing.spt import ShortestPathForest
        forest = ShortestPathForest(topo, "metric")
        for source in range(0, n, 3):
            tree = forest.tree(source)
            for node in range(n):
                path = tree.path(node)
                expected = 0
                for hop, (u, v) in enumerate(zip(path, path[1:]), start=1):
                    theta = topo.link(u, v).threshold
                    expected = max(expected, theta + hop)
                assert scope.need[source, node] == expected
