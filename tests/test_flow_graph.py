"""Call-graph hard cases: the resolutions FLOW6xx soundness rests on.

Each test builds a small program from source and asserts the edges
(or their documented absence — see the known-unsound getattr case at
the bottom).
"""

from pathlib import Path

from repro.flow.graph import build_graph_from_sources

REPO_ROOT = Path(__file__).resolve().parents[1]


def graph_of(text, path="pkg/mod.py"):
    return build_graph_from_sources([(path, text)])


def callee_texts(graph, qualname):
    return {site.callee_text for site in graph.callees(qualname)}


def targets_of(graph, qualname):
    out = set()
    for site in graph.callees(qualname):
        out.update(site.targets)
    return out


def test_decorated_function_keeps_identity_and_edges():
    graph = graph_of(
        "import functools\n"
        "def deco(fn):\n"
        "    @functools.wraps(fn)\n"
        "    def inner(*a, **k):\n"
        "        return fn(*a, **k)\n"
        "    return inner\n"
        "@deco\n"
        "def leaf():\n"
        "    return 1\n"
        "def caller():\n"
        "    return leaf()\n"
    )
    assert "mod.leaf" in graph.functions
    assert "mod.leaf" in targets_of(graph, "mod.caller")


def test_bound_method_call_resolves_via_annotation_and_constructor():
    graph = graph_of(
        "class Cache:\n"
        "    def observe(self, item):\n"
        "        return item\n"
        "def from_annotation(cache: Cache):\n"
        "    return cache.observe(1)\n"
        "def from_constructor():\n"
        "    cache = Cache()\n"
        "    return cache.observe(2)\n"
    )
    method = "mod.Cache.observe"
    assert method in targets_of(graph, "mod.from_annotation")
    assert method in targets_of(graph, "mod.from_constructor")


def test_subclass_method_dispatch_is_cha():
    graph = graph_of(
        "class Base:\n"
        "    def allocate(self):\n"
        "        return 0\n"
        "class Derived(Base):\n"
        "    def allocate(self):\n"
        "        return 1\n"
        "def drive(allocator: Base):\n"
        "    return allocator.allocate()\n"
    )
    targets = targets_of(graph, "mod.drive")
    assert "mod.Base.allocate" in targets
    assert "mod.Derived.allocate" in targets


def test_super_call_resolves_to_base_chain():
    graph = graph_of(
        "class A:\n"
        "    def __init__(self):\n"
        "        self.x = 1\n"
        "class B(A):\n"
        "    pass\n"
        "class C(B):\n"
        "    def __init__(self):\n"
        "        super().__init__()\n"
    )
    assert "mod.A.__init__" in targets_of(
        graph, "mod.C.__init__")


def test_closure_over_loop_variable_records_free_names():
    graph = graph_of(
        "def outer():\n"
        "    fns = []\n"
        "    for item in range(3):\n"
        "        def inner():\n"
        "            return item\n"
        "        fns.append(inner)\n"
        "    return fns\n"
    )
    inner = graph.functions["mod.outer.inner"]
    assert "item" in inner.free_names


def test_functools_partial_creates_edge_to_wrapped():
    graph = graph_of(
        "import functools\n"
        "def job(params, rng):\n"
        "    return params\n"
        "def build():\n"
        "    return functools.partial(job, {})\n"
    )
    assert "mod.job" in targets_of(graph, "mod.build")


def test_dict_registry_of_callables_yields_callback_edges():
    graph = graph_of(
        "def fig5():\n"
        "    return 5\n"
        "def steady():\n"
        "    return 6\n"
        "HANDLERS = {'fig5': fig5, 'steady': steady}\n"
        "def dispatch(name):\n"
        "    return HANDLERS[name]()\n"
    )
    targets = targets_of(graph, "mod.dispatch")
    assert {"mod.fig5", "mod.steady"} <= targets


def test_decorator_registration_marks_fleet_jobs():
    graph = build_graph_from_sources([(
        "src/repro/fleet/jobs.py",
        "def register(name):\n"
        "    def deco(fn):\n"
        "        return fn\n"
        "    return deco\n"
        "@register('demo')\n"
        "def demo(params, rng, attempt):\n"
        "    return {}\n"
    )])
    assert graph.fleet_jobs.get("demo") == "repro.fleet.jobs.demo"


def test_known_unsound_getattr_dispatch_is_unresolved():
    """Documented soundness boundary: ``getattr(obj, name)()`` is not
    resolved — no string-keyed reflection in the graph.  FLOW615
    exists precisely because edges like this stay unresolved."""
    graph = graph_of(
        "class Tool:\n"
        "    def run(self):\n"
        "        return 1\n"
        "def reflect(tool: Tool, name):\n"
        "    return getattr(tool, name)()\n"
    )
    assert "mod.Tool.run" not in targets_of(graph,
                                                "mod.reflect")


def test_real_tree_graph_is_substantial():
    graph_paths = [str(REPO_ROOT / "src")]
    from repro.flow.graph import build_graph

    graph = build_graph(graph_paths)
    assert len(graph.functions) > 500
    assert len(graph.fleet_jobs) >= 8
    assert graph.fleet_jobs["demo-pi"].endswith("demo_pi")
