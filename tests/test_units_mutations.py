"""Seeded-mutation suite: every UNIT7xx rule catches its bug class.

Each mutation is a minimal pair: the mutant contains exactly the bug
the rule exists for (an address used as a dense index, a TTL compared
against a timestamp, an index one past ``space.size``...) and its
clean twin is the same code with the bug fixed.  The rule must fire
on the mutant — at the right line class — and stay silent on the
twin, which is what makes a future engine regression visible in both
directions (lost detection *and* new false positives).

The off-by-k sweep at the bottom draws offsets from a seeded RNG so
the boundary (k <= 0 proved, k >= 1 flagged) is exercised at varied
distances without flaky test selection.
"""

import random
import textwrap

import pytest

from repro.units.analysis import analyze_sources

SEED = 0x1998_0902  # Handley 1998; any fixed value works


def report_for(src, path="mut.py"):
    return analyze_sources([(path, textwrap.dedent(src))])


def hard_codes(report):
    return {f.code for f in report.findings}


#: (rule, mutant, clean twin)
MUTATIONS = [
    (
        "UNIT701",  # cross-unit arithmetic: absolute addr + ttl
        """
        def widen(addr: Addr, ttl: Ttl) -> Addr:
            return addr + ttl
        """,
        """
        def widen(addr: Addr, step: Count) -> Addr:
            return addr + step
        """,
    ),
    (
        "UNIT701",  # two absolute addresses added
        """
        def midpoint(a: Addr, b: Addr) -> Addr:
            return (a + b) // 2
        """,
        """
        def midpoint(a: Addr, b: Addr) -> Addr:
            return a + (b - a) // 2
        """,
    ),
    (
        "UNIT702",  # ttl/time comparison (the acceptance example)
        """
        def expired(ttl: Ttl, now: SimTime) -> bool:
            return ttl < now
        """,
        """
        def expired(expiry: SimTime, now: SimTime) -> bool:
            return expiry < now
        """,
    ),
    (
        "UNIT702",  # absolute time compared against a duration
        """
        def stale(created_at: SimTime, timeout: Duration) -> bool:
            return created_at > timeout
        """,
        """
        def stale(created_at: SimTime, now: SimTime,
                  timeout: Duration) -> bool:
            return now - created_at > timeout
        """,
    ),
    (
        "UNIT703",  # Addr passed where a SlotIndex is declared
        """
        def handle(addr: Addr):
            return store(addr)

        def store(index: SlotIndex):
            return index
        """,
        """
        def handle(addr: Addr, base: Addr):
            return store(addr - base)

        def store(index: SlotIndex):
            return index
        """,
    ),
    (
        "UNIT704",  # Addr returned from a SlotIndex-declared function
        """
        def locate(addr: Addr) -> SlotIndex:
            return addr
        """,
        """
        def locate(addr: Addr, base: Addr) -> SlotIndex:
            return addr - base
        """,
    ),
    (
        "UNIT705",  # addr-as-index subscript (the acceptance example)
        """
        def mark(addr: Addr, n: Count):
            table = [0] * n
            table[addr] = 1
            return table
        """,
        """
        def mark(index: SlotIndex, n: Count):
            table = [0] * n
            if index < n:
                table[index] = 1
            return table
        """,
    ),
    (
        "UNIT711",  # subscript one past the end
        """
        def drain(n: Count):
            xs = [0] * n
            total = 0
            for i in range(len(xs) + 1):
                total += xs[i]
            return total
        """,
        """
        def drain(n: Count):
            xs = [0] * n
            total = 0
            for i in range(len(xs)):
                total += xs[i]
            return total
        """,
    ),
    (
        "UNIT712",  # shift amount provably negative
        """
        def octets(word: ScopeMask):
            return [(word >> (k - 8)) & 0xFF for k in range(8)]
        """,
        """
        def octets(word: ScopeMask):
            return [(word >> (8 * k)) & 0xFF for k in range(4)]
        """,
    ),
    (
        "UNIT713",  # conversion one past space.size (the acceptance
        #             example's off-by-one)
        """
        def last_address(space: MulticastAddressSpace):
            return space.index_to_address(space.size)
        """,
        """
        def last_address(space: MulticastAddressSpace):
            return space.index_to_address(space.size - 1)
        """,
    ),
    (
        "UNIT713",  # address outside a statically-known block
        """
        from repro.core.address_space import MulticastAddressSpace

        def find():
            space = MulticastAddressSpace.sdr_dynamic()
            return space.address_to_index(0xE0000000)
        """,
        """
        from repro.core.address_space import MulticastAddressSpace

        def find():
            space = MulticastAddressSpace.sdr_dynamic()
            return space.address_to_index(0xE0028000)
        """,
    ),
]


@pytest.mark.parametrize(
    "rule,mutant,twin", MUTATIONS,
    ids=[f"{rule}-{index}" for index, (rule, __, ___)
         in enumerate(MUTATIONS)])
def test_mutant_fires_and_twin_is_clean(rule, mutant, twin):
    mutated = report_for(mutant)
    assert rule in hard_codes(mutated), (
        f"{rule} must fire on the mutant; got "
        f"{[f.format() for f in mutated.findings]}"
    )
    clean = report_for(twin)
    assert not clean.findings, (
        f"clean twin for {rule} must stay silent; got "
        f"{[f.format() for f in clean.findings]}"
    )


def test_unit714_obligation_on_a_hot_path_with_clean_twin():
    # Hot roots are matched by qualname suffix, so a class named like
    # the scheduler puts its ``step`` on the hot set.  An index the
    # checker cannot bound produces an advisory obligation there —
    # and only there.
    mutant = """
        class EventScheduler:
            def step(self, i: int, n: Count):
                xs = [0] * n
                return xs[i + 1]
    """
    report = report_for(mutant)
    assert not report.findings
    assert {f.code for f in report.advisory} == {"UNIT714"}

    twin = """
        class EventScheduler:
            def step(self, i: int, n: Count):
                xs = [0] * n
                succ = i + 1
                if 0 <= succ < n:
                    return xs[succ]
                return None
    """
    clean = report_for(twin)
    assert not clean.findings
    assert not clean.advisory


def test_seeded_off_by_k_boundary_sweep():
    rng = random.Random(SEED)
    offsets = ([0, 1] + [rng.randint(2, 50) for __ in range(4)]
               + [-rng.randint(1, 50) for __ in range(3)])
    for k in offsets:
        # size + k is one-or-more past the end for k >= 0; size - |k|
        # is in range for k <= -1 (a space has at least one address).
        index_expr = (f"space.size + {k}" if k >= 0
                      else f"space.size - {abs(k)}")
        src = f"""
            def probe(space: MulticastAddressSpace):
                return space.index_to_address({index_expr})
        """
        report = report_for(src)
        found = hard_codes(report)
        if k >= 0:
            assert "UNIT713" in found, f"size+{k} must escape"
        else:
            assert not report.findings, (
                f"size-{abs(k)} is in range; got "
                f"{[f.format() for f in report.findings]}"
            )
