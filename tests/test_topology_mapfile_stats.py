"""Map file round-trip and topology statistics tests."""

import pytest

from repro.topology.doar import DoarParams, generate_doar
from repro.topology.graph import Topology
from repro.topology.mapfile import dump_map, load_map, parse_map, save_map
from repro.topology.mbone import MboneParams, generate_mbone
from repro.topology.stats import format_summary, summarize


def topologies_equal(a: Topology, b: Topology) -> bool:
    if a.num_nodes != b.num_nodes or a.num_links != b.num_links:
        return False
    for node in a.nodes():
        if a.label(node) != b.label(node):
            return False
        pa, pb = a.position(node), b.position(node)
        if (pa is None) != (pb is None):
            return False
        if pa is not None and not all(
            abs(x - y) < 1e-9 for x, y in zip(pa, pb)
        ):
            return False
    for link in a.links():
        other = b.link(link.u, link.v)
        if (other.metric, other.threshold) != (link.metric,
                                               link.threshold):
            return False
        if abs(other.delay - link.delay) > 1e-12:
            return False
    return True


class TestMapRoundTrip:
    def test_mbone_roundtrip(self):
        topo = generate_mbone(MboneParams(total_nodes=120, seed=8))
        again = parse_map(dump_map(topo))
        assert topologies_equal(topo, again)

    def test_doar_roundtrip_with_positions(self):
        topo = generate_doar(DoarParams(num_nodes=60, seed=8)).topology
        again = parse_map(dump_map(topo))
        assert topologies_equal(topo, again)

    def test_save_load(self, tmp_path):
        topo = generate_mbone(MboneParams(total_nodes=60, seed=8))
        path = tmp_path / "test.map"
        save_map(topo, path)
        assert topologies_equal(topo, load_map(path))

    def test_comments_and_blank_lines_ignored(self):
        text = ("# repro-map 1\n\n# a comment\nnode 0\nnode 1\n"
                "link 0 1 metric 2 threshold 16 delay 0.5\n")
        topo = parse_map(text)
        assert topo.num_nodes == 2
        assert topo.link(0, 1).threshold == 16

    def test_defaults_applied(self):
        topo = parse_map("# repro-map 1\nnode 0\nnode 1\nlink 0 1\n")
        link = topo.link(0, 1)
        assert link.metric == 1
        assert link.threshold == 1

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            parse_map("node 0\n")

    def test_out_of_order_nodes_rejected(self):
        with pytest.raises(ValueError):
            parse_map("# repro-map 1\nnode 1\n")

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            parse_map("# repro-map 1\nnode 0 colour red\n")
        with pytest.raises(ValueError):
            parse_map("# repro-map 1\nnode 0\nnode 1\n"
                      "link 0 1 weight 3\n")
        with pytest.raises(ValueError):
            parse_map("# repro-map 1\nfrobnicate 1 2\n")

    def test_truncated_fields_rejected(self):
        with pytest.raises(ValueError):
            parse_map("# repro-map 1\nnode 0 label\n")
        with pytest.raises(ValueError):
            parse_map("# repro-map 1\nnode 0 pos 1.0\n")


class TestSummarize:
    def test_mbone_summary(self, small_mbone):
        summary = summarize(small_mbone)
        assert summary.num_nodes == small_mbone.num_nodes
        assert summary.connected
        assert summary.hop_diameter > 5
        assert 1.5 < summary.mean_degree < 4.0
        assert 16 in summary.threshold_census
        assert summary.threshold_census[1] > 0

    def test_disconnected_summary(self):
        topo = Topology()
        topo.add_node()
        topo.add_node()
        summary = summarize(topo)
        assert not summary.connected
        assert summary.hop_diameter == 0

    def test_format_summary(self, small_mbone):
        text = format_summary(summarize(small_mbone))
        assert "nodes:" in text
        assert "threshold census:" in text
        assert str(small_mbone.num_nodes) in text
