"""Tier-1 gate: the repo's own source must pass the flow analyses.

Mirrors ``test_lint_clean.py``: any future PR that lets an untraced
draw, an impure fleet job, or a colliding stream key into ``src/``
fails here with the analyzer's own report as the message.  Also the
enforcement point for the CLI contract (exit codes, ``--list-rules``
across all six tools, the cache) and for the rule that every flow
suppression carries a justification.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.flow.analysis import analyze_paths
from repro.flow.rules import FLOW_RULE_NAMES

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def run_cli(module, args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True, text=True, env=env,
        cwd=cwd or str(REPO_ROOT),
    )


@pytest.fixture(scope="module")
def src_report():
    return analyze_paths([str(SRC)], use_cache=False)


def test_src_tree_is_flow_clean(src_report):
    lines = "\n".join(f.format() for f in src_report.findings)
    assert not src_report.findings, f"flow findings in src/:\n{lines}"


def test_src_suppressions_are_few_and_counted(src_report):
    # The drill jobs in repro.fleet.jobs are the only sanctioned
    # suppressions; a creeping count means someone is silencing the
    # analyzer instead of fixing the code.
    assert src_report.suppressed == 5


def test_hotpaths_enumerate_real_core_sites(src_report):
    sites = src_report.hotpaths["sites"]
    core_sim = [s for s in sites
                if "/repro/core/" in s["path"]
                or "/repro/sim/" in s["path"]
                or s["path"].startswith(("src/repro/core",
                                         "src/repro/sim"))]
    assert len(core_sim) >= 5, (
        f"expected >=5 ranked hot sites in repro.core/repro.sim, "
        f"got {len(core_sim)}"
    )
    ranks = [s["rank"] for s in sites]
    assert ranks == sorted(ranks)
    assert src_report.hotpaths["total_sites"] >= \
        src_report.hotpaths["listed_sites"]


def test_every_flow_suppression_has_a_justification():
    """``# simlint: disable=<flow-rule>`` must carry a reason in a
    trailing parenthesized comment segment."""
    flow_names = set(FLOW_RULE_NAMES)
    pattern = re.compile(
        r"#\s*simlint:\s*disable(?:-file)?\s*=\s*([A-Za-z0-9_\-, ]+)"
    )
    offenders = []
    for path in SRC.rglob("*.py"):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            match = pattern.search(line)
            if not match:
                continue
            names = {n.strip() for n in match.group(1).split(",")}
            if not names & flow_names:
                continue
            justification = line[match.end():].strip()
            if not re.search(r"\(.{8,}\)", justification):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, (
        "flow suppressions without a justification:\n"
        + "\n".join(offenders)
    )


def test_cli_exit_codes_and_formats(tmp_path):
    clean = run_cli("repro.flow", ["src", "--no-cache"])
    assert clean.returncode == 0, clean.stdout + clean.stderr

    usage = run_cli("repro.flow", ["no/such/dir", "--no-cache"])
    assert usage.returncode == 2

    bad_rule = run_cli("repro.flow",
                       ["src", "--select", "nope", "--no-cache"])
    assert bad_rule.returncode == 2

    hot_out = tmp_path / "flow-hotpaths.json"
    as_json = run_cli("repro.flow",
                      ["src", "--format", "json", "--no-cache",
                       "--hotpaths-out", str(hot_out)])
    assert as_json.returncode == 0
    payload = json.loads(as_json.stdout)
    assert payload["count"] == 0
    assert payload["advisory_count"] > 0
    hot = json.loads(hot_out.read_text())
    assert hot["sites"], "hotpaths out-file must list ranked sites"

    github = run_cli("repro.flow",
                     ["src", "--format", "github", "--no-cache"])
    assert github.returncode == 0
    assert "::notice " in github.stdout
    assert "::error " not in github.stdout


def test_strict_mode_promotes_advisory_to_failure():
    strict = run_cli("repro.flow", ["src", "--strict", "--no-cache"])
    assert strict.returncode == 1


def test_all_six_clis_list_flow_rules():
    for module in ("repro.lint", "repro.sanitize", "repro.modelcheck",
                   "repro.obs", "repro.fleet", "repro.flow"):
        args = ["--list-rules"]
        if module == "repro.lint":
            args.insert(0, "--no-cache")
        result = run_cli(module, args)
        assert result.returncode == 0, (module, result.stderr)
        for code in ("FLOW601", "FLOW615", "FLOW624"):
            assert code in result.stdout, (
                f"{module} --list-rules is missing {code}"
            )
        assert "SIM101" in result.stdout or "SIM1" in result.stdout


def test_umbrella_cli_flow_subcommand():
    result = run_cli("repro", ["flow", "src", "--no-cache"])
    assert result.returncode == 0, result.stdout + result.stderr
    assert "repro-flow: clean" in result.stdout


def test_whole_tree_cache_hits_and_invalidates(tmp_path):
    cache_file = tmp_path / "flow-cache.json"
    first = analyze_paths([str(SRC)], use_cache=True,
                          cache_file=str(cache_file))
    assert not first.from_cache
    second = analyze_paths([str(SRC)], use_cache=True,
                           cache_file=str(cache_file))
    assert second.from_cache
    assert [f.to_dict() for f in second.findings] == \
        [f.to_dict() for f in first.findings]
    assert second.hotpaths == first.hotpaths

    # Any content change anywhere invalidates the whole-tree entry.
    document = json.loads(cache_file.read_text())
    document["tree"] = "0" * 64
    cache_file.write_text(json.dumps(document))
    third = analyze_paths([str(SRC)], use_cache=True,
                          cache_file=str(cache_file))
    assert not third.from_cache
