"""Sweep specs, shard numbering and the seed-derivation contract."""

import numpy as np
import pytest

from repro.fleet.jobs import get_job, job_names, register
from repro.fleet.spec import (
    Shard,
    SweepSpec,
    describe,
    make_shards,
    shard_rng_for,
    shard_stream,
    to_jsonable,
)
from repro.sim.rng import derived_stream


def _spec(**kwargs):
    defaults = dict(
        sweep_id="s", job="noop", seed=1,
        shards=make_shards([{}, {}]),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = to_jsonable({"a": np.int64(3), "b": np.float64(0.5),
                           "c": np.arange(3), "d": (1, 2)})
        assert out == {"a": 3, "b": 0.5, "c": [0, 1, 2], "d": [1, 2]}
        assert type(out["a"]) is int
        assert type(out["b"]) is float

    def test_rejects_unserializable(self):
        with pytest.raises(TypeError, match="not JSON-safe"):
            to_jsonable({"f": object()})


class TestShardAndSpec:
    def test_shard_params_frozen_against_caller_mutation(self):
        params = {"x": 1}
        shard = Shard(0, params)
        params["x"] = 99
        assert shard.params["x"] == 1

    def test_indices_must_be_contiguous(self):
        with pytest.raises(ValueError, match="shard indices"):
            SweepSpec(sweep_id="s", job="noop", seed=1,
                      shards=(Shard(0, {}), Shard(2, {})))

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            _spec(sweep_id="")
        with pytest.raises(ValueError, match="'/'"):
            _spec(sweep_id="a/b")
        with pytest.raises(ValueError, match="no shards"):
            _spec(shards=())
        with pytest.raises(ValueError, match="retries"):
            _spec(retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            _spec(timeout=0.0)

    def test_digest_sensitive_to_params_and_seed(self):
        base = _spec()
        assert base.digest() == _spec().digest()
        assert base.digest() != _spec(seed=2).digest()
        assert base.digest() != _spec(
            shards=make_shards([{"x": 1}, {}])).digest()

    def test_digest_ignores_execution_knobs(self):
        # Timeout/retries change *how* a sweep runs, not *what* it
        # computes; resuming with different knobs must be allowed.
        assert _spec().digest() == _spec(timeout=5.0,
                                         retries=9).digest()

    def test_describe_is_json_safe(self):
        import json

        json.dumps(describe(_spec()))


class TestSeedContract:
    def test_stream_keyed_on_sweep_and_index_only(self):
        a = shard_stream("demo", 3, 42)
        b = shard_stream("demo", 3, 42)
        assert a.random() == b.random()

    def test_stream_matches_derived_stream(self):
        # The contract, spelled out: fleet/<sweep>/shard-<index>.
        ours = shard_stream("demo", 3, 42)
        ref = derived_stream("fleet/demo/shard-3", seed=42)
        assert ours.random() == ref.random()

    def test_streams_distinct_across_shards_and_sweeps(self):
        draws = {
            shard_stream(sweep, index, 42).random()
            for sweep in ("a", "b")
            for index in range(4)
        }
        assert len(draws) == 8

    def test_shard_rng_for_bounds(self):
        spec = _spec()
        with pytest.raises(IndexError):
            shard_rng_for(spec, 2)
        assert (shard_rng_for(spec, 1).random()
                == shard_stream("s", 1, 1).random())


class TestJobRegistry:
    def test_experiment_cells_registered(self):
        names = job_names()
        assert {"fig5-cell", "steady-cell", "saploop-cell",
                "demo-pi", "noop", "sleep", "burn", "flaky",
                "hang", "kill-self"} <= set(names)

    def test_unknown_job(self):
        with pytest.raises(ValueError, match="unknown job"):
            get_job("no-such-job")

    def test_conflicting_reregistration_rejected(self):
        def other(params, rng, attempt):
            return {}

        with pytest.raises(ValueError, match="already registered"):
            register("noop")(other)

    def test_idempotent_reregistration_allowed(self):
        fn = get_job("noop")
        assert register("noop")(fn) is fn

    def test_demo_pi_is_pure_in_its_stream(self):
        job = get_job("demo-pi")
        params = {"samples": 1000}
        one = job(params, shard_stream("demo", 0, 7), 0)
        two = job(params, shard_stream("demo", 0, 7), 3)
        assert one == two
        assert 2.0 < one["pi_estimate"] < 4.0
