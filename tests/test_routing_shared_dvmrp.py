"""Shared-tree and DVMRP routing-state tests."""

import numpy as np
import pytest

from repro.routing.dvmrp import DvmrpRouter
from repro.routing.shared import SharedTree
from repro.topology.graph import DVMRP_INFINITY, Topology


@pytest.fixture
def y_tree():
    """A Y-shaped tree: 0-1, 1-2, 1-3, with known delays."""
    return SharedTree(4, [(0, 1, 0.1), (1, 2, 0.2), (1, 3, 0.3)], core=0)


class TestSharedTree:
    def test_delays_from_core(self, y_tree):
        delays = y_tree.delays_from(0)
        assert np.allclose(delays, [0.0, 0.1, 0.3, 0.4])

    def test_delays_from_leaf(self, y_tree):
        delays = y_tree.delays_from(2)
        assert np.allclose(delays, [0.3, 0.2, 0.0, 0.5])

    def test_delays_symmetric(self, y_tree):
        for u in range(4):
            du = y_tree.delays_from(u)
            for v in range(4):
                assert du[v] == pytest.approx(y_tree.delays_from(v)[u])

    def test_parent_and_depth(self, y_tree):
        assert y_tree.parent_of(0) is None
        assert y_tree.parent_of(2) == 1
        assert y_tree.depth_of(0) == 0
        assert y_tree.depth_of(3) == 2

    def test_wrong_edge_count_rejected(self):
        with pytest.raises(ValueError):
            SharedTree(3, [(0, 1, 0.1)])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            SharedTree(4, [(0, 1, 0.1), (0, 1, 0.2), (2, 3, 0.1)])

    def test_from_topology(self):
        topo = Topology()
        for __ in range(3):
            topo.add_node()
        topo.add_link(0, 1, delay=0.5)
        topo.add_link(1, 2, delay=0.25)
        tree = SharedTree.from_topology(topo, [(0, 1), (1, 2)], core=0)
        assert np.allclose(tree.delays_from(0), [0.0, 0.5, 0.75])

    def test_doar_shared_tree_delays_match_links(self, small_doar):
        tree = small_doar.shared_tree()
        topo = small_doar.topology
        delays = tree.delays_from(0)
        assert delays[0] == 0.0
        assert np.isfinite(delays).all()
        # A direct tree child of node 0 is exactly one link away.
        for parent, child in small_doar.tree_edges:
            if parent == 0:
                assert delays[child] == pytest.approx(
                    topo.link(0, child).delay
                )


class TestDvmrp:
    @pytest.fixture
    def router(self, chain_topology):
        return DvmrpRouter(chain_topology)

    def test_table_metrics(self, router):
        table = router.table(4)
        assert table.metric[4] == 0
        assert table.metric[0] == 4
        assert table.metric[3] == 1

    def test_rpf_neighbor_points_along_path(self, router):
        table = router.table(4)
        # Packets from source 0 arrive at 4 via 3.
        assert table.rpf_neighbor(0) == 3
        assert table.rpf_neighbor(4) is None

    def test_delivery_children_form_the_tree(self, router):
        children = router.delivery_children(0)
        assert children[0] == [1]
        assert children[1] == [2]
        assert children[2] == [3]
        assert children[3] == [4]
        assert children[4] == []

    def test_metric_infinity_unreachable(self):
        """Paths whose metric reaches 32 are DVMRP-unreachable."""
        topo = Topology()
        for __ in range(3):
            topo.add_node()
        topo.add_link(0, 1, metric=20)
        topo.add_link(1, 2, metric=20)
        router = DvmrpRouter(topo)
        table = router.table(2)
        assert table.metric[1] == 20
        assert table.metric[0] == DVMRP_INFINITY
        assert not table.reaches(0)
        assert table.rpf_neighbor(0) is None
        children = router.delivery_children(0)
        assert children[1] == []  # node 2 pruned by infinity
        mask = router.reachable_within_infinity(0)
        assert mask.tolist() == [True, True, False]

    def test_tables_memoised(self, router):
        assert router.table(1) is router.table(1)
