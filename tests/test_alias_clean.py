"""Tier-1 gate: ``src/`` is ALIAS-clean and the SoA ledger holds.

Pins the repo's own escape/aliasing state: zero hard ALIAS8xx
findings with zero suppressions, every class in ``core/`` and
``sim/`` classified by the ledger and *all* of them SoA-safe, and
the CLI contract (exit codes, formats, ``--ledger-out``, the
umbrella subcommand, the whole-tree cache).  Also the satellite
proof that the defensive-copy idiom the analysis enforces actually
protects internal state: mutating a returned view must not touch
the owning object.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.alias.analysis import analyze_paths

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_cli(*args: str, cwd: Path = REPO) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.alias", *args],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


@pytest.fixture(scope="module")
def src_report():
    return analyze_paths([str(SRC)], use_cache=False)


# --------------------------------------------------------------------
# The clean pin.
# --------------------------------------------------------------------

def test_src_has_no_hard_alias_findings(src_report):
    assert src_report.findings == [], (
        "hard ALIAS findings in src/:\n" + "\n".join(
            f"{f.path}:{f.line} {f.code} {f.message}"
            for f in src_report.findings))


def test_src_needs_no_suppressions(src_report):
    assert src_report.suppressed == 0


def test_src_advisory_is_boundary_and_cost_only(src_report):
    """Only the soundness boundary (813) and hot-copy cost notes
    (814) remain — no identity reliance, no global escapes, no
    blocked classes."""
    codes = {f.code for f in src_report.advisory}
    assert codes <= {"ALIAS813", "ALIAS814"}, sorted(codes)
    assert any(f.code == "ALIAS814" for f in src_report.advisory), (
        "the hot-defensive-copy survey went silent; the SoA "
        "migration cost signal is gone")


def test_stats_show_whole_program_coverage(src_report):
    stats = src_report.stats
    assert stats["functions"] >= 1000
    assert stats["classes"] >= 150
    assert stats["migrating_classes"] >= 50
    assert stats["modules"] >= 120
    assert stats["leaking_methods"] == 0
    assert (stats["escape_local"] + stats["escape_module"]
            + stats["escape_global"]) == stats["classes"]


# --------------------------------------------------------------------
# The ledger: exhaustive over core/+sim/, all SoA-safe (acceptance
# floor: at least 10 safe classes).
# --------------------------------------------------------------------

def test_every_core_sim_class_is_classified(src_report):
    import ast
    in_ledger = {e["qualname"] for e in src_report.ledger["entries"]}
    missing = []
    for pkg in ("core", "sim"):
        for path in sorted((SRC / "repro" / pkg).rglob("*.py")):
            module = ".".join(
                path.relative_to(SRC).with_suffix("").parts)
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    qualname = f"{module}.{node.name}"
                    if qualname not in in_ledger:
                        missing.append(qualname)
    assert not missing, f"classes absent from the ledger: {missing}"


def test_ledger_verdicts_all_safe_and_pinned(src_report):
    summary = src_report.ledger["summary"]
    assert summary["soa_blocked"] == 0
    assert summary["soa_safe"] == summary["total"]
    assert summary["core_sim_safe"] == summary["core_sim_total"]
    assert summary["core_sim_safe"] >= 10          # acceptance floor
    assert summary["total"] >= 50
    for entry in src_report.ledger["entries"]:
        assert entry["verdict"] == "soa-safe", entry["qualname"]
        assert entry["blocking_rules"] == [], entry["qualname"]


def test_session_cache_ledger_entry(src_report):
    """The README walkthrough's example entry, kept honest."""
    entries = {e["qualname"]: e
               for e in src_report.ledger["entries"]}
    cache = entries["repro.sap.cache.SessionCache"]
    assert cache["verdict"] == "soa-safe"
    assert cache["escape"] == "module"
    assert cache["container_attrs"] == {"_entries": "dict"}
    assert cache["hot"]["sites"] > 0, (
        "SessionCache fell off the flow hot-path join")


# --------------------------------------------------------------------
# Satellite: the enforced copy idiom actually isolates state.
# --------------------------------------------------------------------

def test_mutating_returned_entries_leaves_cache_intact():
    from repro.sap.cache import SessionCache
    cache = SessionCache()
    cache._entries[(1, 2)] = "sentinel"
    view = cache.entries()
    view.clear()
    view.append("junk")
    assert len(cache) == 1
    assert cache.lookup(1, 2) == "sentinel"


def test_mutating_same_address_result_leaves_index_intact():
    from repro.core.clash import AddressUsageIndex
    from repro.core.session import Session
    index = AddressUsageIndex()
    session = Session(address=5, ttl=15, source=1)
    index.add(session)
    bucket = index.same_address(5)
    bucket.clear()
    assert len(index) == 1
    assert index.same_address(5) == [session]


# --------------------------------------------------------------------
# CLI contract.
# --------------------------------------------------------------------

def test_cli_clean_run_exits_zero():
    proc = run_cli("src", "--no-cache")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-alias: clean (0 findings)" in proc.stdout
    assert "ledger:" in proc.stdout
    assert "SoA blockers" in proc.stdout


def test_cli_usage_errors_exit_two(tmp_path):
    assert run_cli("no/such/dir").returncode == 2
    assert run_cli("src", "--select", "NOT-A-RULE").returncode == 2


def test_cli_json_format():
    proc = run_cli("src", "--no-cache", "--format", "json")
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["count"] == 0
    assert payload["suppressed"] == 0
    assert payload["ledger"]["summary"]["soa_blocked"] == 0
    assert payload["stats"]["ledger_core_sim_safe"] >= 10


def test_cli_github_format_is_advisory_only():
    proc = run_cli("src", "--no-cache", "--format", "github")
    assert proc.returncode == 0
    assert "::notice" in proc.stdout
    assert "::error" not in proc.stdout


def test_cli_strict_promotes_advisory():
    proc = run_cli("src", "--no-cache", "--strict")
    assert proc.returncode == 1
    assert "ALIAS81" in proc.stdout


def test_cli_ledger_out_writes_ranked_ledger(tmp_path):
    out = tmp_path / "alias-ledger.json"
    proc = run_cli("src", "--no-cache", "--ledger-out", str(out))
    assert proc.returncode == 0
    ledger = json.loads(out.read_text(encoding="utf-8"))
    assert ledger["summary"]["core_sim_total"] >= 10
    qualnames = [e["qualname"] for e in ledger["entries"]]
    assert "repro.sap.cache.SessionCache" in qualnames


def test_umbrella_subcommand_runs_alias():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "alias", "src", "--no-cache"],
        capture_output=True, text=True, cwd=REPO, env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-alias: clean" in proc.stdout


# --------------------------------------------------------------------
# Whole-tree cache: hit on an untouched tree, miss on any edit or a
# tampered digest.
# --------------------------------------------------------------------

def _tiny_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "thing.py").write_text(
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self._items = []\n"
        "    def items(self):\n"
        "        return list(self._items)\n",
        encoding="utf-8")
    return tmp_path


def test_cache_hit_and_invalidation(tmp_path):
    tree = _tiny_tree(tmp_path / "tree")
    cache_file = str(tmp_path / ".repro-alias-cache.json")

    first = analyze_paths([str(tree)], cache_file=cache_file)
    assert not first.from_cache
    second = analyze_paths([str(tree)], cache_file=cache_file)
    assert second.from_cache
    assert [f.code for f in second.findings] == []
    assert second.ledger["summary"] == first.ledger["summary"]

    # Any edit anywhere is a miss.
    path = tree / "repro" / "core" / "thing.py"
    path.write_text(path.read_text(encoding="utf-8") + "\n# touch\n",
                    encoding="utf-8")
    third = analyze_paths([str(tree)], cache_file=cache_file)
    assert not third.from_cache

    # A tampered stored digest is a miss, not a stale serve.
    document = json.loads(Path(cache_file).read_text(encoding="utf-8"))
    document["tree"] = "0" * len(document["tree"])
    Path(cache_file).write_text(json.dumps(document), encoding="utf-8")
    fourth = analyze_paths([str(tree)], cache_file=cache_file)
    assert not fourth.from_cache


# --------------------------------------------------------------------
# Suppression hygiene: every ALIAS suppression (there are currently
# none) must carry a written justification.
# --------------------------------------------------------------------

SUPPRESSION = re.compile(
    r"#\s*simlint:\s*disable(?:-file)?\s*=\s*([A-Za-z0-9_\-, ]+)")

ALIAS_RULE_WORDS = {
    "leaked-internal-container", "leaked-container-view",
    "aliased-mutation", "iterator-invalidation",
    "mutation-after-publish", "identity-comparison", "identity-call",
    "identity-hash-key", "global-escape", "soa-blocked",
    "unresolved-alias-call", "hot-defensive-copy",
}


def test_alias_suppressions_carry_justifications():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for i, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            match = SUPPRESSION.search(line)
            if not match:
                continue
            rules = {r.strip() for r in match.group(1).split(",")}
            if not rules & ALIAS_RULE_WORDS:
                continue
            if not re.search(r"\(.{8,}\)", line[match.end():]):
                offenders.append(f"{path}:{i}")
    assert not offenders, (
        "ALIAS suppressions without a justification: "
        f"{offenders}")
