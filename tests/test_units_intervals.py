"""The interval domain under the value-range analysis.

Soundness of every transfer function is what makes a UNIT711 a real
out-of-bounds proof rather than a guess, so each operation is checked
against exhaustive small concrete sets, and the threshold widening is
pinned to the codebase's landmarks (255, 2^16, 2^28, 224/4 bounds).
"""

import itertools
import math

import pytest

from repro.units.intervals import (
    INF,
    Interval,
    NEGATE_OP,
    SWAP_OP,
    THRESHOLDS,
    join_all,
    widen_env_interval,
)


class TestBasics:
    def test_constructors_and_predicates(self):
        assert Interval.top().is_top
        assert Interval.bottom().is_bottom
        assert Interval.const(7).is_const
        assert not Interval.range(1, 2).is_const
        assert Interval.range(0, 9).contains(0)
        assert Interval.range(0, 9).contains(9)
        assert not Interval.range(0, 9).contains(10)

    def test_float_integral_endpoints_collapse_to_int(self):
        ival = Interval.const(3.0)
        assert ival.lo == 3 and isinstance(ival.lo, int)

    def test_within_and_disjoint(self):
        assert Interval.range(2, 5).within(0, 9)
        assert not Interval.range(2, 15).within(0, 9)
        assert Interval.range(10, 12).disjoint(0, 9)
        assert not Interval.range(9, 12).disjoint(0, 9)
        assert Interval.bottom().within(0, 0)
        assert Interval.bottom().disjoint(0, 0)

    def test_join_meet(self):
        a, b = Interval.range(0, 4), Interval.range(2, 9)
        assert a.join(b) == Interval.range(0, 9)
        assert a.meet(b) == Interval.range(2, 4)
        assert Interval.range(0, 1).meet(Interval.range(5, 6)).is_bottom
        assert Interval.bottom().join(a) == a
        assert join_all([a, b, Interval.const(-3)]) == \
            Interval.range(-3, 9)


def _concretize(ival, limit=40):
    assert math.isfinite(ival.lo) and math.isfinite(ival.hi)
    assert ival.hi - ival.lo <= limit
    return range(int(ival.lo), int(ival.hi) + 1)


class TestSoundness:
    """Every concrete result must land inside the abstract result."""

    SAMPLES = [Interval.range(-3, 2), Interval.range(0, 5),
               Interval.const(4), Interval.range(2, 7)]

    @pytest.mark.parametrize("op,concrete", [
        ("add", lambda a, b: a + b),
        ("sub", lambda a, b: a - b),
        ("mul", lambda a, b: a * b),
    ])
    def test_ring_ops(self, op, concrete):
        for x, y in itertools.product(self.SAMPLES, repeat=2):
            abstract = getattr(x, op)(y)
            for a in _concretize(x):
                for b in _concretize(y):
                    assert abstract.contains(concrete(a, b)), \
                        (op, x, y, a, b)

    def test_floordiv(self):
        for x in self.SAMPLES:
            for y in [Interval.range(1, 3), Interval.const(2),
                      Interval.range(-4, -2)]:
                abstract = x.floordiv(y)
                for a in _concretize(x):
                    for b in _concretize(y):
                        assert abstract.contains(a // b), (x, y, a, b)

    def test_floordiv_by_possible_zero_is_top(self):
        assert Interval.range(0, 9).floordiv(
            Interval.range(-1, 1)).is_top

    def test_mod_positive_modulus(self):
        x = Interval.range(-5, 20)
        m = Interval.range(3, 7)
        abstract = x.mod(m)
        for a in _concretize(x):
            for b in _concretize(m):
                assert abstract.contains(a % b)

    def test_mod_already_reduced_is_identity(self):
        x = Interval.range(0, 2)
        assert x.mod(Interval.const(8)) == x

    def test_shifts(self):
        x = Interval.range(0, 5)
        amt = Interval.range(0, 3)
        left = x.lshift(amt)
        right = Interval.range(0, 40).rshift(amt)
        for a in _concretize(x):
            for b in _concretize(amt):
                assert left.contains(a << b)
        for a in range(0, 41):
            for b in _concretize(amt):
                assert right.contains(a >> b)

    def test_negative_shift_amount_is_top_not_crash(self):
        assert Interval.range(0, 5).lshift(Interval.range(-2, 1)).is_top

    def test_neg(self):
        assert Interval.range(-3, 7).neg() == Interval.range(-7, 3)


class TestWidening:
    def test_unstable_upper_bound_snaps_to_landmark(self):
        old = Interval.range(0, 10)
        grown = Interval.range(0, 300)
        widened = old.widen(grown)
        assert widened.lo == 0
        assert widened.hi == 65_535  # smallest landmark >= 300

    def test_landmarks_cover_the_codebase_constants(self):
        for landmark in (255, 65_536, 0x0FFFFFFF, 0xE0000000,
                         0xF0000000):
            assert landmark in THRESHOLDS

    def test_widening_terminates_at_infinity(self):
        ival = Interval.const(0)
        for step in range(60):
            ival = ival.widen(
                Interval.range(ival.lo, (ival.hi + 1) * 2
                               if math.isfinite(ival.hi) else INF))
            if ival.is_top:
                break
        assert ival.hi == INF

    def test_stable_bounds_do_not_move(self):
        old = Interval.range(0, 100)
        assert old.widen(Interval.range(5, 80)) == old

    def test_widen_env_helper(self):
        assert widen_env_interval(None, Interval.const(3)) == \
            Interval.const(3)
        assert widen_env_interval(Interval.const(3), None) == \
            Interval.const(3)


class TestRefinement:
    def test_less_than(self):
        x = Interval.range(0, INF)
        assert x.refine("<", Interval.const(10)) == Interval.range(0, 9)

    def test_ge_and_eq(self):
        x = Interval.top()
        assert x.refine(">=", Interval.const(0)).lo == 0
        assert x.refine("==", Interval.range(3, 5)) == \
            Interval.range(3, 5)

    def test_impossible_guard_is_bottom(self):
        assert Interval.range(0, 3).refine(
            ">", Interval.const(10)).is_bottom

    def test_ne_refines_nothing(self):
        x = Interval.range(0, 5)
        assert x.refine("!=", Interval.const(3)) == x

    def test_op_tables_are_involutions(self):
        for op, negated in NEGATE_OP.items():
            assert NEGATE_OP[negated] == op
        for op, swapped in SWAP_OP.items():
            assert SWAP_OP[swapped] == op
