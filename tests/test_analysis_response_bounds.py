"""Eq. 2 / eq. 4 responder-bound tests (figs. 14 and 18)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.response_bounds import (
    EXPONENTIAL_LIMIT,
    exponential_delay_array,
    exponential_delay_sample,
    exponential_double_sum,
    exponential_expected_responses,
    uniform_delay_sample,
    uniform_double_sum,
    uniform_expected_responses,
)


class TestUniformBound:
    def test_single_bucket_everyone_responds(self):
        assert uniform_expected_responses(7, 1) == pytest.approx(7.0)

    def test_single_responder(self):
        assert uniform_expected_responses(1, 10) == pytest.approx(1.0)

    @pytest.mark.parametrize("n,d", [(2, 2), (3, 4), (5, 7), (8, 3),
                                     (10, 10), (4, 1)])
    def test_collapsed_matches_double_sum(self, n, d):
        assert uniform_expected_responses(n, d) == pytest.approx(
            uniform_double_sum(n, d), rel=1e-9
        )

    def test_fig14_shape_needs_many_buckets(self):
        """Fig. 14: for large n the uniform bound stays high unless d
        is enormous — roughly n/d when n >> d."""
        assert uniform_expected_responses(51_200, 1024) == pytest.approx(
            50.0, rel=0.01
        )
        assert uniform_expected_responses(800, 64) > 10
        assert uniform_expected_responses(800, 6400) < 1.2

    def test_monotone_decreasing_in_d(self):
        values = [uniform_expected_responses(1000, d)
                  for d in (1, 4, 16, 64, 256)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_expected_responses(0, 5)
        with pytest.raises(ValueError):
            uniform_expected_responses(5, 0)

    @given(st.integers(1, 300), st.integers(1, 300))
    @settings(max_examples=50, deadline=None)
    def test_property_bounds(self, n, d):
        e = uniform_expected_responses(n, d)
        assert 1.0 - 1e-9 <= e <= n + 1e-9


class TestExponentialBound:
    @pytest.mark.parametrize("n,d", [(2, 2), (3, 4), (5, 7), (10, 10),
                                     (20, 6)])
    def test_collapsed_matches_double_sum(self, n, d):
        assert exponential_expected_responses(n, d) == pytest.approx(
            exponential_double_sum(n, d), rel=1e-9
        )

    def test_limit_is_one_over_ln2(self):
        """'the limit in this case is a mean of 1.442695 responses'."""
        value = exponential_expected_responses(100_000, 40)
        assert value == pytest.approx(EXPONENTIAL_LIMIT, abs=1e-3)
        assert EXPONENTIAL_LIMIT == pytest.approx(1.442695, abs=1e-6)

    def test_weak_dependence_on_group_size(self):
        """Fig. 18: the cut-off moves only slowly with n."""
        small = exponential_expected_responses(400, 20)
        large = exponential_expected_responses(25_600, 20)
        assert large < small * 2
        assert large < 2.0

    def test_beats_uniform_at_same_d(self):
        for n in (100, 1000, 10_000):
            assert exponential_expected_responses(n, 30) < \
                uniform_expected_responses(n, 30)

    def test_large_d_numerically_stable(self):
        value = exponential_expected_responses(10_000, 1024)
        assert 1.0 <= value <= 1.5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            exponential_expected_responses(0, 5)
        with pytest.raises(ValueError):
            exponential_double_sum(5, 60)


class TestDelaySamples:
    def test_uniform_endpoints(self):
        assert uniform_delay_sample(0.0, 1.0, 5.0) == 1.0
        assert uniform_delay_sample(1.0, 1.0, 5.0) == 5.0

    def test_exponential_endpoints(self):
        assert exponential_delay_sample(0.0, 1.0, 5.0, 0.2) == \
            pytest.approx(1.0)
        assert exponential_delay_sample(1.0, 1.0, 5.0, 0.2) == \
            pytest.approx(5.0)

    def test_exponential_median_near_top(self):
        """Half the probability mass lives in the last bucket."""
        d1, d2, r = 0.0, 4.0, 0.2
        mid = exponential_delay_sample(0.5, d1, d2, r)
        assert mid > d2 - 2 * r

    def test_array_matches_scalar(self):
        xs = np.linspace(0, 1, 11)
        arr = exponential_delay_array(xs, 0.5, 6.4, 0.2)
        for x, v in zip(xs, arr):
            assert v == pytest.approx(
                exponential_delay_sample(float(x), 0.5, 6.4, 0.2)
            )

    def test_huge_d_stable(self):
        v = exponential_delay_sample(0.5, 0.0, 200.0, 0.0001)
        assert 0.0 <= v <= 200.0
        arr = exponential_delay_array(np.array([0.0, 0.5, 1.0]),
                                      0.0, 200.0, 0.0001)
        assert arr[0] == 0.0
        assert arr[2] == pytest.approx(200.0, rel=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_delay_sample(0.5, 2.0, 1.0)
        with pytest.raises(ValueError):
            exponential_delay_sample(0.5, 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            exponential_delay_sample(1.5, 0.0, 1.0, 0.2)

    @given(st.floats(0.0, 1.0))
    def test_property_exponential_within_interval(self, x):
        v = exponential_delay_sample(x, 0.5, 6.4, 0.2)
        assert 0.5 - 1e-9 <= v <= 6.4 + 1e-6
