"""Behavioural tests of the allocation algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.allocator import VisibleSet
from repro.core.hybrid import HybridIprmaAllocator
from repro.core.informed import InformedRandomAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.core.partitions import IPR7_EDGES, PartitionMap
from repro.core.random_alloc import RandomAllocator

PAPER_TTLS = (1, 15, 31, 47, 63, 127, 191)


def visible_of(pairs):
    addresses = np.array([a for a, __ in pairs], dtype=np.int64)
    ttls = np.array([t for __, t in pairs], dtype=np.int64)
    return VisibleSet(addresses, ttls)


class TestRandomAllocator:
    def test_in_space(self, rng):
        allocator = RandomAllocator(50, rng)
        for __ in range(200):
            result = allocator.allocate(63, VisibleSet.empty())
            assert 0 <= result.address < 50
            assert not result.informed

    def test_ignores_visible(self, rng):
        """R may clash even with perfect information."""
        allocator = RandomAllocator(3, rng)
        visible = visible_of([(0, 63), (1, 63)])
        picked = {allocator.allocate(63, visible).address
                  for __ in range(100)}
        assert picked == {0, 1, 2}


class TestInformedRandomAllocator:
    def test_avoids_visible(self, rng):
        allocator = InformedRandomAllocator(10, rng)
        visible = visible_of([(a, 63) for a in range(9)])
        for __ in range(20):
            result = allocator.allocate(63, visible)
            assert result.address == 9
            assert result.informed

    def test_full_space_forces(self, rng):
        allocator = InformedRandomAllocator(4, rng)
        visible = visible_of([(a, 63) for a in range(4)])
        result = allocator.allocate(63, visible)
        assert result.forced
        assert 0 <= result.address < 4
        assert allocator.forced_allocations == 1

    def test_uniform_over_free(self, rng):
        allocator = InformedRandomAllocator(6, rng)
        visible = visible_of([(0, 63), (3, 63)])
        picks = [allocator.allocate(63, visible).address
                 for __ in range(600)]
        counts = np.bincount(picks, minlength=6)
        assert counts[0] == 0 and counts[3] == 0
        for a in (1, 2, 4, 5):
            assert 100 <= counts[a] <= 200


class TestStaticIprma:
    def test_band_ranges_cover_space(self, rng):
        allocator = StaticIprmaAllocator.seven_band(700, rng)
        assert allocator.band_ranges[0][0] == 0
        assert allocator.band_ranges[-1][1] == 700

    def test_allocation_lands_in_ttl_band(self, rng):
        allocator = StaticIprmaAllocator.seven_band(700, rng)
        for ttl in PAPER_TTLS:
            result = allocator.allocate(ttl, VisibleSet.empty())
            lo, hi = allocator.band_range(ttl)
            assert lo <= result.address < hi
            assert result.band == allocator.partition_map.band_of(ttl)

    def test_different_ttls_never_collide_in_seven_band(self, rng):
        allocator = StaticIprmaAllocator.seven_band(700, rng)
        addresses = {}
        for ttl in PAPER_TTLS:
            for __ in range(30):
                a = allocator.allocate(ttl, VisibleSet.empty()).address
                addresses.setdefault(ttl, set()).add(a)
        for t1 in PAPER_TTLS:
            for t2 in PAPER_TTLS:
                if t1 != t2:
                    assert not (addresses[t1] & addresses[t2])

    def test_three_band_conflates_47_and_63(self, rng):
        allocator = StaticIprmaAllocator.three_band(300, rng)
        assert allocator.band_range(47) == allocator.band_range(63)

    def test_informed_within_band(self, rng):
        allocator = StaticIprmaAllocator.three_band(30, rng)
        lo, hi = allocator.band_range(63)
        visible = visible_of([(a, 63) for a in range(lo, hi - 1)])
        result = allocator.allocate(63, visible)
        assert result.address == hi - 1

    def test_band_full_forces_within_band(self, rng):
        allocator = StaticIprmaAllocator.three_band(30, rng)
        lo, hi = allocator.band_range(63)
        visible = visible_of([(a, 63) for a in range(lo, hi)])
        result = allocator.allocate(63, visible)
        assert result.forced
        assert lo <= result.address < hi


class TestAdaptiveIprma:
    def test_empty_world_bands_cluster_at_top(self, rng):
        allocator = AdaptiveIprmaAllocator.aipr1(1000, rng=rng)
        geometry = allocator.band_geometry(VisibleSet.empty())
        assert len(geometry) == 7
        # Every initial band is a single address near the top.
        for lo, hi in geometry:
            assert hi - lo == 1
        assert geometry[-1] == (999, 1000)
        # Bands ordered: lower-TTL bands sit below higher-TTL bands.
        for (lo_a, hi_a), (lo_b, hi_b) in zip(geometry, geometry[1:]):
            assert hi_a <= lo_b

    def test_band_grows_with_occupancy(self, rng):
        allocator = AdaptiveIprmaAllocator.aipr1(1000, rng=rng)
        visible = visible_of([(900 + i, 63) for i in range(20)])
        geometry = allocator.band_geometry(visible)
        band = allocator.partition_map.band_of(63)
        lo, hi = geometry[band]
        # ceil(20 / 0.67) = 30.
        assert hi - lo == 30

    def test_geometry_uses_only_higher_or_equal_ttls(self, rng):
        """The deterministic invariant (fig. 8): lower-TTL sessions do
        not perturb the geometry of a higher band."""
        allocator = AdaptiveIprmaAllocator.aipr1(1000, rng=rng)
        high_only = visible_of([(990, 127), (991, 127)])
        with_low = visible_of([(990, 127), (991, 127)] +
                              [(10 + i, 1) for i in range(50)])
        band_127 = allocator.partition_map.band_of(127)
        geo_high = allocator.band_geometry(
            high_only.with_ttl_at_least(64)
        )
        geo_mixed = allocator.band_geometry(
            with_low.with_ttl_at_least(64)
        )
        assert geo_high[band_127] == geo_mixed[band_127]

    def test_allocation_within_band_geometry(self, rng):
        allocator = AdaptiveIprmaAllocator.aipr3(500, rng=rng)
        visible = visible_of([(480 + i, 191) for i in range(10)])
        result = allocator.allocate(127, visible)
        geometry = allocator.band_geometry(visible.with_ttl_at_least(64))
        band = allocator.partition_map.band_of(127)
        lo, hi = geometry[band]
        assert lo <= result.address < hi

    def test_gap_fraction_spreads_bands(self, rng):
        tight = AdaptiveIprmaAllocator(1000, gap_fraction=0.2, rng=rng)
        loose = AdaptiveIprmaAllocator(1000, gap_fraction=0.7, rng=rng)
        geo_tight = tight.band_geometry(VisibleSet.empty())
        geo_loose = loose.band_geometry(VisibleSet.empty())
        span_tight = geo_tight[-1][1] - geo_tight[0][0]
        span_loose = geo_loose[-1][1] - geo_loose[0][0]
        assert span_loose > span_tight

    def test_collapse_at_overload_still_allocates(self, rng):
        allocator = AdaptiveIprmaAllocator.aipr1(20, rng=rng)
        visible = visible_of([(i % 20, 191) for i in range(60)])
        result = allocator.allocate(1, visible)
        assert 0 <= result.address < 20

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ValueError):
            AdaptiveIprmaAllocator(100, gap_fraction=1.0, rng=rng)
        with pytest.raises(ValueError):
            AdaptiveIprmaAllocator(100, occupancy=0.0, rng=rng)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 999),
                              st.sampled_from(PAPER_TTLS)),
                    max_size=60),
           st.sampled_from(PAPER_TTLS))
    def test_property_bands_never_overlap(self, pairs, ttl):
        allocator = AdaptiveIprmaAllocator.aipr1(
            1000, rng=np.random.default_rng(0)
        )
        geometry = allocator.band_geometry(visible_of(pairs))
        for (lo_a, hi_a), (lo_b, hi_b) in zip(geometry, geometry[1:]):
            assert hi_a <= lo_b or lo_a == 0  # only bottom-collapse overlaps


class TestHybridIprma:
    def test_initial_layout_occupies_top_half(self, rng):
        allocator = HybridIprmaAllocator(1000, rng=rng)
        geometry = allocator.band_geometry(VisibleSet.empty())
        assert geometry[-1][1] == 1000
        # The lowest band's bottom stays in the upper half initially.
        assert geometry[0][0] >= 250

    def test_pushed_band_shrinks(self, rng):
        allocator = HybridIprmaAllocator(1000, rng=rng)
        # Load the top band heavily so it pushes the band below.
        visible = visible_of([(999 - i, 191) for i in range(100)])
        geometry = allocator.band_geometry(visible)
        top = geometry[-1]
        below = geometry[-2]
        assert top[1] - top[0] >= 100
        assert below[1] <= top[0]

    def test_unpushed_band_keeps_initial_width(self, rng):
        allocator = HybridIprmaAllocator(1000, rng=rng)
        geometry = allocator.band_geometry(VisibleSet.empty())
        widths = [hi - lo for lo, hi in geometry]
        assert all(w == allocator.initial_width for w in widths)

    def test_allocates_in_correct_band(self, rng):
        allocator = HybridIprmaAllocator(1000, rng=rng)
        result = allocator.allocate(15, VisibleSet.empty())
        band = allocator.partition_map.band_of(15)
        lo, hi = allocator.band_geometry(VisibleSet.empty())[band]
        assert lo <= result.address < hi

    def test_invalid_span_rejected(self, rng):
        with pytest.raises(ValueError):
            HybridIprmaAllocator(1000, gap_fraction=0.6,
                                 initial_span=0.5, rng=rng)
