"""Failure injection: partitions, healing, crash/restart, storms.

These exercise the paper's motivating failure cases end-to-end:

* §3 phase 1 — "existing sessions can only be disrupted by other
  existing sessions that had not been known due to network
  partitioning": we create the clash by partitioning, then heal and
  watch the protocol.
* directory restart with and without a proxy cache server;
* announcement storms being bounded by the defence rate limit.
"""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.sap.cache_server import ProxyCacheServer
from repro.sap.clash_protocol import ClashPolicy
from repro.sap.directory import SessionDirectory
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel, Packet

SPACE = MulticastAddressSpace.abstract(64)
NUM = 6


def full_mesh(source, ttl):
    return [(node, 0.01) for node in range(NUM)]


@pytest.fixture
def world():
    sched = EventScheduler()
    net = NetworkModel(sched, full_mesh)

    def make(node, **kwargs):
        rng = np.random.default_rng(node)
        return SessionDirectory(
            node, sched, net,
            InformedRandomAllocator(SPACE.size, rng), SPACE, rng=rng,
            **kwargs,
        )

    return sched, net, make


class TestPartitionMechanics:
    def test_partition_blocks_cross_side_delivery(self, world):
        sched, net, make = world
        alice, bob = make(0), make(1)
        net.partition({0})
        alice.create_session("isolated", ttl=63)
        sched.run(until=5.0)
        assert len(bob.cache) == 0
        assert net.partitioned

    def test_same_side_delivery_continues(self, world):
        sched, net, make = world
        alice, bob, carol = make(0), make(1), make(2)
        net.partition({0, 1})
        alice.create_session("west side", ttl=63)
        sched.run(until=5.0)
        assert len(bob.cache) == 1
        assert len(carol.cache) == 0

    def test_heal_restores_delivery(self, world):
        sched, net, make = world
        alice, bob = make(0), make(1)
        net.partition({0})
        session = alice.create_session("hidden", ttl=63)
        sched.run(until=5.0)
        net.heal()
        assert not net.partitioned
        alice.own_sessions()[0].announcer.announce_now()
        sched.run(until=10.0)
        assert len(bob.cache) == 1


class TestPartitionHealingClash:
    def test_clash_created_during_partition_is_detected(self, world):
        """Both sides allocate the same address while split; after
        healing, the established-vs-established clash is detected at
        both sites and both defend (as §3 specifies), without a storm."""
        sched, net, make = world
        alice = make(0, clash_policy=ClashPolicy(recent_window=5.0,
                                                 defend_interval=2.0))
        bob = make(1, clash_policy=ClashPolicy(recent_window=5.0,
                                               defend_interval=2.0))
        net.partition({0})
        a = alice.create_session("west", ttl=63)
        b = bob.create_session("east", ttl=63)
        # Force the same address (each side believes it is free).
        bob_own = bob.own_sessions()[0]
        bob_own.session.address = a.address
        bob_own.description.connection_address = SPACE.index_to_ip(
            a.address
        )
        sched.run(until=60.0)  # both sessions become established
        net.heal()
        alice.own_sessions()[0].announcer.announce_now()
        bob_own.announcer.announce_now()
        sched.run(until=120.0)
        assert alice.clash_handler.clashes_seen >= 1
        assert bob.clash_handler.clashes_seen >= 1
        # Neither side retreated (both established: phase 1, not 2).
        assert alice.address_changes == 0
        assert bob.address_changes == 0
        # The rate limiter kept the mutual defence exchange bounded:
        # at one defence per 2 s per side, 60 s permits <= ~31 each.
        total = (alice.own_sessions()[0].announcer.announcements_sent
                 + bob.own_sessions()[0].announcer.announcements_sent)
        assert total < 80


class TestRestartRecovery:
    def test_cold_restart_loses_view_until_reannouncement(self, world):
        sched, net, make = world
        alice = make(0)
        old_bob = make(1)  # listening before the first announcement
        alice.create_session("talk", ttl=63)
        sched.run(until=5.0)
        assert len(old_bob.cache) == 1
        # Bob's directory crashes: stop listening, state lost.
        net.unlisten(1)
        new_bob = make(1)
        assert len(new_bob.cache) == 0
        # Only after the next periodic re-announcement (600 s) does
        # the cold-started directory learn the session again.
        sched.run(until=400.0)
        assert len(new_bob.cache) == 0
        sched.run(until=700.0)
        assert len(new_bob.cache) == 1

    def test_warm_restart_via_proxy_cache(self, world):
        sched, net, make = world
        proxy = ProxyCacheServer(5, sched, net)
        alice = make(0)
        alice.create_session("talk", ttl=63)
        sched.run(until=5.0)
        net.unlisten(1)
        new_bob = make(1)
        proxy.sync_directory(new_bob)
        assert len(new_bob.cache) == 1  # instant full picture


class TestMalformedTraffic:
    def test_garbage_packets_ignored(self, world):
        sched, net, make = world
        bob = make(1)
        net.send(Packet(source=0, group=0, ttl=63, payload=b"\x00"))
        net.send(Packet(source=0, group=0, ttl=63,
                        payload=b"\x20\x00\x00\x01\x00\x00\x00\x02not sdp"))
        sched.run()
        assert len(bob.cache) == 0

    def test_deletion_for_unknown_session_harmless(self, world):
        sched, net, make = world
        bob = make(1)
        from repro.sap.messages import SapMessage
        message = SapMessage.delete(9, "v=0\ns=ghost\n")
        net.send(Packet(source=9, group=0, ttl=63,
                        payload=message.encode()))
        sched.run()
        assert len(bob.cache) == 0
