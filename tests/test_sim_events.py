"""Event scheduler and clock tests."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_cannot_go_backwards(self):
        clock = SimClock(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0


class TestEventScheduler:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, lambda: fired.append("c"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(2.0, lambda: fired.append("b"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sched = EventScheduler()
        fired = []
        for tag in range(5):
            sched.schedule(1.0, lambda t=tag: fired.append(t))
        sched.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(2.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [2.5]
        assert sched.now == 2.5

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sched = EventScheduler(start=5.0)
        with pytest.raises(ValueError):
            sched.schedule_at(4.0, lambda: None)

    def test_cancel_prevents_firing(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sched.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        handle = sched.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.pending

    def test_run_until_stops_before_later_events(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(10.0, lambda: fired.append(10))
        sched.run(until=5.0)
        assert fired == [1]
        assert sched.now == 5.0
        sched.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_with_no_events(self):
        sched = EventScheduler()
        sched.run(until=7.0)
        assert sched.now == 7.0

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(sched.now)
            if depth:
                sched.schedule(1.0, lambda: chain(depth - 1))

        sched.schedule(1.0, lambda: chain(3))
        sched.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_max_events_bounds_execution(self):
        sched = EventScheduler()
        fired = []

        def forever():
            fired.append(sched.now)
            sched.schedule(1.0, forever)

        sched.schedule(0.0, forever)
        sched.run(max_events=10)
        assert len(fired) == 10

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False

    def test_pending_count_excludes_cancelled(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        handle = sched.schedule(2.0, lambda: None)
        handle.cancel()
        assert sched.pending_count == 1

    def test_events_run_counter(self):
        sched = EventScheduler()
        for __ in range(4):
            sched.schedule(1.0, lambda: None)
        sched.run()
        assert sched.events_run == 4

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_fires_in_sorted_order(self, delays):
        sched = EventScheduler()
        fired = []
        for delay in delays:
            sched.schedule(delay, lambda d=delay: fired.append(d))
        sched.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestTieBreakWithCancellation:
    """Insertion-order tie-breaking must survive interleaved cancels:
    cancelled stubs stay in the heap, and skipping them must not
    perturb the order of the survivors."""

    def test_cancelled_events_skipped_order_preserved(self):
        sched = EventScheduler()
        fired = []
        handles = [sched.schedule(1.0, lambda t=tag: fired.append(t))
                   for tag in range(6)]
        for tag in (0, 2, 4):
            handles[tag].cancel()
        sched.run()
        assert fired == [1, 3, 5]

    def test_cancel_same_time_event_from_earlier_event(self):
        sched = EventScheduler()
        fired = []
        handles = {}

        def first():
            fired.append("first")
            handles["victim"].cancel()

        sched.schedule(1.0, first)
        handles["victim"] = sched.schedule(
            1.0, lambda: fired.append("victim")
        )
        sched.schedule(1.0, lambda: fired.append("last"))
        sched.run()
        assert fired == ["first", "last"]

    def test_reschedule_after_cancel_goes_to_back_of_tie(self):
        sched = EventScheduler()
        fired = []
        victim = sched.schedule(1.0, lambda: fired.append("old"))
        sched.schedule(1.0, lambda: fired.append("a"))
        victim.cancel()
        sched.schedule(1.0, lambda: fired.append("new"))
        sched.run()
        assert fired == ["a", "new"]

    def test_interleaved_cancel_and_schedule_at_same_time(self):
        sched = EventScheduler()
        fired = []
        keep = []
        for round_no in range(4):
            doomed = sched.schedule(
                2.0, lambda r=round_no: fired.append(("doomed", r))
            )
            keep.append(sched.schedule(
                2.0, lambda r=round_no: fired.append(("kept", r))
            ))
            doomed.cancel()
        sched.run()
        assert fired == [("kept", r) for r in range(4)]
        assert all(not h.pending for h in keep)

    def test_pending_count_tracks_cancel_interleaving(self):
        sched = EventScheduler()
        handles = [sched.schedule(1.0, lambda: None) for _ in range(5)]
        handles[1].cancel()
        handles[3].cancel()
        assert sched.pending_count == 3
