"""Bounded exploration: exhaustion, determinism, clean-run numbers.

The exact state/transition counts below are part of the verification
record (README quick-start quotes them): exploration is deterministic,
so any drift means the protocol, the harness or the explorer changed
behaviour and the bounds need re-verifying.
"""

from repro.modelcheck.explorer import ExplorationResult, explore
from repro.modelcheck.scenarios import get_scenario


class TestCleanRuns:
    def test_smoke_exhausts_clean(self):
        result = explore(get_scenario("smoke"))
        assert result.clean
        assert not result.truncated
        assert result.states == 138
        assert result.transitions == 179
        assert result.quiescent_states == 52
        assert result.latent_clashes == 6
        assert result.counterexample is None
        assert result.elapsed_seconds < 60.0

    def test_simultaneous_exhausts_clean(self):
        result = explore(get_scenario("simultaneous"))
        assert result.clean
        assert not result.truncated
        assert result.states == 547
        assert result.transitions == 780
        assert result.latent_clashes == 0

    def test_exploration_is_deterministic(self):
        first = explore(get_scenario("smoke"))
        second = explore(get_scenario("smoke"))
        assert (first.states, first.transitions,
                first.quiescent_states, first.latent_clashes) == (
            second.states, second.transitions,
            second.quiescent_states, second.latent_clashes)


class TestBounds:
    def test_depth_zero_is_root_only(self):
        result = explore(get_scenario("smoke"), depth=0)
        assert result.states == 1
        assert result.transitions == 0
        assert result.clean

    def test_shallower_depth_explores_less(self):
        shallow = explore(get_scenario("smoke"), depth=6)
        full = explore(get_scenario("smoke"))
        assert shallow.states < full.states
        assert shallow.clean

    def test_max_states_truncates(self):
        result = explore(get_scenario("smoke"), max_states=5)
        assert result.truncated
        assert result.states == 5


class TestResultModel:
    def test_to_dict_schema(self):
        result = explore(get_scenario("smoke"), depth=2)
        data = result.to_dict()
        for key in ("scenario", "seed", "mutation", "depth", "states",
                    "transitions", "quiescent_states", "latent_clashes",
                    "truncated", "elapsed_seconds", "violations",
                    "counterexample"):
            assert key in data, key
        assert data["scenario"] == "smoke"
        assert data["violations"] == []
        assert data["counterexample"] is None

    def test_clean_property(self):
        result = ExplorationResult(scenario="x", seed=0, mutation=None,
                                   depth=1)
        assert result.clean
