"""Tracer tests, including directory instrumentation."""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.sap.directory import SessionDirectory
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel
from repro.sim.trace import Tracer, trace_directory

SPACE = MulticastAddressSpace.abstract(64)


def full_mesh(source, ttl):
    return [(node, 0.01) for node in range(3)]


class TestTracer:
    def test_records_in_time_order_with_timestamps(self):
        sched = EventScheduler()
        tracer = Tracer(sched)
        tracer.emit("a", "first")
        sched.schedule(5.0, lambda: tracer.emit("b", "second", node=2))
        sched.run()
        records = tracer.records()
        assert [r.time for r in records] == [0.0, 5.0]
        assert records[1].node == 2

    def test_filters(self):
        sched = EventScheduler()
        tracer = Tracer(sched)
        tracer.emit("rx", "one", node=1)
        tracer.emit("tx", "two", node=2)
        tracer.emit("rx", "three", node=2)
        assert len(tracer.records(category="rx")) == 2
        assert len(tracer.records(node=2)) == 2
        assert len(tracer.records(category="rx", node=2)) == 1
        assert tracer.categories() == ["rx", "tx"]

    def test_since_filter(self):
        sched = EventScheduler()
        tracer = Tracer(sched)
        tracer.emit("a", "early")
        sched.schedule(10.0, lambda: tracer.emit("a", "late"))
        sched.run()
        assert len(tracer.records(since=5.0)) == 1

    def test_capacity_drops_oldest(self):
        sched = EventScheduler()
        tracer = Tracer(sched, capacity=3)
        for i in range(5):
            tracer.emit("a", f"m{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.records()[0].message == "m2"

    def test_format(self):
        sched = EventScheduler()
        tracer = Tracer(sched)
        tracer.emit("defend", "holding", node=4, address=9)
        text = tracer.format_timeline()
        assert "defend" in text
        assert "n4" in text
        assert "address=9" in text

    def test_clear(self):
        sched = EventScheduler()
        tracer = Tracer(sched)
        tracer.emit("a", "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(EventScheduler(), capacity=0)


class TestTraceDirectory:
    def test_traces_rx_and_clash_actions(self):
        sched = EventScheduler()
        net = NetworkModel(sched, full_mesh)
        tracer = Tracer(sched)

        def make(node):
            rng = np.random.default_rng(node)
            return SessionDirectory(
                node, sched, net,
                InformedRandomAllocator(SPACE.size, rng), SPACE,
                rng=rng,
            )

        alice, bob = make(0), make(1)
        trace_directory(tracer, alice)
        trace_directory(tracer, bob)
        session = alice.create_session("old", ttl=63)
        sched.run(until=50.0)
        # Rig a clash so the protocol acts.
        own_bob = bob.create_session("new", ttl=63)
        bob_own = bob.own_sessions()[0]
        bob_own.session.address = session.address
        bob_own.description.connection_address = SPACE.index_to_ip(
            session.address
        )
        bob_own.announcer.announce_now()
        sched.run(until=60.0)

        assert len(tracer.records(category="rx")) > 0
        assert len(tracer.records(category="defend")) >= 1
        assert len(tracer.records(category="retreat")) >= 1
        timeline = tracer.format_timeline()
        assert "moved 'new'" in timeline
