"""ScenarioSpec contract: round trip, digest, validation, sampling."""

import dataclasses

import pytest

from repro.scenario.generator import sample_spec
from repro.scenario.spec import (
    ArrivalSpec,
    DemandSpec,
    PersonaAssignment,
    ScenarioSpec,
    TopologySpec,
    active_fields,
    baseline_spec,
)
from repro.sim.rng import derived_stream

SEED = 0x19980902


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = ScenarioSpec(
            name="rt",
            arrival=ArrivalSpec(process="diurnal", rate=0.1),
            demand=DemandSpec(shape="hotspot"),
            topology=TopologySpec(num_sites=9, churn_events=3),
            personas=(PersonaAssignment(2, "ttl-liar"),),
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_digest_covers_every_field(self):
        spec = ScenarioSpec(name="a")
        assert spec.digest() != dataclasses.replace(
            spec, name="b").digest()
        assert spec.digest() != dataclasses.replace(
            spec, space_size=spec.space_size + 1).digest()

    def test_stream_prefix_namespaces_on_the_digest(self):
        spec = ScenarioSpec(name="ns")
        assert spec.stream_prefix() == f"scenario/{spec.digest()}"

    def test_unknown_field_is_rejected(self):
        payload = ScenarioSpec(name="x").to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            ScenarioSpec.from_dict(payload)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(name="x", kind="wild").validate()

    def test_persona_node_must_exist(self):
        spec = ScenarioSpec(
            name="x",
            topology=TopologySpec(num_sites=4),
            personas=(PersonaAssignment(9, "ttl-liar"),),
        )
        with pytest.raises(ValueError, match="outside"):
            spec.validate()

    def test_duplicate_persona_node_rejected(self):
        spec = ScenarioSpec(
            name="x",
            personas=(PersonaAssignment(1, "ttl-liar"),
                      PersonaAssignment(1, "never-listens")),
        )
        with pytest.raises(ValueError, match="two personas"):
            spec.validate()

    def test_bad_arrival_process_rejected(self):
        spec = ScenarioSpec(name="x",
                            arrival=ArrivalSpec(process="bursty"))
        with pytest.raises(ValueError, match="arrival process"):
            spec.validate()


class TestActiveFields:
    def test_baseline_has_no_active_fields(self):
        assert active_fields(baseline_spec()) == []

    def test_name_is_excluded_from_the_complexity_measure(self):
        spec = ScenarioSpec(name="anything-at-all")
        assert active_fields(spec) == []

    def test_nested_diffs_surface_as_dotted_paths(self):
        spec = ScenarioSpec(
            name="x",
            topology=TopologySpec(partition_storms=3),
            cache_timeout=60.0,
        )
        assert active_fields(spec) == ["cache_timeout",
                                       "topology.partition_storms"]


class TestGenerator:
    def test_sampled_specs_validate(self):
        for index in range(20):
            rng = derived_stream(f"scenario/fuzz/run-{index}", SEED)
            sample_spec(rng, name=f"fuzz-{index}").validate()

    def test_sampling_is_deterministic_in_the_stream(self):
        first = sample_spec(
            derived_stream("scenario/fuzz/run-0", SEED), name="f")
        second = sample_spec(
            derived_stream("scenario/fuzz/run-0", SEED), name="f")
        assert first == second
        assert first.digest() == second.digest()

    def test_different_runs_sample_different_specs(self):
        digests = {
            sample_spec(
                derived_stream(f"scenario/fuzz/run-{i}", SEED),
                name="f",
            ).digest()
            for i in range(8)
        }
        assert len(digests) > 1
