"""The headline contract: serial == parallel == resumed, byte for byte.

Aggregated results must be a pure function of the sweep spec — not of
worker count, completion order, retries, interrupts or resumes.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet.runner import run_sweep
from repro.fleet.spec import SweepSpec, make_shards
from repro.fleet.sweeps import build_sweep, fig5_sweep


class TestSerialVsParallel:
    def test_demo_sweep_byte_identical(self):
        spec = build_sweep("demo", seed=11)
        serial = run_sweep(spec, jobs=1).aggregate_json()
        parallel = run_sweep(spec, jobs=4).aggregate_json()
        assert serial == parallel

    def test_fig5_sweep_byte_identical(self):
        spec = fig5_sweep(seed=5, nodes=40, sizes=(60,),
                          algorithms=("random", "ipr7"),
                          distributions=("ds4",), trials=1,
                          max_allocations=300)
        serial = run_sweep(spec, jobs=1).aggregate_json()
        parallel = run_sweep(spec, jobs=4).aggregate_json()
        assert serial == parallel

    def test_metrics_attached_stays_byte_identical(self):
        # The handle-based telemetry writes into the registry's slot
        # table from the sink and the executor's gauge callbacks;
        # none of it may leak into the aggregate.  Count-type metrics
        # (work done) must also agree across worker counts — only
        # scheduling shape (queue/busy high-water, durations) may
        # differ.
        from repro.obs.metrics import MetricsRegistry

        spec = build_sweep("demo", seed=11)
        serial_registry = MetricsRegistry()
        parallel_registry = MetricsRegistry()
        serial = run_sweep(spec, jobs=1, registry=serial_registry)
        parallel = run_sweep(spec, jobs=3, registry=parallel_registry)
        assert serial.aggregate_json() == parallel.aggregate_json()

        def counts(registry):
            return {
                name: registry.get(name, labels).value
                for name, labels in (
                    ("fleet_shards_completed_total",
                     {"sweep": spec.sweep_id}),
                    ("fleet_attempts_total",
                     {"sweep": spec.sweep_id, "status": "ok"}),
                    ("fleet_shards_failed_total",
                     {"sweep": spec.sweep_id}),
                )
            }

        assert counts(serial_registry) == counts(parallel_registry)
        assert serial_registry.get(
            "fleet_shards_completed_total", {"sweep": spec.sweep_id}
        ).value == len(spec.shards)
        # The parallel run's busy high-water went through the slot
        # path; with 3 workers and real shards it must exceed one.
        busy = parallel_registry.get("fleet_workers_busy",
                                     {"sweep": spec.sweep_id})
        assert busy.value >= 1.0

    def test_attempt_number_does_not_move_the_stream(self):
        # The RNG is re-derived from (sweep, shard, seed) on every
        # attempt, so a payload computed on attempt 5 equals the
        # attempt-0 payload: retries cannot change the bytes.
        from repro.fleet.executor import run_attempt_inline

        spec = SweepSpec(sweep_id="det", job="demo-pi", seed=2,
                         shards=make_shards([{"samples": 1000}]))
        first = run_attempt_inline(spec, 0, 0)
        later = run_attempt_inline(spec, 0, 5)
        assert first.payload == later.payload


class TestResume:
    def test_resume_after_partial_run_matches_straight_run(
            self, tmp_path):
        spec = build_sweep("demo", seed=11)
        straight = run_sweep(spec, jobs=2).aggregate_json()

        # Simulate an interrupted run: keep the journal's meta row
        # plus the first three shard rows, drop the rest, resume.
        path = str(tmp_path / "demo.jsonl")
        run_sweep(spec, jobs=2, checkpoint=path)
        lines = open(path).read().splitlines(keepends=True)
        with open(path, "w") as handle:
            handle.writelines(lines[:4])
        resumed = run_sweep(spec, jobs=2, checkpoint=path,
                            resume=True)
        assert resumed.resumed == 3
        assert resumed.aggregate_json() == straight

    def test_resume_with_wrong_spec_is_refused(self, tmp_path):
        from repro.fleet.checkpoint import CheckpointMismatch

        path = str(tmp_path / "demo.jsonl")
        run_sweep(build_sweep("demo", seed=11), jobs=1,
                  checkpoint=path)
        with pytest.raises(CheckpointMismatch, match="digest"):
            run_sweep(build_sweep("demo", seed=12), jobs=1,
                      checkpoint=path, resume=True)

    def test_resume_skips_completed_shards(self, tmp_path):
        spec = build_sweep("demo", seed=11)
        path = str(tmp_path / "demo.jsonl")
        first = run_sweep(spec, jobs=2, checkpoint=path)
        second = run_sweep(spec, jobs=2, checkpoint=path,
                           resume=True)
        assert second.resumed == len(spec.shards)
        assert second.aggregate_json() == first.aggregate_json()

    def test_resume_after_torn_write_matches_and_reports(
            self, tmp_path):
        spec = build_sweep("demo", seed=11)
        path = str(tmp_path / "demo.jsonl")
        straight = run_sweep(spec, jobs=2,
                             checkpoint=path).aggregate_json()
        with open(path, "a") as handle:
            handle.write('{"kind": "row", "shard": 5, "status": "o')
        resumed = run_sweep(spec, jobs=2, checkpoint=path,
                            resume=True)
        assert [issue.code for issue in resumed.issues] == ["FLT503"]
        assert resumed.torn_bytes > 0
        assert resumed.aggregate_json() == straight

    def test_without_resume_checkpoint_is_reset(self, tmp_path):
        spec = build_sweep("demo", seed=11)
        path = str(tmp_path / "demo.jsonl")
        run_sweep(spec, jobs=1, checkpoint=path)
        fresh = run_sweep(spec, jobs=1, checkpoint=path)
        assert fresh.resumed == 0
        assert fresh.complete


class TestKilledMidSweep:
    def test_sigkilled_run_resumes_to_identical_bytes(self, tmp_path):
        """SIGKILL a sweep mid-run, resume it, compare the bytes."""
        checkpoint = str(tmp_path / "kill.jsonl")
        out = str(tmp_path / "agg.json")
        script = (
            "import sys\n"
            "from repro.fleet.runner import run_sweep\n"
            "from repro.fleet.sweeps import demo_sweep\n"
            "spec = demo_sweep(seed=11, shards=8, samples=2000,\n"
            "                  sleep=0.25)\n"
            "result = run_sweep(spec, jobs=2,\n"
            "                   checkpoint=sys.argv[1],\n"
            "                   resume=True)\n"
            "open(sys.argv[2], 'w').write(result.aggregate_json())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(__file__), os.pardir,
                            "src")]
        )
        victim = subprocess.Popen(
            [sys.executable, "-c", script, checkpoint, out], env=env)
        # Give it time to journal some shards, then kill -9 the whole
        # run (parent and whatever workers it had in flight die too).
        deadline = time.time() + 20.0
        while time.time() < deadline:
            if os.path.exists(checkpoint):
                break
            time.sleep(0.05)
        time.sleep(0.6)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        assert not os.path.exists(out)

        rerun = subprocess.run(
            [sys.executable, "-c", script, checkpoint, out], env=env,
            timeout=120)
        assert rerun.returncode == 0

        from repro.fleet.sweeps import demo_sweep

        spec = demo_sweep(seed=11, shards=8, samples=2000, sleep=0.25)
        reference = run_sweep(spec, jobs=1).aggregate_json()
        assert open(out).read() == reference


class TestLintClean:
    def test_fleet_package_is_sim_scoped_and_clean(self):
        from repro.lint.engine import lint_paths
        from repro.lint.rules import SIM_PACKAGES

        assert "fleet" in SIM_PACKAGES
        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            "src", "repro", "fleet")
        findings = lint_paths([root])
        assert findings == []

    def test_wallclock_suppressions_are_the_only_ones(self):
        # The audited surface: two disable pragmas in wallclock.py
        # (the wall-clock lint rule) and four in jobs.py (the FLOW61x
        # purity rules, suppressed only for the failure drills whose
        # impurity is their specification — see test_flow_clean.py
        # for the justification audit).
        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            "src", "repro", "fleet")
        pragmas = []
        for name in sorted(os.listdir(root)):
            if not name.endswith(".py"):
                continue
            with open(os.path.join(root, name)) as handle:
                for line in handle:
                    if "simlint: disable" in line:
                        pragmas.append(name)
        assert pragmas == ["jobs.py"] * 4 + ["wallclock.py"] * 2


class TestAggregateShape:
    def test_rows_in_shard_order_with_interleaved_completion(self):
        spec = build_sweep("demo", seed=11)
        result = run_sweep(spec, jobs=4)
        rows = result.aggregate()["rows"]
        assert len(rows) == len(spec.shards)
        document = json.loads(result.aggregate_json())
        assert document["sweep"] == "demo"
        assert document["rows"] == rows
