"""SchedulerSanitizer: mutation tests per kernel invariant.

Each test breaks one invariant on purpose — through the kernel's own
code paths, not by calling the checker directly — and asserts the
sanitizer reports exactly the right violation code.  The kernel
*rejects* most of these misuses with exceptions; the monitor hooks
fire before the raise, so a sanitized run records the violation even
when the operation is refused.
"""

import heapq

import pytest

from repro.sanitize import SanitizerContext
from repro.sim.events import EventScheduler


def make_sanitized_scheduler():
    context = SanitizerContext(scenario="test")
    scheduler = context.attach_scheduler(EventScheduler())
    return context, scheduler


def codes(context):
    return [violation.code for violation in context.violations]


class TestPastSchedule:
    def test_negative_delay_records_san222(self):
        context, scheduler = make_sanitized_scheduler()
        handle = scheduler.schedule(5.0, lambda: None)
        scheduler.run()
        assert handle is not None
        with pytest.raises(ValueError):
            scheduler.schedule(-1.0, lambda: None)
        assert codes(context) == ["SAN222"]
        assert context.violations[0].rule == "past-schedule"

    def test_schedule_at_in_the_past_records_san222(self):
        context, scheduler = make_sanitized_scheduler()
        h = scheduler.schedule(10.0, lambda: None)
        scheduler.run()
        assert not h.pending
        with pytest.raises(ValueError):
            scheduler.schedule_at(3.0, lambda: None)
        assert codes(context) == ["SAN222"]

    def test_violation_carries_simulated_time(self):
        context, scheduler = make_sanitized_scheduler()
        h = scheduler.schedule(10.0, lambda: None)
        scheduler.run()
        assert not h.pending
        with pytest.raises(ValueError):
            scheduler.schedule_at(3.0, lambda: None)
        assert context.violations[0].time == 10.0


class TestClockBackwards:
    def test_backwards_advance_records_san221(self):
        context, scheduler = make_sanitized_scheduler()
        scheduler.clock.advance_to(5.0)
        with pytest.raises(ValueError):
            scheduler.clock.advance_to(1.0)
        assert codes(context) == ["SAN221"]
        assert context.violations[0].rule == "clock-backwards"

    def test_forward_advance_clean(self):
        context, scheduler = make_sanitized_scheduler()
        scheduler.clock.advance_to(5.0)
        scheduler.clock.advance_to(5.0)  # equal time is legal
        scheduler.clock.advance_to(9.0)
        assert context.clean


class LeakyScheduler(EventScheduler):
    """A kernel with the tombstone check removed — the bug under test.

    The real ``step`` skips handles whose ``cancelled`` flag is set;
    this one only honours the nulled-callback half of cancellation, so
    a handle whose flag was raised without clearing the callback fires
    anyway.  SAN223 must catch exactly that.
    """

    def step(self) -> bool:
        while self._heap:
            when, __, handle = heapq.heappop(self._heap)
            if handle.callback is None:
                continue
            self.clock.advance_to(when)
            if self._monitor is not None:
                self._monitor.on_fire(handle)
            callback, handle.callback = handle.callback, None
            callback()
            self._events_run += 1
            return True
        return False


class TestCancelledHandleFired:
    def test_buggy_kernel_firing_tombstone_records_san223(self):
        context = SanitizerContext(scenario="test")
        scheduler = context.attach_scheduler(LeakyScheduler())
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append(True))
        handle.cancelled = True  # flag only; the buggy kernel ignores it
        while scheduler.step():
            pass
        assert fired  # the bug is real: the cancelled event ran
        assert codes(context) == ["SAN223"]
        assert context.violations[0].rule == "cancelled-handle-fired"

    def test_proper_cancellation_on_real_kernel_clean(self):
        context, scheduler = make_sanitized_scheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append(True))
        handle.cancel()
        scheduler.run()
        assert not fired
        assert context.clean


class TestReentrantRun:
    def test_run_inside_callback_records_san224(self):
        context, scheduler = make_sanitized_scheduler()
        h = scheduler.schedule(1.0, lambda: scheduler.run())
        scheduler.run()
        assert not h.pending
        assert codes(context) == ["SAN224"]
        assert context.violations[0].rule == "reentrant-run"

    def test_sequential_runs_clean(self):
        context, scheduler = make_sanitized_scheduler()
        h1 = scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        h2 = scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        assert not h1.pending and not h2.pending
        assert context.clean


class TestCleanKernelRun:
    def test_ordinary_workload_records_nothing(self):
        context, scheduler = make_sanitized_scheduler()
        order = []
        handles = [
            scheduler.schedule(delay, lambda d=delay: order.append(d))
            for delay in (3.0, 1.0, 2.0)
        ]
        handles[2].cancel()
        scheduler.run()
        assert order == [1.0, 3.0]
        assert context.clean
        assert context.render_text().splitlines()[0] == (
            "sanitize[test]: clean (0 violations)"
        )

    def test_unmonitored_scheduler_has_no_monitor(self):
        scheduler = EventScheduler()
        assert scheduler._monitor is None
        assert scheduler.clock._monitor is None
