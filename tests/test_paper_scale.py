"""Paper-scale verification (opt-in: set REPRO_PAPER_SCALE=1).

The regular suite runs on reduced topologies for speed.  These tests
rebuild the full 1864-node map — the size of the paper's mcollect
data — and check the anchors that depend on scale.  They take a few
minutes, so they are skipped unless explicitly requested:

    REPRO_PAPER_SCALE=1 pytest tests/test_paper_scale.py
"""

import os

import pytest

paper_scale = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="set REPRO_PAPER_SCALE=1 to run full-scale checks",
)


@pytest.fixture(scope="module")
def full_mbone():
    from repro.topology.mbone import MboneParams, generate_mbone
    return generate_mbone(MboneParams(total_nodes=1864, seed=1998))


@pytest.fixture(scope="module")
def full_scope_map(full_mbone):
    from repro.routing.scoping import ScopeMap
    return ScopeMap.from_topology(full_mbone)


@paper_scale
class TestPaperScale:
    def test_map_size_and_connectivity(self, full_mbone):
        assert abs(full_mbone.num_nodes - 1864) < 40
        assert full_mbone.is_connected()

    def test_hop_count_table_at_scale(self, full_mbone,
                                      full_scope_map):
        from repro.topology.hopcount import hop_count_distribution
        stats = hop_count_distribution(full_mbone,
                                       scope_map=full_scope_map)
        # Paper: 10.6/26, 7.7/18, 7.0/18, 3.1/10.
        assert 8.0 < stats[127].mean_hops < 13.0
        assert 6.0 < stats[63].mean_hops < 10.0
        assert stats[127].max_hops < 32
        assert 1.5 < stats[15].mean_hops < 4.5

    def test_fig5_headline_at_scale(self, full_scope_map):
        from repro.core.iprma import StaticIprmaAllocator
        from repro.core.random_alloc import RandomAllocator
        from repro.experiments.allocation_run import fig5_run
        from repro.experiments.ttl_distributions import DS4

        rows = fig5_run(
            full_scope_map,
            {"R": lambda n, rng: RandomAllocator(n, rng),
             "IPR 7-band": lambda n, rng:
                 StaticIprmaAllocator.seven_band(n, rng)},
            [400, 1000], [DS4], trials=3, seed=1,
        )
        means = {(r.algorithm, r.space_size): r.mean_allocations
                 for r in rows}
        assert means[("IPR 7-band", 1000)] > 5 * means[("R", 1000)]
        # Linear-ish scaling for IPR-7 between the two sizes.
        growth = means[("IPR 7-band", 1000)] / means[("IPR 7-band",
                                                      400)]
        assert growth > 1.5

    def test_scope_asymmetry_exists_at_scale(self, full_scope_map):
        import numpy as np
        need = full_scope_map.need
        asymmetric = np.sum(need != need.T)
        assert asymmetric > 0  # fig. 9's hazard is present

    def test_steady_state_point_at_scale(self, full_scope_map):
        from repro.core.adaptive import AdaptiveIprmaAllocator
        from repro.experiments.steady_state import (
            allocations_at_half_clash,
        )
        from repro.experiments.ttl_distributions import DS4

        value = allocations_at_half_clash(
            full_scope_map,
            lambda n, rng: AdaptiveIprmaAllocator.aipr3(n, rng=rng),
            400, DS4, trials=6, seed=2,
        )
        assert value > 20
