"""§2.3 announcement model tests."""

import pytest

from repro.analysis.announcement import (
    ExponentialBackoffSchedule,
    invisible_fraction,
    mean_announcement_delay,
    paper_two_term_delay,
)


class TestMeanDelay:
    def test_paper_two_term_value(self):
        """(0.98*0.2)+(0.02*600) = 12.196 — 'approximately 12 seconds'."""
        assert paper_two_term_delay() == pytest.approx(12.196)

    def test_geometric_close_to_paper(self):
        assert mean_announcement_delay() == pytest.approx(12.44, abs=0.05)

    def test_no_loss_is_pure_delay(self):
        assert mean_announcement_delay(loss=0.0) == pytest.approx(0.2)

    def test_higher_loss_higher_delay(self):
        assert mean_announcement_delay(loss=0.10) > \
            mean_announcement_delay(loss=0.02)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            mean_announcement_delay(loss=1.0)
        with pytest.raises(ValueError):
            mean_announcement_delay(loss=-0.1)


class TestInvisibleFraction:
    def test_paper_value(self):
        """'approximately 0.1% of sessions ... are not visible'."""
        frac = invisible_fraction(paper_two_term_delay())
        assert 0.0005 < frac < 0.0015

    def test_capped_at_one(self):
        assert invisible_fraction(10 ** 9, 1.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            invisible_fraction(-1.0)
        with pytest.raises(ValueError):
            invisible_fraction(1.0, 0.0)


class TestBackoffSchedule:
    def test_intervals_double_and_cap(self):
        schedule = ExponentialBackoffSchedule(
            initial_interval=5.0, factor=2.0, background_interval=600.0
        )
        gaps = schedule.intervals(9)
        assert gaps[:4] == [5.0, 10.0, 20.0, 40.0]
        assert gaps[-1] == 600.0

    def test_announcement_times_cumulative(self):
        schedule = ExponentialBackoffSchedule()
        times = schedule.announcement_times(4)
        assert times == [0.0, 5.0, 15.0, 35.0]

    def test_paper_fast_start_delay(self):
        """'repeating the announcement 5 seconds after it is first made
        gives a mean delay of about 0.3 seconds' (2% loss)."""
        delay = ExponentialBackoffSchedule().mean_discovery_delay()
        assert delay == pytest.approx(0.3, abs=0.02)

    def test_i_fraction_improves_on_fixed_interval(self):
        """The §4 point: back-off shrinks i by orders of magnitude."""
        backoff_i = ExponentialBackoffSchedule().i_fraction()
        fixed_i = invisible_fraction(mean_announcement_delay())
        assert backoff_i < fixed_i / 10

    def test_zero_loss_is_first_packet(self):
        delay = ExponentialBackoffSchedule().mean_discovery_delay(loss=0.0)
        assert delay == pytest.approx(0.2)

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError):
            ExponentialBackoffSchedule(initial_interval=0.0)
        with pytest.raises(ValueError):
            ExponentialBackoffSchedule(factor=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoffSchedule(initial_interval=700.0,
                                       background_interval=600.0)
