"""The shared registry and the unified CLI surface.

One registry enumerates every check across repro.lint (SIM1xx),
repro.sanitize (SAN2xx), repro.modelcheck (MC30x static, MC31x
runtime), repro.obs (OBS4xx) and repro.fleet (FLT5xx); the five CLIs
print the same ``--list-rules`` output, share the 0/1/2 exit-code
contract, and all speak ``--format github``.
"""

import pytest

from repro.lint import registry


class TestRegistry:
    def test_every_code_space_is_present(self):
        codes = {entry.code for entry in registry.all_entries()}
        assert {"SIM101", "SIM114", "MC301", "MC304", "MC311",
                "MC312", "SAN204", "SAN231", "OBS401",
                "OBS402", "FLT501", "FLT502", "FLT503"} <= codes

    def test_codes_are_unique_and_sorted(self):
        entries = registry.all_entries()
        codes = [entry.code for entry in entries]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))

    def test_every_entry_is_described(self):
        for entry in registry.all_entries():
            assert entry.description, entry.code
            assert entry.kind in ("static", "runtime")
            assert entry.tool in ("lint", "sanitize", "modelcheck",
                                  "obs", "fleet", "flow", "units",
                                  "alias", "scenario")

    def test_static_rules_include_mc_spec_rules(self):
        names = {rule.name for rule in registry.static_rules()}
        assert "unseeded-rng" in names
        assert "spec-handler-missing" in names

    def test_get_static_rules_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown rule"):
            registry.get_static_rules(select=["no-such-rule"])

    def test_ruleset_signature_is_stable_and_sensitive(self):
        rules = registry.static_rules()
        assert (registry.ruleset_signature(rules)
                == registry.ruleset_signature(rules))
        assert (registry.ruleset_signature(rules[:-1])
                != registry.ruleset_signature(rules))


class TestUnifiedListRules:
    def _list_rules_output(self, main, capsys):
        assert main(["--list-rules"]) == 0
        return capsys.readouterr().out

    def test_all_five_clis_print_the_same_registry(self, capsys):
        from repro.fleet.cli import main as fleet_main
        from repro.lint.cli import main as lint_main
        from repro.modelcheck.cli import main as mc_main
        from repro.obs.cli import main as obs_main
        from repro.sanitize.cli import main as san_main

        outputs = {
            self._list_rules_output(main, capsys)
            for main in (lint_main, san_main, mc_main, obs_main,
                         fleet_main)
        }
        assert len(outputs) == 1
        output = outputs.pop()
        for code in ("SIM101", "MC301", "MC311", "SAN204", "OBS401",
                     "OBS402", "FLT501", "FLT503"):
            assert code in output


class TestGithubFormat:
    def test_lint_annotations(self, tmp_path, capsys):
        from repro.lint.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("key = hash('x')\n")
        assert main([str(bad), "--format", "github",
                     "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert f"file={bad},line=1" in out
        assert "SIM110" in out

    def test_clean_tree_produces_no_annotations(self, tmp_path, capsys):
        from repro.lint.cli import main

        good = tmp_path / "good.py"
        good.write_text("VALUE = 3\n")
        assert main([str(good), "--format", "github",
                     "--no-cache"]) == 0
        assert capsys.readouterr().out == ""

    def test_modelcheck_annotations_use_pseudo_path(self, capsys):
        from repro.modelcheck.cli import main

        assert main(["smoke", "--mutation", "defend-off-by-one",
                     "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error title=MC312::" in out
        assert "<modelcheck:smoke+defend-off-by-one>" in out

    def test_sanitize_github_clean(self, capsys):
        from repro.sanitize.cli import main

        assert main(["kernel", "--format", "github"]) == 0
        assert capsys.readouterr().out == ""


class TestExitCodeContract:
    def test_constants(self):
        assert (registry.EXIT_CLEAN, registry.EXIT_FINDINGS,
                registry.EXIT_USAGE) == (0, 1, 2)

    def test_lint_usage_error(self, capsys):
        from repro.lint.cli import main

        assert main(["--select", "no-such-rule"]) == 2
        capsys.readouterr()

    def test_modelcheck_usage_error(self, capsys):
        from repro.modelcheck.cli import main

        assert main(["no-such-scenario"]) == 2
        capsys.readouterr()

    def test_sanitize_usage_error(self, capsys):
        from repro.sanitize.cli import main

        assert main(["no-such-scenario"]) == 2
        capsys.readouterr()

    def test_obs_usage_error(self, capsys):
        from repro.obs.cli import main

        assert main(["no-such-scenario"]) == 2
        capsys.readouterr()

    def test_modelcheck_clean_exit(self, capsys):
        from repro.modelcheck.cli import main

        assert main(["smoke"]) == 0
        capsys.readouterr()

    def test_modelcheck_truncation_is_a_failure(self, capsys):
        from repro.modelcheck.cli import main

        assert main(["smoke", "--max-states", "5"]) == 1
        out = capsys.readouterr().out
        assert "TRUNCATED" in out
