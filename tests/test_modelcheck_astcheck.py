"""MC301–MC304: extraction semantics and spec cross-checking."""

import ast
from pathlib import Path

from repro.lint.engine import lint_paths, lint_source
from repro.modelcheck.astcheck import MC_RULES, extract_machine

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "mc_broken_handler.py"


def _machine(source: str):
    tree = ast.parse(source)
    cls = next(node for node in ast.walk(tree)
               if isinstance(node, ast.ClassDef))
    return extract_machine(cls)


class TestSourceTreeConformsToSpec:
    def test_src_is_clean(self):
        findings = lint_paths([str(REPO_ROOT / "src")], rules=MC_RULES)
        assert findings == [], "\n".join(f.format() for f in findings)


class TestBrokenFixtureFires:
    def test_all_four_codes_fire(self):
        findings = lint_paths([str(FIXTURE)], rules=MC_RULES)
        codes = {finding.code for finding in findings}
        assert codes == {"MC301", "MC302", "MC303", "MC304"}

    def test_specific_defects_are_named(self):
        messages = "\n".join(
            finding.message
            for finding in lint_paths([str(FIXTURE)], rules=MC_RULES)
        )
        assert "_fire_defence" in messages      # MC301: deleted handler
        assert "'allocate'" in messages         # MC302: foreign effect
        assert "_check_later" in messages       # MC302: foreign timer
        assert "on_timeout" in messages         # MC303: undeclared
        assert "'retreat'" in messages          # MC304: lost branch

    def test_suppressible_like_any_lint_rule(self):
        source = FIXTURE.read_text(encoding="utf-8")
        suppressed = source.replace(
            "class ClashHandler:",
            "class ClashHandler:  "
            "# simlint: disable-file=spec-handler-missing,"
            "undeclared-transition,undeclared-handler,"
            "missing-required-effect",
        )
        assert lint_source(suppressed, path=str(FIXTURE),
                           rules=MC_RULES) == []


class TestExtraction:
    def test_nested_function_effects_propagate(self):
        machine = _machine(
            "class C:\n"
            "    def create(self):\n"
            "        def kick():\n"
            "            self.network.send(1)\n"
            "        kick()\n"
        )
        assert machine["create"].effects == {"send"}

    def test_schedule_target_from_bound_method(self):
        machine = _machine(
            "class C:\n"
            "    def start(self):\n"
            "        self._pending = self.scheduler.schedule(\n"
            "            self.interval, self._fire)\n"
        )
        assert machine["start"].effects == {"schedule"}
        # self.interval is the delay, never the callback target.
        assert machine["start"].schedules == {"_fire"}

    def test_schedule_target_from_lambda_with_default(self):
        machine = _machine(
            "class C:\n"
            "    def send(self, node):\n"
            "        self.scheduler.schedule(\n"
            "            self.delay,\n"
            "            lambda n=node: self._deliver(n, 1))\n"
        )
        assert machine["send"].schedules == {"_deliver"}

    def test_lambda_body_excluded_from_direct_effects(self):
        machine = _machine(
            "class C:\n"
            "    def arm(self, key):\n"
            "        self.scheduler.schedule(\n"
            "            2.0, lambda: self.directory.retreat(key))\n"
        )
        # The deferred retreat is a *scheduled* transition, not a
        # direct effect of arming the timer.
        assert machine["arm"].effects == {"schedule"}
        assert machine["arm"].schedules == {"retreat"}

    def test_transitive_closure_over_self_calls(self):
        machine = _machine(
            "class C:\n"
            "    def on_announcement(self, entry):\n"
            "        self._react(entry)\n"
            "    def _react(self, entry):\n"
            "        self.directory.retreat(entry)\n"
        )
        assert machine["on_announcement"].effects == {"retreat"}

    def test_receiver_agnostic_classification(self):
        machine = _machine(
            "class C:\n"
            "    def a(self):\n"
            "        self.directory.defend(1)\n"
            "    def b(self, directory):\n"
            "        directory.defend(1)\n"
        )
        assert machine["a"].effects == {"defend"}
        assert machine["b"].effects == {"defend"}
