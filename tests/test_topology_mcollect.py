"""mcollect emulator tests."""

import numpy as np
import pytest

from repro.topology.mcollect import McollectProbe
from repro.topology.mbone import MboneParams, generate_mbone


class TestFullCollection:
    def test_perfect_walk_recovers_everything(self, small_mbone):
        probe = McollectProbe(small_mbone, unreachable_fraction=0.0,
                              rng=np.random.default_rng(0))
        collected = probe.collect(monitor=0)
        assert collected.num_nodes == small_mbone.num_nodes
        assert collected.num_links == small_mbone.num_links

    def test_attributes_preserved(self, small_mbone):
        probe = McollectProbe(small_mbone, rng=np.random.default_rng(0))
        collected = probe.collect(monitor=0)
        census_truth = sorted(
            (l.metric, l.threshold) for l in small_mbone.links()
        )
        census_map = sorted(
            (l.metric, l.threshold) for l in collected.links()
        )
        assert census_truth == census_map


class TestPartialCollection:
    def test_silent_mrouters_reduce_coverage(self, small_mbone):
        probe = McollectProbe(small_mbone, unreachable_fraction=0.3,
                              rng=np.random.default_rng(1))
        report = probe.report(monitor=0)
        assert report.mapped_nodes < report.ground_truth_nodes
        assert 0.1 < report.coverage < 1.0
        assert report.responding_nodes < report.ground_truth_nodes

    def test_result_is_connected(self, small_mbone):
        """The paper's cleanup: disconnected subtrees removed."""
        for seed in range(4):
            probe = McollectProbe(small_mbone,
                                  unreachable_fraction=0.25,
                                  rng=np.random.default_rng(seed))
            collected = probe.collect(monitor=0)
            assert collected.is_connected()

    def test_coverage_degrades_with_unreachable_fraction(self,
                                                         small_mbone):
        coverages = []
        for fraction in (0.0, 0.2, 0.5):
            probe = McollectProbe(small_mbone,
                                  unreachable_fraction=fraction,
                                  rng=np.random.default_rng(7))
            coverages.append(probe.report(monitor=0).coverage)
        assert coverages[0] == 1.0
        assert coverages[0] >= coverages[1] >= coverages[2]

    def test_silent_leaf_still_mapped_via_neighbor(self):
        """A silent mrouter is visible on the map (its responding
        neighbour reports the link) but nothing behind it is."""
        from repro.topology.graph import Topology
        chain = Topology()
        for __ in range(4):
            chain.add_node()
        chain.add_link(0, 1)
        chain.add_link(1, 2)
        chain.add_link(2, 3)
        probe = McollectProbe(chain, unreachable_fraction=0.0)
        probe.unreachable_fraction = 0.0
        # Force node 2 silent.
        probe._choose_silent = lambda monitor: {2}
        collected = probe.collect(monitor=0)
        # Node 2 appears (link 1-2 reported by 1) but 3 is invisible.
        assert collected.num_nodes == 3
        assert collected.num_links == 2

    def test_invalid_fraction(self, small_mbone):
        with pytest.raises(ValueError):
            McollectProbe(small_mbone, unreachable_fraction=1.0)
