"""SAP message codec and session cache tests."""

import pytest

from repro.core.allocator import VisibleSet
from repro.sap.cache import SessionCache
from repro.sap.messages import SapMessage, SapMessageType, payload_hash
from repro.sap.sdp import SessionDescription

PAYLOAD = SessionDescription(
    name="demo", session_id=7, connection_address="224.2.128.9", ttl=63
).format()


class TestSapMessage:
    def test_announce_roundtrip(self):
        msg = SapMessage.announce(42, PAYLOAD)
        decoded = SapMessage.decode(msg.encode())
        assert decoded == msg
        assert decoded.msg_type is SapMessageType.ANNOUNCE
        assert decoded.origin == 42
        assert decoded.payload == PAYLOAD

    def test_delete_roundtrip(self):
        msg = SapMessage.delete(42, PAYLOAD)
        decoded = SapMessage.decode(msg.encode())
        assert decoded.msg_type is SapMessageType.DELETE
        assert decoded.key() == msg.key()

    def test_hash_tracks_payload(self):
        a = SapMessage.announce(1, PAYLOAD)
        b = SapMessage.announce(1, PAYLOAD + "a=extra\n")
        assert a.msg_id_hash != b.msg_id_hash
        assert payload_hash(PAYLOAD) == a.msg_id_hash

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            SapMessage.decode(b"\x20\x00")

    def test_wrong_version_rejected(self):
        data = bytearray(SapMessage.announce(1, PAYLOAD).encode())
        data[0] = 0x40  # version 2
        with pytest.raises(ValueError):
            SapMessage.decode(bytes(data))

    def test_invalid_hash_rejected(self):
        with pytest.raises(ValueError):
            SapMessage(SapMessageType.ANNOUNCE, 1, 2 ** 16, PAYLOAD)

    def test_negative_origin_rejected(self):
        with pytest.raises(ValueError):
            SapMessage(SapMessageType.ANNOUNCE, -1, 0, PAYLOAD)

    def test_compressed_roundtrip(self):
        msg = SapMessage.announce(42, PAYLOAD * 8)
        wire = msg.encode(compress=True)
        assert SapMessage.decode(wire) == msg
        # Compression actually helps on repetitive SDP.
        assert len(wire) < len(msg.encode())

    def test_compressed_and_plain_interoperate(self):
        msg = SapMessage.announce(42, PAYLOAD)
        assert SapMessage.decode(msg.encode(compress=True)) == \
            SapMessage.decode(msg.encode())

    def test_corrupt_compressed_payload_rejected(self):
        msg = SapMessage.announce(42, PAYLOAD)
        wire = bytearray(msg.encode(compress=True))
        wire[10] ^= 0xFF
        with pytest.raises(ValueError):
            SapMessage.decode(bytes(wire))

    def test_non_utf8_payload_rejected(self):
        msg = SapMessage.announce(42, PAYLOAD)
        wire = msg.encode()[:8] + b"\xff\xfe\x00"
        with pytest.raises(ValueError):
            SapMessage.decode(wire)


class TestSessionCache:
    def test_observe_announcement(self):
        cache = SessionCache()
        msg = SapMessage.announce(1, PAYLOAD)
        entry = cache.observe(msg, now=5.0, address_index=9)
        assert len(cache) == 1
        assert entry.first_heard == 5.0
        assert entry.address_index == 9
        assert entry.description.name == "demo"
        assert entry.ttl == 63

    def test_repeat_updates_last_heard(self):
        cache = SessionCache()
        msg = SapMessage.announce(1, PAYLOAD)
        cache.observe(msg, now=5.0)
        entry = cache.observe(msg, now=15.0)
        assert len(cache) == 1
        assert entry.first_heard == 5.0
        assert entry.last_heard == 15.0
        assert entry.times_heard == 2

    def test_delete_removes(self):
        cache = SessionCache()
        cache.observe(SapMessage.announce(1, PAYLOAD), now=0.0)
        cache.observe(SapMessage.delete(1, PAYLOAD), now=1.0)
        assert len(cache) == 0

    def test_unparseable_payload_ignored(self):
        cache = SessionCache()
        entry = cache.observe(SapMessage.announce(1, "garbage"), now=0.0)
        assert entry is None
        assert len(cache) == 0

    def test_expiry(self):
        cache = SessionCache(timeout=100.0)
        cache.observe(SapMessage.announce(1, PAYLOAD), now=0.0)
        other = SessionDescription(name="other").format()
        cache.observe(SapMessage.announce(2, other), now=90.0)
        assert cache.expire(now=150.0) == 1
        assert len(cache) == 1
        assert cache.lookup(1, payload_hash(PAYLOAD)) is None

    def test_refresh_prevents_expiry(self):
        cache = SessionCache(timeout=100.0)
        msg = SapMessage.announce(1, PAYLOAD)
        cache.observe(msg, now=0.0)
        cache.observe(msg, now=80.0)
        assert cache.expire(now=150.0) == 0

    def test_entries_for_address(self):
        cache = SessionCache()
        cache.observe(SapMessage.announce(1, PAYLOAD), now=0.0,
                      address_index=9)
        other = SessionDescription(name="other").format()
        cache.observe(SapMessage.announce(2, other), now=0.0,
                      address_index=4)
        hits = cache.entries_for_address(9)
        assert len(hits) == 1
        assert hits[0].description.name == "demo"

    def test_visible_set(self):
        cache = SessionCache()
        cache.observe(SapMessage.announce(1, PAYLOAD), now=0.0,
                      address_index=9)
        unmapped = SessionDescription(name="unmapped").format()
        cache.observe(SapMessage.announce(2, unmapped), now=0.0)
        vs = cache.visible_set()
        assert isinstance(vs, VisibleSet)
        assert vs.addresses.tolist() == [9]
        assert vs.ttls.tolist() == [63]

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            SessionCache(timeout=0.0)

    def test_modified_announcement_supersedes_older_version(self):
        """An address change (clash retreat) must not leave the old
        address looking occupied: version 2 replaces version 1."""
        cache = SessionCache()
        v1 = SessionDescription(name="talk", username="mjh",
                                session_id=7, version=1,
                                connection_address="224.2.128.5",
                                ttl=63)
        v2 = SessionDescription(name="talk", username="mjh",
                                session_id=7, version=2,
                                connection_address="224.2.128.9",
                                ttl=63)
        cache.observe(SapMessage.announce(1, v1.format()), now=0.0,
                      address_index=5)
        cache.observe(SapMessage.announce(1, v2.format()), now=10.0,
                      address_index=9)
        assert len(cache) == 1
        entry = cache.entries()[0]
        assert entry.description.version == 2
        assert entry.address_index == 9
        assert cache.entries_for_address(5) == []

    def test_stale_version_does_not_displace_newer(self):
        cache = SessionCache()
        v2 = SessionDescription(name="talk", username="mjh",
                                session_id=7, version=2)
        v1 = SessionDescription(name="talk", username="mjh",
                                session_id=7, version=1)
        cache.observe(SapMessage.announce(1, v2.format()), now=0.0)
        cache.observe(SapMessage.announce(1, v1.format()), now=5.0)
        # The delayed old version coexists (it has a distinct hash)
        # but the new one survives.
        versions = sorted(e.description.version
                          for e in cache.entries())
        assert 2 in versions

    def test_same_session_id_different_origin_not_superseded(self):
        cache = SessionCache()
        desc = SessionDescription(name="talk", username="mjh",
                                  session_id=7, version=2)
        cache.observe(SapMessage.announce(1, desc.format()), now=0.0)
        cache.observe(SapMessage.announce(2, desc.format()), now=1.0)
        assert len(cache) == 2


class TestCachePersistence:
    def fill(self, cache):
        for i in range(3):
            desc = SessionDescription(
                name=f"s{i}", session_id=i + 1, ttl=63,
                connection_address=f"224.2.128.{i + 1}",
            )
            cache.observe(SapMessage.announce(i, desc.format()),
                          now=float(i), address_index=i + 1)

    def test_export_import_roundtrip(self):
        cache = SessionCache()
        self.fill(cache)
        restored = SessionCache()
        added = restored.import_text(cache.export_text())
        assert added == 3
        assert len(restored) == 3
        for entry in cache.entries():
            twin = restored.lookup(*entry.message.key())
            assert twin is not None
            assert twin.description == entry.description
            assert twin.address_index == entry.address_index
            assert twin.first_heard == entry.first_heard
            assert twin.times_heard == entry.times_heard

    def test_import_merges_without_overwriting(self):
        cache = SessionCache()
        self.fill(cache)
        bundle = cache.export_text()
        # Touch an entry so the local copy differs from the bundle.
        entry = cache.entries()[0]
        cache.observe(entry.message, now=99.0)
        added = cache.import_text(bundle)
        assert added == 0
        assert cache.lookup(*entry.message.key()).last_heard == 99.0

    def test_import_rejects_garbage(self):
        cache = SessionCache()
        with pytest.raises(ValueError):
            cache.import_text("nonsense")
        with pytest.raises(ValueError):
            cache.import_text("# repro-sap-cache 1\nwhat\n")
        with pytest.raises(ValueError):
            cache.import_text(
                "# repro-sap-cache 1\n"
                "entry origin=1 first=0.0 last=0.0 heard=1 address=-\n"
                "v=0\ns=x\n"  # no "end"
            )

    def test_exported_bundle_feeds_visible_set(self):
        cache = SessionCache()
        self.fill(cache)
        restored = SessionCache()
        restored.import_text(cache.export_text())
        assert sorted(restored.visible_set().addresses.tolist()) == \
            [1, 2, 3]
