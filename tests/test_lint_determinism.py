"""Run-twice determinism harness tests.

The harness is the dynamic half of the determinism contract: the
static rules stop known nondeterminism patterns from entering the
tree, and this scenario catches whatever they miss by demanding
byte-identical event traces for identical seeds.
"""

from repro.lint.determinism import run_scenario, verify


class TestRunScenario:
    def test_same_seed_byte_identical(self):
        first = run_scenario(seed=1998)
        second = run_scenario(seed=1998)
        assert first == second

    def test_scenario_is_nontrivial(self):
        trace = run_scenario(seed=1998)
        # The scenario must actually exercise the machinery it guards:
        # announcements flowing, clashes detected, losses drawn.
        assert "announcement received" in trace
        assert "creating" in trace
        assert "lost=0" not in trace
        counters = trace[trace.index("-- counters --"):]
        clashes = [int(part.split("=")[1])
                   for line in counters.splitlines()
                   for part in line.split()
                   if part.startswith("clashes=")]
        assert sum(clashes) > 0

    def test_different_seeds_diverge(self):
        assert run_scenario(seed=1) != run_scenario(seed=2)


class TestVerify:
    def test_verify_reports_identical(self):
        report = verify(seed=1998)
        assert report.identical
        assert report.first_divergence is None
        assert report.trace_lines > 100
        assert "IDENTICAL" in report.format()

    def test_verify_smaller_world(self):
        report = verify(seed=5, num_sites=4, sessions_per_site=2,
                        space_size=6, horizon=120.0)
        assert report.identical
