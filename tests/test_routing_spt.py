"""Shortest-path tree / forest tests."""

import numpy as np
import pytest

from repro.routing.spt import (
    NO_PREDECESSOR,
    ShortestPathForest,
    topology_csr,
)
from repro.topology.graph import Topology


@pytest.fixture
def diamond():
    """0 - 1 - 3 and 0 - 2 - 3; metric favours the 0-2-3 path.

        metric(0,1)=5, metric(1,3)=5, metric(0,2)=1, metric(2,3)=1
        delay favours the 0-1-3 path instead.
    """
    topo = Topology()
    for __ in range(4):
        topo.add_node()
    topo.add_link(0, 1, metric=5, delay=0.001)
    topo.add_link(1, 3, metric=5, delay=0.001)
    topo.add_link(0, 2, metric=1, delay=0.5)
    topo.add_link(2, 3, metric=1, delay=0.5)
    return topo


class TestTopologyCsr:
    def test_symmetric(self, diamond):
        csr = topology_csr(diamond, "metric")
        dense = csr.toarray()
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == 5
        assert dense[0, 2] == 1

    def test_weights(self, diamond):
        by_delay = topology_csr(diamond, "delay").toarray()
        assert by_delay[0, 2] == 0.5
        by_hops = topology_csr(diamond, "hops").toarray()
        assert by_hops[0, 1] == 1

    def test_unknown_weight_rejected(self, diamond):
        with pytest.raises(ValueError):
            topology_csr(diamond, "bananas")


class TestShortestPathForest:
    def test_metric_routing_prefers_low_metric(self, diamond):
        forest = ShortestPathForest(diamond, "metric")
        tree = forest.tree(0)
        assert tree.path(3) == [0, 2, 3]
        assert tree.distance[3] == 2

    def test_delay_routing_prefers_low_delay(self, diamond):
        forest = ShortestPathForest(diamond, "delay")
        tree = forest.tree(0)
        assert tree.path(3) == [0, 1, 3]
        assert tree.distance[3] == pytest.approx(0.002)

    def test_tree_memoised(self, diamond):
        forest = ShortestPathForest(diamond)
        assert forest.tree(0) is forest.tree(0)

    def test_depth(self, diamond):
        tree = ShortestPathForest(diamond).tree(0)
        assert tree.depth(0) == 0
        assert tree.depth(3) == 2

    def test_unreachable_path_raises(self):
        topo = Topology()
        topo.add_node()
        topo.add_node()
        topo.add_node()
        topo.add_link(0, 1)
        tree = ShortestPathForest(topo).tree(0)
        assert not tree.reachable()[2]
        with pytest.raises(ValueError):
            tree.path(2)

    def test_all_trees_matches_single_trees(self, diamond):
        forest = ShortestPathForest(diamond)
        pairs = forest.all_trees()
        for source in range(4):
            single = forest.tree(source)
            assert np.allclose(pairs.distance[source], single.distance)

    def test_hop_depths(self, diamond):
        pairs = ShortestPathForest(diamond).all_trees()
        depths = pairs.hop_depths()
        assert depths[0, 0] == 0
        assert depths[0, 2] == 1
        assert depths[0, 3] == 2

    def test_hop_depths_unreachable_is_minus_one(self):
        topo = Topology()
        for __ in range(3):
            topo.add_node()
        topo.add_link(0, 1)
        depths = ShortestPathForest(topo).all_trees().hop_depths()
        assert depths[0, 2] == -1
        assert depths[2, 0] == -1
        assert depths[2, 2] == 0

    def test_hop_depths_on_mbone(self, small_mbone):
        depths = ShortestPathForest(small_mbone).all_trees().hop_depths()
        n = small_mbone.num_nodes
        assert depths.shape == (n, n)
        assert (np.diag(depths) == 0).all()
        assert (depths >= 0).all()  # connected map
        # Hop depth differs from its transpose by at most tie-breaks,
        # but both directions must be positive and bounded.
        assert depths.max() < 64
