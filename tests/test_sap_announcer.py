"""Announcement strategy and announcer loop tests."""

import numpy as np
import pytest

from repro.analysis.announcement import ExponentialBackoffSchedule
from repro.sap.announcer import (
    Announcer,
    BandwidthLimitedStrategy,
    ExponentialBackoffStrategy,
    FixedIntervalStrategy,
)
from repro.sim.events import EventScheduler


class TestStrategies:
    def test_fixed(self):
        strategy = FixedIntervalStrategy(300.0)
        assert strategy.next_interval(1, 10) == 300.0
        assert strategy.next_interval(50, 1000) == 300.0

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedIntervalStrategy(0.0)

    def test_backoff_doubles_then_caps(self):
        strategy = ExponentialBackoffStrategy(
            ExponentialBackoffSchedule(5.0, 2.0, 600.0)
        )
        assert strategy.next_interval(1, 1) == 5.0
        assert strategy.next_interval(2, 1) == 10.0
        assert strategy.next_interval(3, 1) == 20.0
        assert strategy.next_interval(50, 1) == 600.0

    def test_bandwidth_limited_scales_with_population(self):
        strategy = BandwidthLimitedStrategy(bandwidth_bps=4096,
                                            packet_bytes=512,
                                            min_interval=5.0)
        # One session: 512*8/4096 = 1 s -> floored at 5 s.
        assert strategy.next_interval(1, 1) == 5.0
        # 100 sessions: 100 s between announcements of each session.
        assert strategy.next_interval(1, 100) == pytest.approx(100.0)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            BandwidthLimitedStrategy(bandwidth_bps=0)


class TestAnnouncer:
    def make(self, sched, strategy, jitter=0.0):
        sent = []
        announcer = Announcer(
            scheduler=sched,
            send=lambda: sent.append(sched.now),
            strategy=strategy,
            rng=np.random.default_rng(0),
            jitter_fraction=jitter,
        )
        return announcer, sent

    def test_announces_immediately_then_periodically(self):
        sched = EventScheduler()
        announcer, sent = self.make(sched, FixedIntervalStrategy(10.0))
        announcer.start()
        sched.run(until=35.0)
        assert sent == [0.0, 10.0, 20.0, 30.0]
        assert announcer.announcements_sent == 4

    def test_stop_halts_loop(self):
        sched = EventScheduler()
        announcer, sent = self.make(sched, FixedIntervalStrategy(10.0))
        announcer.start()
        sched.run(until=15.0)
        announcer.stop()
        sched.run(until=100.0)
        assert sent == [0.0, 10.0]
        assert not announcer.running

    def test_start_idempotent(self):
        sched = EventScheduler()
        announcer, sent = self.make(sched, FixedIntervalStrategy(10.0))
        announcer.start()
        announcer.start()
        sched.run(until=1.0)
        assert sent == [0.0]

    def test_backoff_timing(self):
        sched = EventScheduler()
        announcer, sent = self.make(
            sched,
            ExponentialBackoffStrategy(
                ExponentialBackoffSchedule(5.0, 2.0, 600.0)
            ),
        )
        announcer.start()
        sched.run(until=36.0)
        assert sent == [0.0, 5.0, 15.0, 35.0]

    def test_announce_now_extra_send(self):
        sched = EventScheduler()
        announcer, sent = self.make(sched, FixedIntervalStrategy(100.0))
        announcer.start()
        sched.run(until=1.0)
        announcer.announce_now()
        assert sent == [0.0, 1.0]

    def test_announce_now_ignored_when_stopped(self):
        sched = EventScheduler()
        announcer, sent = self.make(sched, FixedIntervalStrategy(100.0))
        announcer.announce_now()
        assert sent == []

    def test_jitter_spreads_interval(self):
        sched = EventScheduler()
        announcer, sent = self.make(sched, FixedIntervalStrategy(10.0),
                                    jitter=0.3)
        announcer.start()
        sched.run(until=100.0)
        gaps = np.diff(sent)
        assert (gaps >= 7.0 - 1e-9).all()
        assert (gaps <= 13.0 + 1e-9).all()
        assert gaps.std() > 0.1

    def test_invalid_jitter_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            Announcer(sched, lambda: None, FixedIntervalStrategy(1.0),
                      jitter_fraction=1.5)
