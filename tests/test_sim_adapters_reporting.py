"""Tests for sim.adapters and experiments.reporting."""

import numpy as np
import pytest

from repro.experiments.reporting import (
    format_table,
    merge_sharded_rows,
    print_series,
)
from repro.routing.scoping import ScopeMap
from repro.routing.spt import ShortestPathForest
from repro.sim.adapters import build_network_stack, scoped_receiver_map


class TestScopedReceiverMap:
    def test_receivers_match_scope(self, chain_topology,
                                   chain_scope_map):
        forest = ShortestPathForest(chain_topology, weight="delay")
        receivers = scoped_receiver_map(chain_scope_map, forest)
        got = dict(receivers(0, 18))
        # need[0] = [0, 2, 18, 18, 68]: nodes 0..3 in scope.
        assert set(got) == {0, 1, 2, 3}

    def test_delays_are_path_delays(self, chain_topology,
                                    chain_scope_map):
        forest = ShortestPathForest(chain_topology, weight="delay")
        receivers = scoped_receiver_map(chain_scope_map, forest)
        got = dict(receivers(0, 255))
        assert got[1] == pytest.approx(0.010)
        assert got[4] == pytest.approx(0.100)

    def test_small_ttl_only_source(self, chain_topology,
                                   chain_scope_map):
        forest = ShortestPathForest(chain_topology, weight="delay")
        receivers = scoped_receiver_map(chain_scope_map, forest)
        assert dict(receivers(0, 1)) == {0: 0.0}

    def test_build_network_stack(self, chain_topology):
        scope_map, forest, receivers = build_network_stack(
            chain_topology
        )
        assert isinstance(scope_map, ScopeMap)
        assert dict(receivers(0, 2)) == {0: 0.0, 1: pytest.approx(0.01)}


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"],
                            [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Every line has equal width.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [(1.5,), (0.001234,), (12345.6,),
                                    (float("nan"),)])
        assert "1.5" in text
        assert "0.00123" in text
        assert "1.23e+04" in text
        assert "nan" in text

    def test_trailing_zeros_trimmed(self):
        text = format_table(["x"], [(2.0,)])
        assert " 2" in text or text.endswith("2")
        assert "2.000" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_print_series(self, capsys):
        print_series("demo", ["k"], [("v",)])
        out = capsys.readouterr().out
        assert "== demo ==" in out
        assert "v" in out


class TestMergeShardedRows:
    def test_pairs_sorted_by_shard_index(self):
        rows = merge_sharded_rows([(2, "c"), (0, "a"), (1, "b")])
        assert rows == ["a", "b", "c"]

    def test_key_field_lookup(self):
        rows = merge_sharded_rows(
            [{"shard": 1, "v": "b"}, {"shard": 0, "v": "a"}],
            key="shard",
        )
        assert [row["v"] for row in rows] == ["a", "b"]

    def test_stable_within_a_shard(self):
        # Equal indices keep arrival order (a stable sort).
        rows = merge_sharded_rows(
            [(1, "x1"), (0, "y"), (1, "x2"), (1, "x3")]
        )
        assert rows == ["y", "x1", "x2", "x3"]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError, match="missing its 'shard'"):
            merge_sharded_rows([{"v": 1}], key="shard")

    def test_empty(self):
        assert merge_sharded_rows([]) == []

    def test_string_indices_coerced(self):
        rows = merge_sharded_rows([("10", "b"), ("9", "a")])
        assert rows == ["a", "b"]
