"""Shared fixtures: small deterministic topologies and RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.scoping import ScopeMap
from repro.topology.doar import DoarParams, generate_doar
from repro.topology.graph import Topology
from repro.topology.mbone import MboneParams, generate_mbone


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_mbone():
    """A ~150-node synthetic Mbone (shared; treat as read-only)."""
    return generate_mbone(MboneParams(total_nodes=150, seed=42))


@pytest.fixture(scope="session")
def small_scope_map(small_mbone):
    return ScopeMap.from_topology(small_mbone)


@pytest.fixture(scope="session")
def small_doar():
    """A 300-node Doar topology (shared; treat as read-only)."""
    return generate_doar(DoarParams(num_nodes=300, seed=7))


@pytest.fixture
def chain_topology():
    """0 -1- 1 -16- 2 -1- 3 -64- 4 with unit metrics and known delays.

    Link (1,2) has TTL threshold 16 and link (3,4) threshold 64, so
    scoping is exactly predictable:
      need[0] = [0, 2, 18, 18, 68]
    """
    topo = Topology()
    for __ in range(5):
        topo.add_node()
    topo.add_link(0, 1, metric=1, threshold=1, delay=0.010)
    topo.add_link(1, 2, metric=1, threshold=16, delay=0.020)
    topo.add_link(2, 3, metric=1, threshold=1, delay=0.030)
    topo.add_link(3, 4, metric=1, threshold=64, delay=0.040)
    return topo


@pytest.fixture
def chain_scope_map(chain_topology):
    return ScopeMap.from_topology(chain_topology)
