"""Unit tests for the simlint rule set, suppressions and reporters."""

import json

from repro.lint.engine import (
    Finding,
    lint_source,
    package_of,
    parse_suppressions,
)
from repro.lint.report import render_json, render_text
from repro.lint.rules import ALL_RULES, SIM_PACKAGES, get_rules


def names(code, package="sim"):
    """Rule names found in a snippet linted as repro.<package> code."""
    return [f.rule for f in lint_source(code, package=package)]


class TestUnseededRng:
    def test_unseeded_default_rng_flagged(self):
        assert "unseeded-rng" in names(
            "import numpy as np\nr = np.random.default_rng()\n"
        )

    def test_seeded_default_rng_clean(self):
        assert names(
            "import numpy as np\nr = np.random.default_rng(42)\n"
        ) == []

    def test_seed_sequence_argument_clean(self):
        assert names(
            "import numpy as np\n"
            "r = np.random.default_rng(np.random.SeedSequence(1))\n"
        ) == []

    def test_legacy_global_rng_flagged(self):
        code = "import numpy as np\nnp.random.seed(3)\n"
        assert "unseeded-rng" in names(code)

    def test_legacy_global_draw_flagged(self):
        code = "import numpy as np\nx = np.random.uniform(0, 1)\n"
        assert "unseeded-rng" in names(code)

    def test_from_import_alias_flagged(self):
        code = ("from numpy.random import default_rng\n"
                "r = default_rng()\n")
        assert "unseeded-rng" in names(code)

    def test_not_applied_outside_sim_scope(self):
        code = "import numpy as np\nr = np.random.default_rng()\n"
        assert names(code, package="analysis") == []


class TestBareRandom:
    def test_import_random_flagged(self):
        assert "bare-random" in names("import random\n")

    def test_from_random_import_flagged(self):
        assert "bare-random" in names("from random import choice\n")

    def test_other_module_clean(self):
        assert names("import itertools\n") == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert "wall-clock" in names("import time\nt = time.time()\n")

    def test_monotonic_flagged(self):
        assert "wall-clock" in names(
            "import time\nt = time.monotonic()\n"
        )

    def test_datetime_now_flagged(self):
        code = "import datetime\nt = datetime.datetime.now()\n"
        assert "wall-clock" in names(code)

    def test_from_datetime_import_now_call_flagged(self):
        code = ("from datetime import datetime\n"
                "t = datetime.now()\n")
        assert "wall-clock" in names(code)

    def test_from_time_import_flagged(self):
        assert "wall-clock" in names("from time import monotonic\n")

    def test_time_sleep_clean(self):
        assert names("import time\ntime.sleep(1)\n") == []


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        assert "set-iteration" in names(
            "for x in set(items):\n    go(x)\n"
        )

    def test_for_over_set_literal_flagged(self):
        assert "set-iteration" in names(
            "for x in {1, 2, 3}:\n    go(x)\n"
        )

    def test_comprehension_over_frozenset_flagged(self):
        assert "set-iteration" in names(
            "out = [f(x) for x in frozenset(items)]\n"
        )

    def test_sorted_set_clean(self):
        assert names("for x in sorted(set(items)):\n    go(x)\n") == []

    def test_list_iteration_clean(self):
        assert names("for x in [1, 2]:\n    go(x)\n") == []


class TestTimestampEq:
    def test_now_equality_flagged(self):
        assert "float-timestamp-eq" in names(
            "if sched.now == deadline:\n    pass\n"
        )

    def test_suffix_attribute_flagged(self):
        assert "float-timestamp-eq" in names(
            "ok = entry.last_heard == stamp\n"
        )

    def test_ordering_comparison_clean(self):
        assert names("ok = sched.now < deadline\n") == []

    def test_string_comparison_clean(self):
        # 'format' membership: attr names ending _at vs str constants.
        assert names("ok = record.created_at == 'never'\n") == []

    def test_applies_everywhere(self):
        code = "ok = a.when != b.when\n"
        assert "float-timestamp-eq" in names(code, package="analysis")


class TestMutableDefault:
    def test_list_default_flagged(self):
        assert "mutable-default" in names("def f(xs=[]):\n    pass\n")

    def test_dict_call_default_flagged(self):
        assert "mutable-default" in names(
            "def f(xs=dict()):\n    pass\n"
        )

    def test_kwonly_default_flagged(self):
        assert "mutable-default" in names(
            "def f(*, xs={}):\n    pass\n"
        )

    def test_none_default_clean(self):
        assert names("def f(xs=None):\n    pass\n") == []

    def test_tuple_default_clean(self):
        assert names("def f(xs=()):\n    pass\n") == []


class TestNegativeDelay:
    def test_negative_literal_flagged(self):
        assert "negative-delay" in names("sched.schedule(-1.0, cb)\n")

    def test_positive_literal_clean(self):
        findings = names("h = sched.schedule(1.0, cb)\n")
        assert "negative-delay" not in findings


class TestDiscardedHandle:
    def test_bare_schedule_statement_flagged(self):
        assert "discarded-handle" in names("sched.schedule(1.0, cb)\n")

    def test_bare_schedule_at_flagged(self):
        assert "discarded-handle" in names(
            "self.scheduler.schedule_at(5.0, cb)\n"
        )

    def test_stored_handle_clean(self):
        assert names("h = sched.schedule(1.0, cb)\n") == []

    def test_not_applied_outside_sim_scope(self):
        assert names("sched.schedule(1.0, cb)\n",
                     package="lint") == []


class TestModuleMutableState:
    def test_module_dict_flagged_in_sim(self):
        assert "module-mutable-state" in names("CACHE = {}\n",
                                               package="sim")

    def test_module_list_flagged_in_core(self):
        assert "module-mutable-state" in names("SEEN = []\n",
                                               package="core")

    def test_dunder_all_exempt(self):
        assert names("__all__ = ['a', 'b']\n", package="sim") == []

    def test_tuple_constant_clean(self):
        assert names("BANDS = (1, 2, 3)\n", package="sim") == []

    def test_not_applied_in_sap(self):
        assert names("CACHE = {}\n", package="sap") == []

    def test_function_local_clean(self):
        assert names("def f():\n    cache = {}\n    return cache\n",
                     package="sim") == []


class TestBuiltinHash:
    def test_hash_call_flagged(self):
        assert "builtin-hash" in names("key = hash(name)\n")

    def test_crc32_clean(self):
        assert names(
            "import zlib\nkey = zlib.crc32(name.encode())\n"
        ) == []


class TestTtlWidening:
    def test_ttl_plus_constant_flagged(self):
        assert "ttl-widening" in names("wide = ttl + 1\n")

    def test_constant_plus_attribute_ttl_flagged(self):
        assert "ttl-widening" in names("wide = 2 + packet.ttl\n")

    def test_ttl_times_constant_flagged(self):
        assert "ttl-widening" in names("wide = session_ttl * 2\n")

    def test_ttl_decrement_clean(self):
        assert names("narrow = packet.ttl - 1\n") == []

    def test_ttl_times_one_clean(self):
        assert names("same = ttl * 1\n") == []

    def test_ttl_plus_variable_clean(self):
        # Only constant widening is statically decidable.
        assert names("maybe = ttl + margin\n") == []

    def test_unrelated_name_clean(self):
        assert names("total = count + 1\n") == []

    def test_not_applied_outside_sim_scope(self):
        assert names("wide = ttl + 1\n", package="analysis") == []


class TestAddressTtlConfusion:
    def test_address_passed_as_ttl_kwarg_flagged(self):
        assert "address-ttl-confusion" in names(
            "pkt = Packet(source=0, ttl=address, payload=b'x')\n"
        )

    def test_address_index_attribute_as_ttl_flagged(self):
        assert "address-ttl-confusion" in names(
            "send(ttl=entry.address_index)\n"
        )

    def test_ttl_passed_as_address_kwarg_flagged(self):
        assert "address-ttl-confusion" in names(
            "observe(message, address_index=session_ttl)\n"
        )

    def test_ttl_first_arg_to_index_to_ip_flagged(self):
        assert "address-ttl-confusion" in names(
            "ip = space.index_to_ip(ttl)\n"
        )

    def test_correct_kwargs_clean(self):
        assert names(
            "pkt = Packet(source=0, ttl=ttl, payload=b'x')\n"
        ) == []

    def test_address_to_index_to_ip_clean(self):
        assert names("ip = space.index_to_ip(address)\n") == []


class TestUninformedAllocateOverride:
    def test_override_ignoring_visible_flagged(self):
        code = (
            "class BadAllocator(Allocator):\n"
            "    def allocate(self, ttl, visible):\n"
            "        return AllocationResult(7, None, True, False)\n"
        )
        assert "uninformed-allocate-override" in names(code)

    def test_informed_pick_delegation_clean(self):
        code = (
            "class GoodAllocator(Allocator):\n"
            "    def allocate(self, ttl, visible):\n"
            "        return self._informed_pick(visible, 0, self.n)\n"
        )
        assert names(code) == []

    def test_delegating_to_inner_allocate_clean(self):
        code = (
            "class WrapAllocator(Allocator):\n"
            "    def allocate(self, ttl, visible):\n"
            "        return self.inner.allocate(ttl, visible)\n"
        )
        assert names(code) == []

    def test_explicit_informed_false_clean(self):
        # Deliberately uninformed allocators opt out in the result.
        code = (
            "class Randomish(Allocator):\n"
            "    def allocate(self, ttl, visible):\n"
            "        return AllocationResult(7, band=None,\n"
            "                                informed=False,\n"
            "                                forced=False)\n"
        )
        assert names(code) == []

    def test_non_allocator_class_clean(self):
        code = (
            "class Planner:\n"
            "    def allocate(self, ttl, visible):\n"
            "        return 7\n"
        )
        assert names(code) == []


class TestLoopCapture:
    def test_loop_var_captured_by_reference_flagged(self):
        code = (
            "for node in nodes:\n"
            "    sched.schedule(  # simlint: disable=discarded-handle\n"
            "        1.0, lambda: deliver(node))\n"
        )
        assert "loop-capture" in names(code)

    def test_tuple_target_captured_flagged(self):
        code = (
            "for node, delay in pairs:\n"
            "    h = sched.schedule_at(delay, lambda: go(node))\n"
        )
        assert "loop-capture" in names(code)

    def test_default_binding_clean(self):
        code = (
            "for node in nodes:\n"
            "    h = sched.schedule(1.0, lambda n=node: deliver(n))\n"
        )
        assert names(code) == []

    def test_lambda_not_using_loop_var_clean(self):
        code = (
            "for node in nodes:\n"
            "    h = sched.schedule(1.0, lambda: tick())\n"
        )
        assert names(code) == []

    def test_lambda_outside_loop_clean(self):
        assert names("h = sched.schedule(1.0, lambda: go(node))\n") == []

    def test_non_schedule_call_clean(self):
        code = (
            "for node in nodes:\n"
            "    out.append(lambda: deliver(node))\n"
        )
        assert names(code) == []


class TestSuppressions:
    def test_line_suppression(self):
        code = ("import numpy as np\n"
                "r = np.random.default_rng()"
                "  # simlint: disable=unseeded-rng\n")
        assert lint_source(code, package="sim") == []

    def test_line_suppression_wrong_rule_does_not_apply(self):
        code = ("import numpy as np\n"
                "r = np.random.default_rng()"
                "  # simlint: disable=wall-clock\n")
        assert names(code) == ["unseeded-rng"]

    def test_bare_disable_suppresses_everything_on_line(self):
        code = "key = hash(name)  # simlint: disable\n"
        assert lint_source(code, package="sim") == []

    def test_file_wide_suppression(self):
        code = ("# simlint: disable-file=builtin-hash\n"
                "key = hash(name)\n"
                "other = hash(thing)\n")
        assert lint_source(code, package="sim") == []

    def test_multiline_statement_suppressed_at_first_line(self):
        code = ("sched.schedule(  # simlint: disable=discarded-handle\n"
                "    1.0, cb\n"
                ")\n")
        assert lint_source(code, package="sim") == []

    def test_parse_suppressions_multiple_rules(self):
        sup = parse_suppressions(
            "x = 1  # simlint: disable=rule-a, rule-b\n"
        )
        assert sup.suppressed(1, "rule-a")
        assert sup.suppressed(1, "rule-b")
        assert not sup.suppressed(1, "rule-c")
        assert not sup.suppressed(2, "rule-a")


class TestEngine:
    def test_syntax_error_reported_as_finding(self):
        findings = lint_source("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"
        assert findings[0].code == "SIM000"

    def test_package_of(self):
        assert package_of("src/repro/sim/rng.py") == "sim"
        assert package_of("src/repro/cli.py") == ""
        assert package_of("/tmp/scratch.py") is None

    def test_unknown_package_gets_full_rule_set(self):
        code = "import numpy as np\nr = np.random.default_rng()\n"
        findings = lint_source(code, path="/tmp/anything.py")
        assert [f.rule for f in findings] == ["unseeded-rng"]

    def test_findings_sorted_by_position(self):
        code = ("key = hash(b)\n"
                "other = hash(a)\n")
        findings = lint_source(code, package="sim")
        assert [f.line for f in findings] == [1, 2]

    def test_get_rules_select_and_ignore(self):
        only = get_rules(select=["builtin-hash"])
        assert [r.name for r in only] == ["builtin-hash"]
        rest = get_rules(ignore=["builtin-hash"])
        assert "builtin-hash" not in [r.name for r in rest]

    def test_get_rules_unknown_name_raises(self):
        try:
            get_rules(select=["no-such-rule"])
        except ValueError as exc:
            assert "no-such-rule" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_registry_codes_unique_and_scoped(self):
        codes = [r.code for r in ALL_RULES]
        assert len(codes) == len(set(codes))
        assert len(ALL_RULES) == 14
        for rule in ALL_RULES:
            assert rule.scope is None or rule.scope <= SIM_PACKAGES


class TestReporters:
    def test_text_clean_summary(self):
        assert "clean" in render_text([])

    def test_text_lists_findings_with_locations(self):
        finding = Finding(path="x.py", line=3, col=4, code="SIM110",
                          rule="builtin-hash", message="no hash()")
        text = render_text([finding])
        assert "x.py:3:4" in text
        assert "SIM110" in text
        assert "1 finding" in text

    def test_json_round_trips(self):
        finding = Finding(path="x.py", line=3, col=4, code="SIM110",
                          rule="builtin-hash", message="no hash()")
        data = json.loads(render_json([finding]))
        assert data["count"] == 1
        assert data["findings"][0]["rule"] == "builtin-hash"
