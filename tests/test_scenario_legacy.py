"""The four legacy harnesses as committed ScenarioSpec fixtures.

Each hand-coded scenario the repo grew before ``repro.scenario``
existed — the lint determinism kernel, the SAP-in-the-loop clash
harness, the obs steady mesh and the fleet chaos drill — must be
expressible as a declarative spec whose engine run reproduces the
original harness **byte for byte**.  The expected traces here are
rebuilt from direct legacy invocations, so a drift in either the
engine dispatch or the harness itself fails the comparison.
"""

import json
from pathlib import Path

import pytest

from repro.scenario.engine import run_spec
from repro.scenario.spec import ScenarioSpec

FIXTURES = Path(__file__).resolve().parents[1] / "examples" / "scenarios"

SEED = 1998


def load_fixture(name):
    with open(FIXTURES / f"{name}.json", "r", encoding="utf-8") as fh:
        return ScenarioSpec.from_dict(json.load(fh))


def header(spec, seed):
    return (f"# scenario {spec.name} kind={spec.kind} "
            f"digest={spec.digest()} seed={seed}")


class TestFixturesRoundTrip:
    @pytest.mark.parametrize("name", ["kernel", "clash", "steady",
                                      "chaos"])
    def test_fixture_loads_validates_and_round_trips(self, name):
        spec = load_fixture(name)
        spec.validate()
        assert spec.kind == name
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()


class TestKernel:
    def test_engine_trace_is_the_lint_kernel_trace(self):
        from repro.lint.determinism import run_scenario as kernel

        spec = load_fixture("kernel")
        run = run_spec(spec, SEED)
        expected = kernel(seed=SEED, num_sites=6,
                          sessions_per_site=3, space_size=12,
                          horizon=240.0)
        assert run.trace == expected
        assert run.sessions_created == 18


class TestClash:
    def test_engine_trace_matches_sap_in_the_loop(self):
        from repro.experiments.sap_in_the_loop import (
            SapLoopConfig,
            run_sap_in_the_loop,
        )
        from repro.routing.scoping import ScopeMap
        from repro.topology.mbone import MboneParams, generate_mbone

        spec = load_fixture("clash")
        run = run_spec(spec, SEED)

        topology = generate_mbone(
            MboneParams(total_nodes=60, seed=SEED))
        result = run_sap_in_the_loop(
            topology, ScopeMap.from_topology(topology),
            SapLoopConfig(num_directories=8, sessions_per_directory=3,
                          space_size=64, loss=0.02,
                          strategy="backoff", inter_arrival=5.0,
                          settle_time=300.0, seed=SEED),
        )
        expected = (
            f"{header(spec, SEED)}\n"
            f"sap-loop: allocations={result.allocations} "
            f"clash_pairs={result.residual_clashing_pairs} "
            f"moves={result.address_changes} "
            f"sent={result.announcements_sent} "
            f"lost={result.announcements_lost} "
            f"clash_rate={result.clash_rate:.6f}\n"
        )
        assert run.trace == expected


class TestSteady:
    def test_engine_trace_matches_obs_steady_mesh(self):
        from repro.experiments.world import mesh_clashing_pairs
        from repro.obs.scenarios import build_steady

        spec = load_fixture("steady")
        run = run_spec(spec, SEED)

        scheduler, directories = build_steady(
            SEED, None, num_sites=8, space_size=16,
            sessions_per_site=6, horizon=600.0)
        scheduler.run(until=600.0)

        lines = [header(spec, SEED)]
        for directory in directories:
            lines.append(
                f"site {directory.node}: "
                f"own={len(directory.own_sessions())} "
                f"cached={len(directory.cache)} "
                f"moves={directory.address_changes} "
                f"recv={directory.announcements_received}"
            )
        live = [own.session for directory in directories
                for own in directory.own_sessions()]
        lines.append(f"clash-pairs={len(mesh_clashing_pairs(live))}")
        lines.append(f"clock: now={scheduler.now:.6f} "
                     f"events={scheduler.events_run}")
        assert run.trace == "\n".join(lines) + "\n"
        assert run.clean


class TestChaos:
    def test_engine_trace_matches_fleet_chaos_drill(self):
        from repro.fleet.runner import run_sweep
        from repro.fleet.sweeps import build_sweep

        spec = load_fixture("chaos")
        run = run_spec(spec, SEED)

        result = run_sweep(build_sweep("chaos", seed=SEED, shards=4),
                           jobs=1)
        lines = [header(spec, SEED), result.aggregate_json()]
        lines.extend(
            f"{issue.code} [{issue.rule}] shard={issue.shard}"
            for issue in result.issues
        )
        assert run.trace == "\n".join(lines) + "\n"
        # The drill injects faults by design; its diagnostics are the
        # product, not scenario violations.
        assert run.violations == []
