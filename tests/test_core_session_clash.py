"""Session and clash-detection tests."""

import pytest

from repro.core.clash import (
    AddressUsageIndex,
    clashes_with_any,
    find_clashing_pairs,
    sessions_clash,
)
from repro.core.session import Session


class TestSession:
    def test_auto_ids_unique(self):
        a = Session(address=1, ttl=15, source=0)
        b = Session(address=1, ttl=15, source=0)
        assert a.session_id != b.session_id
        assert a.key() != b.key()

    def test_explicit_id_kept(self):
        s = Session(address=1, ttl=15, source=0, session_id=77)
        assert s.session_id == 77

    def test_ttl_validated(self):
        with pytest.raises(ValueError):
            Session(address=1, ttl=0, source=0)
        with pytest.raises(ValueError):
            Session(address=1, ttl=300, source=0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Session(address=-1, ttl=15, source=0)

    def test_expiry(self):
        s = Session(address=1, ttl=15, source=0, created_at=100.0,
                    lifetime=50.0)
        assert s.expires_at() == 150.0
        assert Session(address=1, ttl=15, source=0).expires_at() is None


class TestClashDetection:
    """Uses the chain fixture: need[0]=[0,2,18,18,68]."""

    def test_same_address_overlapping_scopes_clash(self, chain_scope_map):
        a = Session(address=7, ttl=18, source=0)
        b = Session(address=7, ttl=18, source=3)
        assert sessions_clash(a, b, chain_scope_map)

    def test_different_address_never_clashes(self, chain_scope_map):
        a = Session(address=7, ttl=18, source=0)
        b = Session(address=8, ttl=18, source=0)
        assert not sessions_clash(a, b, chain_scope_map)

    def test_disjoint_scopes_no_clash(self, chain_scope_map):
        # 0@ttl2 reaches {0,1}; 4@ttl64 reaches {4} only.
        a = Session(address=7, ttl=2, source=0)
        b = Session(address=7, ttl=64, source=4)
        assert not sessions_clash(a, b, chain_scope_map)

    def test_asymmetric_invasion_clash(self, chain_scope_map):
        """The TTL-scoping hazard: 4@65 floods everywhere, clashing
        with a local session it can never hear about."""
        local = Session(address=7, ttl=2, source=0)
        invader = Session(address=7, ttl=65, source=4)
        assert sessions_clash(local, invader, chain_scope_map)
        # ...even though the local announcement never reaches node 4:
        assert not chain_scope_map.can_hear(4, 0, 2)

    def test_clashes_with_any(self, chain_scope_map):
        new = Session(address=7, ttl=18, source=2)
        existing = [Session(address=7, ttl=2, source=0),
                    Session(address=9, ttl=18, source=3)]
        assert clashes_with_any(new, existing, chain_scope_map)
        assert not clashes_with_any(
            Session(address=11, ttl=18, source=2), existing,
            chain_scope_map,
        )

    def test_find_clashing_pairs(self, chain_scope_map):
        sessions = [
            Session(address=7, ttl=18, source=0),   # 0
            Session(address=7, ttl=18, source=1),   # 1 clashes with 0
            Session(address=7, ttl=64, source=4),   # 2 reaches only {4}
            Session(address=5, ttl=18, source=0),   # 3 different addr
        ]
        pairs = find_clashing_pairs(sessions, chain_scope_map)
        assert pairs == [(0, 1)]


class TestAddressUsageIndex:
    def test_add_remove_cycle(self, chain_scope_map):
        index = AddressUsageIndex()
        s = Session(address=3, ttl=18, source=0)
        index.add(s)
        assert len(index) == 1
        assert index.same_address(3) == [s]
        index.remove(s)
        assert len(index) == 0
        assert index.same_address(3) == []

    def test_remove_missing_raises(self):
        index = AddressUsageIndex()
        with pytest.raises(KeyError):
            index.remove(Session(address=3, ttl=18, source=0))

    def test_clash_for(self, chain_scope_map):
        index = AddressUsageIndex()
        index.add(Session(address=3, ttl=18, source=0))
        clasher = Session(address=3, ttl=18, source=1)
        clean = Session(address=4, ttl=18, source=1)
        assert index.clash_for(clasher, chain_scope_map)
        assert not index.clash_for(clean, chain_scope_map)

    def test_multiple_same_address(self, chain_scope_map):
        index = AddressUsageIndex()
        a = Session(address=3, ttl=2, source=0)
        b = Session(address=3, ttl=64, source=4)
        index.add(a)
        index.add(b)
        assert len(index.same_address(3)) == 2
        index.remove(a)
        assert index.same_address(3) == [b]
