"""Deliberately broken ClashHandler for the MC301–MC304 tests.

This file is *not* imported anywhere; it exists so the spec
cross-check rules can be exercised against a handler with known
defects (the rules key off the class name, so the machine contract
follows ``ClashHandler`` into this fixture):

* ``_fire_defence`` and ``cancel_all`` were deleted → MC301.
* ``on_announcement`` allocates (not in its allowed set) and arms a
  timer for an undeclared target → MC302 twice.
* ``on_timeout`` is handler-shaped but undeclared → MC303.
* ``on_announcement`` lost its retreat branch → MC304.
"""


class ClashHandler:
    def __init__(self, directory):
        self.directory = directory
        self.scheduler = directory.scheduler

    def on_announcement(self, entry):
        self.directory.allocator.allocate(15, None)
        self.directory.defend(entry)
        self._pending = self.scheduler.schedule(3.0, self._check_later)

    def _check_later(self):
        pass

    def on_timeout(self, entry):
        pass
