"""Seeded-defect tests: every SCN9xx rule must catch its scenario.

Same shape as the modelcheck/flow mutation suites: for each rule a
*violating* spec that fires it and a minimally-different *clean twin*
that does not, all at one pinned seed.  This is the evidence the
monitor detects what it claims to detect — not merely that quiet
scenarios happen to stay quiet.

The suite closes with the shrinker proof: a violating spec drawn from
the fuzz generator must delta-debug down to at most three active
fields while still reproducing its violation.
"""

import dataclasses

from repro.scenario.cache import RunCache, run_key
from repro.scenario.engine import run_spec
from repro.scenario.fuzz import run_fuzz, run_row, spec_for_run
from repro.scenario.shrink import shrink_spec
from repro.scenario.spec import (
    ArrivalSpec,
    PersonaAssignment,
    ScenarioSpec,
    TopologySpec,
    active_fields,
)

SEED = 0x19980902
BUDGET = 40_000


def codes_of(spec, max_events=BUDGET):
    return set(run_spec(spec, SEED, max_events=max_events).codes())


class TestScn901PartitionHealDoubleClaim:
    VIOLATING = ScenarioSpec(
        name="scn901",
        topology=TopologySpec(partition_storms=2),
        space_size=8,
    )

    def test_partition_storms_leave_a_double_claim(self):
        assert "SCN901" in codes_of(self.VIOLATING)

    def test_twin_without_storms_is_silent(self):
        twin = dataclasses.replace(
            self.VIOLATING,
            topology=TopologySpec(partition_storms=0),
        )
        assert "SCN901" not in codes_of(twin)


class TestScn902FlashCrowdStarvation:
    VIOLATING = ScenarioSpec(
        name="scn902",
        arrival=ArrivalSpec(process="flash-crowd", rate=0.08),
        personas=(PersonaAssignment(0, "always-defends"),),
        space_size=8,
        starvation_moves=24,
    )

    def test_flash_crowd_starves_an_honest_site(self):
        assert "SCN902" in codes_of(self.VIOLATING)

    def test_twin_with_poisson_arrivals_is_silent(self):
        twin = dataclasses.replace(
            self.VIOLATING,
            arrival=ArrivalSpec(process="poisson", rate=0.08),
        )
        assert "SCN902" not in codes_of(twin)


class TestScn903TtlLiarAcceptance:
    VIOLATING = ScenarioSpec(
        name="scn903",
        personas=(PersonaAssignment(0, "ttl-liar"),),
    )

    def test_honest_caches_accept_the_exaggerated_scope(self):
        assert "SCN903" in codes_of(self.VIOLATING)

    def test_twin_without_the_liar_is_silent(self):
        twin = dataclasses.replace(self.VIOLATING, personas=())
        assert "SCN903" not in codes_of(twin)


class TestScn904MisbehaverResidualClash:
    VIOLATING = ScenarioSpec(
        name="scn904",
        personas=(PersonaAssignment(1, "deaf-after-claim"),),
        space_size=6,
    )

    def test_deaf_claimant_leaves_a_residual_clash(self):
        assert "SCN904" in codes_of(self.VIOLATING)

    def test_twin_without_the_persona_is_silent(self):
        twin = dataclasses.replace(self.VIOLATING, personas=())
        assert "SCN904" not in codes_of(twin)


class TestScn905ChurnedGhostEntry:
    VIOLATING = ScenarioSpec(
        name="scn905",
        topology=TopologySpec(churn_events=4, churn_downtime=150.0),
        cache_timeout=90.0,
    )

    def test_churned_claims_outlive_the_cache_timeout(self):
        assert "SCN905" in codes_of(self.VIOLATING)

    def test_twin_with_ample_timeout_is_silent(self):
        twin = dataclasses.replace(self.VIOLATING,
                                   cache_timeout=3600.0)
        assert "SCN905" not in codes_of(twin)


class TestScn911EventBudget:
    def test_tiny_budget_truncates_with_the_advisory(self):
        run = run_spec(ScenarioSpec(name="scn911"), SEED,
                       max_events=300)
        assert "SCN911" in run.codes()
        assert not run.horizon_reached
        # Advisory: a truncated-but-quiet run still counts as clean.
        assert run.clean

    def test_ample_budget_reaches_the_horizon(self):
        run = run_spec(ScenarioSpec(name="scn911"), SEED,
                       max_events=BUDGET)
        assert "SCN911" not in run.codes()
        assert run.horizon_reached


class TestScn912ReplayMismatch:
    def _poisoned_cache(self, tmp_path):
        """A cache whose run-0 row lies about the trace hash."""
        row = run_row(0, SEED, BUDGET)
        assert not row["clean"]  # run 0 violates at this seed
        cache = RunCache(str(tmp_path / "cache.json"))
        poisoned = dict(row)
        poisoned.pop("index")
        poisoned["trace_sha256"] = "0" * 64
        cache.put(run_key(row["digest"], SEED, BUDGET), poisoned)
        return cache

    def test_poisoned_cache_row_fails_replay(self, tmp_path):
        report = run_fuzz(SEED, runs=1, max_events=BUDGET,
                          shrink=False,
                          cache=self._poisoned_cache(tmp_path))
        assert not report.machinery_ok
        assert report.replay_failures[0]["code"] == "SCN912"
        assert report.counterexamples == []

    def test_honest_cache_replays_clean(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache.json"))
        report = run_fuzz(SEED, runs=1, max_events=BUDGET,
                          shrink=False, cache=cache)
        assert report.machinery_ok
        assert report.counterexamples


class TestShrinker:
    def test_seeded_violation_minimizes_to_three_fields_or_fewer(self):
        spec = spec_for_run(0, SEED)
        row = run_row(0, SEED, BUDGET)
        hard = frozenset(c for c in row["codes"] if c != "SCN911")
        assert hard  # the campaign's first run violates at this seed
        assert len(active_fields(spec)) > 3  # sampled specs are busy

        result = shrink_spec(spec, SEED, hard, max_events=BUDGET,
                             budget=48)
        assert len(result.active) <= 3
        assert result.codes  # still reproduces a target code
        # The minimized spec reproduces from its JSON round trip too.
        again = ScenarioSpec.from_json(result.spec.to_json())
        assert hard & set(
            run_spec(again, SEED, max_events=BUDGET).codes()
        )
