"""SDP-lite parse/format tests."""

import pytest
from hypothesis import given, strategies as st

from repro.sap.sdp import MediaStream, SessionDescription

SAMPLE = """v=0
o=mjh 3472 1 IN IP4 224.2.130.9
s=ISI seminar
i=Weekly systems seminar
t=3086100000 3086107200
c=IN IP4 224.2.130.9/127
a=tool:sdr-repro
m=audio 49170 RTP/AVP 0
m=video 51372 RTP/AVP 31
"""


class TestMediaStream:
    def test_format_line(self):
        stream = MediaStream("audio", 49170)
        assert stream.format_line() == "m=audio 49170 RTP/AVP 0"

    def test_validation(self):
        with pytest.raises(ValueError):
            MediaStream("", 49170)
        with pytest.raises(ValueError):
            MediaStream("audio", 0)
        with pytest.raises(ValueError):
            MediaStream("audio", 70_000)


class TestParse:
    def test_sample_fields(self):
        desc = SessionDescription.parse(SAMPLE)
        assert desc.name == "ISI seminar"
        assert desc.username == "mjh"
        assert desc.session_id == 3472
        assert desc.version == 1
        assert desc.connection_address == "224.2.130.9"
        assert desc.ttl == 127
        assert desc.info == "Weekly systems seminar"
        assert desc.start == 3086100000
        assert desc.attributes == ["tool:sdr-repro"]
        assert len(desc.media) == 2
        assert desc.media[1].media == "video"
        assert desc.media[1].fmt == "31"

    def test_roundtrip(self):
        desc = SessionDescription.parse(SAMPLE)
        again = SessionDescription.parse(desc.format())
        assert again == desc

    def test_format_then_parse_minimal(self):
        desc = SessionDescription(name="test")
        assert SessionDescription.parse(desc.format()) == desc

    def test_connection_without_ttl(self):
        desc = SessionDescription.parse(
            "v=0\ns=x\nc=IN IP4 224.9.9.9\n"
        )
        assert desc.connection_address == "224.9.9.9"
        assert desc.ttl == 127  # default preserved

    def test_unknown_lines_ignored(self):
        desc = SessionDescription.parse("v=0\ns=x\nz=whatever\n")
        assert desc.name == "x"

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError):
            SessionDescription.parse("v=0\nt=0 0\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            SessionDescription.parse("v=0\ns=x\nnonsense\n")

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            SessionDescription.parse("v=1\ns=x\n")

    def test_bad_origin_rejected(self):
        with pytest.raises(ValueError):
            SessionDescription.parse("v=0\no=u 1 1\ns=x\n")

    def test_bad_timing_rejected(self):
        with pytest.raises(ValueError):
            SessionDescription.parse("v=0\ns=x\nt=12\n")

    def test_bad_media_rejected(self):
        with pytest.raises(ValueError):
            SessionDescription.parse("v=0\ns=x\nm=audio 49170\n")

    def test_origin_key(self):
        desc = SessionDescription.parse(SAMPLE)
        assert desc.origin_key() == ("mjh", 3472)

    def test_validation_on_construction(self):
        with pytest.raises(ValueError):
            SessionDescription(name="")
        with pytest.raises(ValueError):
            SessionDescription(name="x", ttl=0)

    @given(
        name=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=20,
        ),
        ttl=st.integers(1, 255),
        session_id=st.integers(0, 10 ** 9),
        port=st.integers(1, 65_535),
    )
    def test_property_roundtrip(self, name, ttl, session_id, port):
        desc = SessionDescription(
            name=name, session_id=session_id, ttl=ttl,
            media=[MediaStream("audio", port)],
        )
        assert SessionDescription.parse(desc.format()) == desc
