"""ProtocolHarness: explorable worlds, replay, snapshot/restore."""

import pytest

from repro.modelcheck.harness import (
    MUTATIONS,
    ProtocolHarness,
    Snapshot,
)
from repro.modelcheck.scenarios import get_scenario, scenario_names


def _run_prefix(harness, steps):
    """Execute the first enabled action ``steps`` times."""
    for _ in range(steps):
        actions = harness.enabled_actions()
        assert actions, "world quiesced before the prefix completed"
        harness.execute(actions[0])
    return harness


class TestConstruction:
    def test_smoke_setup_is_clean_and_live(self):
        harness = ProtocolHarness(get_scenario("smoke"))
        assert len(harness.directories) == 2
        assert harness.violations == []
        assert harness.losses_used == 0
        # The newcomer's announcement is still in flight.
        assert not harness.quiescent()
        assert harness.enabled_actions()

    def test_every_scenario_constructs_clean(self):
        for name in scenario_names():
            harness = ProtocolHarness(get_scenario(name))
            assert harness.violations == [], name

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            ProtocolHarness(get_scenario("smoke"), mutation="nope")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("definitely-not-a-scenario")

    def test_mutations_registry(self):
        assert MUTATIONS == ("ghost-resurrection", "defend-off-by-one")


class TestDeterministicReplay:
    def test_same_trace_same_fingerprint(self):
        scenario = get_scenario("smoke")
        first = _run_prefix(ProtocolHarness(scenario), 4)
        second = ProtocolHarness(scenario)
        for action in first.trace:
            second.execute(action)
        assert first.fingerprint() == second.fingerprint()

    def test_enabled_actions_are_stable(self):
        harness = ProtocolHarness(get_scenario("smoke"))
        assert harness.enabled_actions() == harness.enabled_actions()

    def test_snapshot_restore_round_trip(self):
        scenario = get_scenario("smoke")
        harness = _run_prefix(ProtocolHarness(scenario), 3)
        snapshot = harness.snapshot()
        assert isinstance(snapshot, Snapshot)
        restored = ProtocolHarness.restore(scenario, snapshot)
        assert tuple(restored.trace) == tuple(harness.trace)
        assert restored.fingerprint() == snapshot.fingerprint

    def test_restore_detects_divergence(self):
        scenario = get_scenario("smoke")
        harness = _run_prefix(ProtocolHarness(scenario), 2)
        forged = Snapshot(trace=tuple(harness.trace),
                          fingerprint="not-the-real-fingerprint")
        with pytest.raises(RuntimeError, match="diverge"):
            ProtocolHarness.restore(scenario, forged)

    def test_execute_records_labels(self):
        harness = _run_prefix(ProtocolHarness(get_scenario("smoke")), 3)
        assert len(harness.trace) == 3
        assert len(harness.trace_labels) == 3
        assert all(isinstance(label, str) and label
                   for label in harness.trace_labels)


class TestExplorationSurface:
    def test_loss_budget_limits_drops(self):
        harness = ProtocolHarness(get_scenario("smoke"))
        drops = [a for a in harness.enabled_actions()
                 if a[0] == "drop"]
        assert drops, "a live message should be droppable"
        harness.execute(drops[0])
        assert harness.losses_used == 1
        # Budget is 1: no further drops may be offered, ever.
        assert not any(a[0] == "drop"
                       for a in harness.enabled_actions())

    def test_first_fit_exhaustion_forces(self):
        harness = ProtocolHarness(get_scenario("smoke"))
        allocator = harness.directories[0].allocator
        harness.create(0, "second")
        assert allocator.forced_allocations == 0
        harness.create(0, "third")  # space of 2 is now exhausted
        assert allocator.forced_allocations == 1
