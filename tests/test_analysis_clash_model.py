"""Eq. 1 / fig. 6 model tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.clash_model import (
    allocations_before_half,
    fig6_series,
    iprma_concurrent_sessions,
    no_clash_probability,
    single_allocation_no_clash,
)


class TestEquationOne:
    def test_no_invisible_no_clash(self):
        assert single_allocation_no_clash(100, 50, 0) == 1.0
        assert no_clash_probability(100, 50, 0) == 1.0

    def test_full_partition_certain_clash(self):
        assert single_allocation_no_clash(100, 100, 1) == 0.0
        assert no_clash_probability(100, 100, 1) == 0.0

    def test_hand_computed_value(self):
        # c = (100-50)/(100+5-50) = 50/55
        assert single_allocation_no_clash(100, 50, 5) == pytest.approx(
            50 / 55
        )
        assert no_clash_probability(100, 50, 5) == pytest.approx(
            (50 / 55) ** 50
        )

    def test_zero_sessions(self):
        assert no_clash_probability(100, 0, 0) == 1.0

    def test_monotone_in_m(self):
        values = [no_clash_probability(1000, m, 0.001 * m)
                  for m in range(0, 1000, 50)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_monotone_in_i(self):
        values = [no_clash_probability(1000, 500, i)
                  for i in (0, 1, 5, 20, 100)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            no_clash_probability(0, 1, 1)
        with pytest.raises(ValueError):
            no_clash_probability(10, -1, 0)


class TestFig6:
    def test_paper_headline_number(self):
        """§2.3: ~16,496 concurrent sessions for 65,536/8 at i=0.001m.

        Our exact evaluation gives 16,488 (paper rounds slightly
        differently); assert within 0.5%.
        """
        value = iprma_concurrent_sessions()
        assert abs(value - 16_496) / 16_496 < 0.005

    def test_boundary_crossing(self):
        m = allocations_before_half(8192, 0.001)
        assert no_clash_probability(8192, m, 0.001 * m) >= 0.5
        assert no_clash_probability(8192, m + 1, 0.001 * (m + 1)) < 0.5

    def test_smaller_i_allocates_more(self):
        curves = fig6_series([1000, 10_000])
        assert curves[0.00001][0] > curves[0.0001][0] > \
            curves[0.001][0] > curves[0.01][0]

    def test_between_sqrt_and_linear_bounds(self):
        """Fig. 6 plots y=x and y=sqrt(x) as the bounding curves."""
        for n in (100, 1000, 10_000, 100_000):
            for frac in (0.01, 0.001, 0.0001):
                m = allocations_before_half(n, frac)
                assert m <= n
                # With any invisibility, packing beats the pure
                # birthday floor but the bound sqrt(n) only holds as a
                # *lower* reference at small i; assert >= 0.3*sqrt(n).
                assert m >= 0.3 * math.sqrt(n)

    def test_packing_fraction_degrades_with_size(self):
        """'address space packing is good for small partitions, but
        gets worse as the size of the partition increases'."""
        frac_small = allocations_before_half(100, 0.001) / 100
        frac_large = allocations_before_half(100_000, 0.001) / 100_000
        assert frac_small > frac_large

    def test_perfect_information_linear(self):
        assert allocations_before_half(1000, 0.0) == 999

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            allocations_before_half(0, 0.001)
        with pytest.raises(ValueError):
            allocations_before_half(100, -0.1)
