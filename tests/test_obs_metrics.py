"""Metric primitives, the registry, and both exposition formats."""

import json

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    canonical_labels,
)


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0
        gauge.set_max(10.0)
        gauge.set_max(7.0)
        assert gauge.value == 10.0

    def test_histogram_bucket_placement(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # value <= bound goes in that bucket; beyond all bounds in +Inf.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.cumulative() == [2, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.0)

    def test_histogram_quantile_is_bucket_resolution(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for __ in range(99):
            histogram.observe(0.5)
        histogram.observe(3.0)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 4.0
        assert histogram.quantile(0.0) == 1.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_histogram_bucket_selection_is_bisect(self):
        # Pin the O(log buckets) contract: observe() places values
        # with one bisect_left, and that placement agrees with the
        # obvious linear reference scan everywhere — including exact
        # boundaries, below-all and above-all values — on the shared
        # bucket constants the hot probes use.
        import inspect

        assert "bisect_left" in inspect.getsource(Histogram.observe)

        def linear_bucket(bounds, value):
            for index, bound in enumerate(bounds):
                if value <= bound:
                    return index
            return len(bounds)

        for bounds in (LATENCY_BUCKETS, COUNT_BUCKETS, (1.0, 2.0, 4.0)):
            probes = [bounds[0] / 2.0, bounds[-1] * 2.0]
            for bound in bounds:
                probes.extend((bound * 0.999, bound, bound * 1.001))
            for value in probes:
                histogram = Histogram("h", bounds)
                histogram.observe(value)
                expected = linear_bucket(bounds, value)
                assert histogram.counts[expected] == 1, (
                    bounds, value
                )
                assert histogram.count == 1

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match=">= 1 bucket"):
            Histogram("h", ())

    def test_canonical_labels_sorted_and_stringified(self):
        assert canonical_labels({"b": 2, "a": "x"}) == (
            ("a", "x"), ("b", "2"),
        )
        assert canonical_labels(None) == ()


class TestRegistry:
    def test_registration_is_idempotent_per_child(self):
        registry = MetricsRegistry()
        first = registry.counter("events", labels={"node": 1})
        again = registry.counter("events", labels={"node": 1})
        other = registry.counter("events", labels={"node": 2})
        assert first is again
        assert first is not other
        assert len(registry) == 2
        assert registry.get("events", {"node": 1}) is first
        assert registry.get("missing") is None

    def test_type_conflict_records_obs401(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        detached = registry.gauge("x")
        assert registry.issues and registry.issues[0].code == "OBS401"
        # First registration wins; the caller still gets a live metric.
        assert registry.get("x") is counter
        detached.set(5.0)
        assert counter.value == 0.0

    def test_label_key_conflict_records_obs401(self):
        registry = MetricsRegistry()
        registry.counter("y", labels={"node": 1})
        registry.counter("y", labels={"site": 1})
        assert [issue.code for issue in registry.issues] == ["OBS401"]
        assert "label keys" in registry.issues[0].message

    def test_as_dict_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("hits", labels={"node": 0}).inc(3)
        registry.histogram("lat", (0.1, 1.0)).observe(0.05)
        snapshot = registry.as_dict()
        json.dumps(snapshot)  # must not raise
        assert snapshot["hits"]["type"] == "counter"
        assert snapshot["hits"]["samples"][0]["value"] == 3
        assert snapshot["lat"]["samples"][0]["counts"] == [1, 0, 0]


class TestPrometheus:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labels={"node": 1},
                         help_text="events").inc(7)
        registry.gauge("depth").set(3.5)
        text = registry.render_prometheus()
        assert "# HELP events_total events" in text
        assert "# TYPE events_total counter" in text
        assert 'events_total{node="1"} 7' in text
        assert "depth 3.5" in text

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", (0.5, 1.0))
        for value in (0.2, 0.7, 9.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_extra_labels_stamped_on_every_sample(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"node": 1}).inc()
        registry.gauge("g").set(1)
        text = registry.render_prometheus(
            extra_labels={"scenario": "steady"}
        )
        assert 'c{scenario="steady",node="1"} 1' in text
        assert 'g{scenario="steady"} 1' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"name": 'a"b\\c'}).inc()
        text = registry.render_prometheus()
        assert 'name="a\\"b\\\\c"' in text

    def test_shared_bucket_constants_are_increasing(self):
        for bounds in (LATENCY_BUCKETS, COUNT_BUCKETS):
            assert list(bounds) == sorted(bounds)
            assert len(set(bounds)) == len(bounds)
