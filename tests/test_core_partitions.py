"""Partition map tests (fig. 11 and the static band edges)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.partitions import (
    IPR3_EDGES,
    IPR7_EDGES,
    MAX_TTL,
    PartitionMap,
    equal_band_ranges,
    margin_partition_map,
)


class TestPartitionMap:
    def test_three_band_assignment(self):
        pm = PartitionMap(IPR3_EDGES)
        assert pm.num_bands == 3
        assert pm.band_of(1) == 0
        assert pm.band_of(14) == 0
        assert pm.band_of(15) == 1
        assert pm.band_of(47) == 1
        assert pm.band_of(63) == 1
        assert pm.band_of(64) == 2
        assert pm.band_of(191) == 2

    def test_seven_band_isolates_paper_ttls(self):
        """IPR-7 is 'perfect partitioning': no two TTLs of the fig. 5
        distributions share a band."""
        pm = PartitionMap(IPR7_EDGES)
        bands = [pm.band_of(t) for t in (1, 15, 31, 47, 63, 127, 191)]
        assert len(set(bands)) == 7

    def test_three_band_conflates_european_ttls(self):
        """The fig. 3 problem: TTL 47 (UK) and 63 (Europe) share a band."""
        pm = PartitionMap(IPR3_EDGES)
        assert pm.band_of(47) == pm.band_of(63)

    def test_band_of_array(self):
        pm = PartitionMap(IPR3_EDGES)
        out = pm.band_of(np.array([1, 15, 64]))
        assert out.tolist() == [0, 1, 2]

    def test_ttl_range_inverse(self):
        pm = PartitionMap(IPR7_EDGES)
        for band in range(pm.num_bands):
            lo, hi = pm.ttl_range(band)
            assert pm.band_of(lo) == band
            assert pm.band_of(hi) == band
        assert pm.ttl_range(0)[0] == 1
        assert pm.ttl_range(pm.num_bands - 1)[1] == MAX_TTL

    def test_ttl_range_bounds_checked(self):
        pm = PartitionMap(IPR3_EDGES)
        with pytest.raises(IndexError):
            pm.ttl_range(3)

    def test_band_counts(self):
        pm = PartitionMap(IPR3_EDGES)
        counts = pm.band_counts(np.array([1, 1, 15, 63, 191]))
        assert counts.tolist() == [2, 2, 1]

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            PartitionMap((64, 15))
        with pytest.raises(ValueError):
            PartitionMap((15, 15))

    @given(st.integers(min_value=1, max_value=255))
    def test_property_every_ttl_has_exactly_one_band(self, ttl):
        for pm in (PartitionMap(IPR3_EDGES), PartitionMap(IPR7_EDGES),
                   margin_partition_map(2)):
            band = pm.band_of(ttl)
            lo, hi = pm.ttl_range(band)
            assert lo <= ttl <= hi


class TestMarginPartitionMap:
    def test_margin2_partition_count(self):
        """The paper reports 55 partitions at margin 2; our ceil-based
        reading of the rule yields 54 (off by one from rounding at the
        top of the range)."""
        assert margin_partition_map(2).num_bands == 54

    def test_low_ttls_one_per_partition(self):
        pm = margin_partition_map(2)
        # At the bottom of the range every TTL gets its own partition.
        for ttl in range(1, 8):
            lo, hi = pm.ttl_range(pm.band_of(ttl))
            assert lo == hi == ttl

    def test_high_ttl_bands_wider_but_bounded(self):
        pm = margin_partition_map(2)
        top_lo, top_hi = pm.ttl_range(pm.num_bands - 1)
        width = top_hi - top_lo + 1
        # "the size of the highest TTL band should be less than the
        # DVMRP infinite routing metric of 32"
        assert 1 < width < 32

    def test_widths_monotone_non_decreasing(self):
        """Widths grow with TTL (the rule is proportional to t); the
        final band may be narrower because it is truncated at 255."""
        pm = margin_partition_map(2)
        widths = [hi - lo + 1 for lo, hi in
                  (pm.ttl_range(b) for b in range(pm.num_bands))]
        body = widths[:-1]
        assert all(b >= a for a, b in zip(body, body[1:]))

    def test_larger_margin_more_partitions(self):
        assert (margin_partition_map(3).num_bands
                > margin_partition_map(2).num_bands
                > margin_partition_map(1).num_bands)

    def test_bad_margin_rejected(self):
        with pytest.raises(ValueError):
            margin_partition_map(0)


class TestEqualBandRanges:
    def test_exact_cover(self):
        ranges = equal_band_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_even_split(self):
        ranges = equal_band_ranges(100, 4)
        assert all(hi - lo == 25 for lo, hi in ranges)

    def test_contiguous_and_complete(self):
        for size, bands in ((100, 7), (65_536, 8), (17, 5)):
            ranges = equal_band_ranges(size, bands)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == size
            for (a, b), (c, d) in zip(ranges, ranges[1:]):
                assert b == c

    def test_too_many_bands_rejected(self):
        with pytest.raises(ValueError):
            equal_band_ranges(3, 5)

    def test_zero_bands_rejected(self):
        with pytest.raises(ValueError):
            equal_band_ranges(10, 0)
