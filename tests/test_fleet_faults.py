"""Fault injection: raising, hanging and SIGKILL'd workers.

Each failure mode must produce a structured failure row, be retried
up to the cap, and leave the checkpoint loadable — never corrupted.
"""

import pytest

from repro.fleet.checkpoint import Checkpoint
from repro.fleet.runner import run_sweep
from repro.fleet.spec import SweepSpec, make_shards


def _spec(job, params_list, **kwargs):
    defaults = dict(sweep_id="faults", job=job, seed=3,
                    shards=make_shards(params_list),
                    retries=2, backoff=0.0)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def _checkpoint_is_sane(path, spec):
    loaded = Checkpoint(path).load(expected_digest=spec.digest())
    assert loaded.torn_bytes == 0
    return loaded


class TestRaisingWorker:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_recovers_after_injected_failures(self, tmp_path, jobs):
        spec = _spec("flaky", [{"fail_attempts": 2}])
        path = str(tmp_path / "c.jsonl")
        result = run_sweep(spec, jobs=jobs, checkpoint=path)
        assert result.complete
        assert result.payloads[0] == {"attempt": 2}
        assert [row["reason"] for row in result.failures] == [
            "exception", "exception"]
        assert result.issues == []
        loaded = _checkpoint_is_sane(path, spec)
        assert len(loaded.failures) == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exhausted_retries_surface_flt501(self, tmp_path, jobs):
        spec = _spec("flaky", [{"fail_attempts": 99}], retries=1)
        path = str(tmp_path / "c.jsonl")
        result = run_sweep(spec, jobs=jobs, checkpoint=path)
        assert not result.complete
        assert [issue.code for issue in result.issues] == ["FLT501"]
        assert result.issues[0].shard == 0
        # Both attempts journalled; error text preserved.
        loaded = _checkpoint_is_sane(path, spec)
        assert [row["attempt"] for row in loaded.failures] == [0, 1]
        assert "injected failure" in loaded.failures[0]["error"]


class TestTimeoutWorker:
    def test_hang_is_killed_and_retried(self, tmp_path):
        # Hangs on attempt 0, succeeds on attempt 1.
        spec = _spec("hang", [{"hang_attempts": 1, "seconds": 60.0}],
                     timeout=0.4, retries=2)
        path = str(tmp_path / "c.jsonl")
        result = run_sweep(spec, jobs=2, checkpoint=path)
        assert result.complete
        assert result.payloads[0] == {"attempt": 1}
        assert [row["reason"] for row in result.failures] == [
            "timeout"]
        _checkpoint_is_sane(path, spec)

    def test_always_hanging_shard_exhausts_budget(self, tmp_path):
        spec = _spec("hang", [{"seconds": 60.0}], timeout=0.3,
                     retries=1)
        path = str(tmp_path / "c.jsonl")
        result = run_sweep(spec, jobs=2, checkpoint=path)
        assert not result.complete
        assert [issue.code for issue in result.issues] == ["FLT501"]
        assert "timeout" in result.issues[0].message
        loaded = _checkpoint_is_sane(path, spec)
        assert all(row["reason"] == "timeout"
                   for row in loaded.failures)


class TestKilledWorker:
    def test_sigkill_detected_and_retried(self, tmp_path):
        # SIGKILLs itself on attempt 0, succeeds on attempt 1.
        spec = _spec("kill-self", [{"fail_attempts": 1}])
        path = str(tmp_path / "c.jsonl")
        result = run_sweep(spec, jobs=2, checkpoint=path)
        assert result.complete
        assert result.payloads[0] == {"attempt": 1}
        assert [row["reason"] for row in result.failures] == [
            "killed"]
        assert "exitcode" in result.failures[0]["error"]
        _checkpoint_is_sane(path, spec)

    def test_mixed_sweep_isolates_the_failure(self, tmp_path):
        # A dying shard must not poison its healthy neighbours.
        spec = SweepSpec(
            sweep_id="faults", job="kill-self", seed=3,
            shards=make_shards([
                {"fail_attempts": 0}, {"fail_attempts": 99},
                {"fail_attempts": 0},
            ]),
            retries=1, backoff=0.0,
        )
        path = str(tmp_path / "c.jsonl")
        result = run_sweep(spec, jobs=2, checkpoint=path)
        assert sorted(result.payloads) == [0, 2]
        assert [issue.shard for issue in result.issues] == [1]
        loaded = _checkpoint_is_sane(path, spec)
        assert sorted(loaded.completed) == [0, 2]


class TestTelemetry:
    def test_fault_metrics_recorded(self, tmp_path):
        spec = _spec("flaky", [{"fail_attempts": 1},
                               {"fail_attempts": 0}], retries=2)
        result = run_sweep(spec, jobs=2)
        metrics = result.registry.as_dict()

        def value(name):
            return metrics[name]["samples"][0]["value"]

        assert value("fleet_shards_completed_total") == 2
        assert value("fleet_shards_retried_total") == 1
        assert value("fleet_shards_failed_total") == 0
        assert value("fleet_workers_busy") >= 1
