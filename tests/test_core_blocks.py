"""Address block (CIDR prefix) tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.address_space import ip_to_int
from repro.core.blocks import AddressBlock, block_for


class TestConstruction:
    def test_parse_and_str_roundtrip(self):
        block = AddressBlock.parse("224.2.128.0/17")
        assert str(block) == "224.2.128.0/17"
        assert block.size == 2 ** 15

    def test_all_multicast(self):
        root = AddressBlock.all_multicast()
        assert str(root) == "224.0.0.0/4"
        assert root.size == 2 ** 28

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            AddressBlock(ip_to_int("224.2.128.1"), 17)

    def test_non_multicast_rejected(self):
        with pytest.raises(ValueError):
            AddressBlock(ip_to_int("10.0.0.0"), 8)

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            AddressBlock(ip_to_int("224.0.0.0"), 3)
        with pytest.raises(ValueError):
            AddressBlock(ip_to_int("224.0.0.0"), 33)

    def test_parse_requires_slash(self):
        with pytest.raises(ValueError):
            AddressBlock.parse("224.2.128.0")


class TestGeometry:
    def test_containment(self):
        outer = AddressBlock.parse("224.2.0.0/16")
        inner = AddressBlock.parse("224.2.128.0/17")
        assert outer.contains_block(inner)
        assert not inner.contains_block(outer)
        assert outer.contains_address(ip_to_int("224.2.200.5"))
        assert not outer.contains_address(ip_to_int("224.3.0.0"))

    def test_overlap(self):
        a = AddressBlock.parse("224.2.0.0/17")
        b = AddressBlock.parse("224.2.128.0/17")
        c = AddressBlock.parse("224.2.0.0/16")
        assert not a.overlaps(b)
        assert a.overlaps(c) and b.overlaps(c)

    def test_children(self):
        block = AddressBlock.parse("224.2.0.0/16")
        low, high = block.children()
        assert str(low) == "224.2.0.0/17"
        assert str(high) == "224.2.128.0/17"
        assert low.supernet() == block
        assert high.supernet() == block

    def test_cannot_split_host_route(self):
        with pytest.raises(ValueError):
            AddressBlock(ip_to_int("224.0.0.1"), 32).children()

    def test_root_has_no_supernet(self):
        with pytest.raises(ValueError):
            AddressBlock.all_multicast().supernet()

    def test_subblocks(self):
        block = AddressBlock.parse("224.2.0.0/16")
        subs = list(block.subblocks(18))
        assert len(subs) == 4
        assert all(block.contains_block(s) for s in subs)
        assert subs[0].base == block.base
        with pytest.raises(ValueError):
            list(block.subblocks(8))

    def test_block_for(self):
        block = block_for(ip_to_int("224.2.129.77"), 17)
        assert str(block) == "224.2.128.0/17"

    @given(st.integers(4, 31), st.integers(0, 2 ** 28 - 1))
    def test_property_children_tile_parent(self, prefix_len, offset):
        parent = block_for(0xE0000000 + offset, prefix_len)
        low, high = parent.children()
        assert low.size + high.size == parent.size
        assert low.base == parent.base
        assert high.last == parent.last
        assert not low.overlaps(high)
