"""The abstract interpreter's analysis machinery.

Covers the *proof* side (the point of the tool is what it can show
safe, not just what it flags): guard refinement, loop widening,
symbolic length tracking, space geometry, and the two-pass
interprocedural propagation.  Rule-by-rule fire/clean pairs live in
``test_units_mutations.py``.

The checker only judges subscripts on containers whose length it
tracks (locally-built lists, ``[0] * n``, ``range`` products); a
parameter of unknown shape is skipped entirely rather than guessed
at, which several tests below pin down.
"""

import textwrap

from repro.units.analysis import analyze_sources


def report_for(src, path="fix.py"):
    return analyze_sources([(path, textwrap.dedent(src))])


def codes(report):
    return [f.code for f in report.findings]


class TestBoundsProofs:
    def test_range_len_subscript_is_proved(self):
        report = report_for("""
            def walk(n: Count):
                xs = [0] * n
                total = 0
                for i in range(len(xs)):
                    total += xs[i]
                return total
        """)
        assert codes(report) == []
        assert report.stats["proved_subscripts"] >= 1

    def test_guard_refinement_proves_the_true_branch(self):
        report = report_for("""
            def pick(n: Count, i: int):
                table = [0] * n
                if 0 <= i < len(table):
                    return table[i]
                return None
        """)
        assert codes(report) == []
        assert report.stats["proved_subscripts"] >= 1

    def test_swapped_guard_direction_also_refines(self):
        report = report_for("""
            def pick(n: Count, i: int):
                table = [0] * n
                if len(table) > i >= 0:
                    return table[i]
                return None
        """)
        assert codes(report) == []
        assert report.stats["proved_subscripts"] >= 1

    def test_early_return_refines_the_fallthrough(self):
        report = report_for("""
            def pick(n: Count, i: int):
                table = [0] * n
                if i >= len(table):
                    return None
                return table[i]
        """)
        assert codes(report) == []
        assert report.stats["proved_subscripts"] >= 1

    def test_loop_widening_keeps_symbolic_bound(self):
        report = report_for("""
            def scan(n: Count):
                xs = [0] * n
                i = 0
                total = 0
                while i < len(xs):
                    total += xs[i]
                    i += 1
                return total
        """)
        assert codes(report) == []
        assert report.stats["proved_subscripts"] >= 1

    def test_unknown_shape_parameter_is_skipped_not_guessed(self):
        report = report_for("""
            def walk(xs):
                return [xs[i] for i in range(len(xs))]
        """)
        assert codes(report) == []
        assert report.stats["checked_subscripts"] == 0

    def test_shrinking_a_list_invalidates_length(self):
        # ``pop`` kills the symbolic length, so the later subscript is
        # skipped (unknown shape) rather than wrongly proved.
        report = report_for("""
            def shrink(n: Count, i: int):
                xs = [0] * n
                if 0 <= i < len(xs):
                    xs.pop()
                    return xs[i]
                return None
        """)
        assert codes(report) == []
        assert report.stats["proved_subscripts"] == 0

    def test_off_by_one_past_len_is_flagged(self):
        report = report_for("""
            def over(n: Count):
                xs = [0] * n
                for i in range(len(xs) + 1):
                    print(xs[i])
        """)
        assert codes(report) == ["UNIT711"]

    def test_modulo_reduction_is_proved(self):
        report = report_for("""
            def fold(raw: int):
                table = [0] * 8
                return table[raw % 8]
        """)
        assert codes(report) == []
        assert report.stats["proved_subscripts"] >= 1


class TestSpaceGeometry:
    def test_factory_space_has_known_base_and_size(self):
        report = report_for("""
            from repro.core.address_space import MulticastAddressSpace

            def probe():
                space = MulticastAddressSpace.sdr_dynamic()
                return space.index_to_address(65_535)
        """)
        assert codes(report) == []
        assert report.stats["proved_conversions"] >= 1

    def test_one_past_the_factory_size_is_flagged(self):
        report = report_for("""
            from repro.core.address_space import MulticastAddressSpace

            def probe():
                space = MulticastAddressSpace.sdr_dynamic()
                return space.index_to_address(65_536)
        """)
        assert codes(report) == ["UNIT713"]

    def test_loop_over_space_size_is_proved(self):
        report = report_for("""
            def sweep(space: MulticastAddressSpace):
                out = []
                for index in range(space.size):
                    out.append(space.index_to_address(index))
                return out
        """)
        assert codes(report) == []
        assert report.stats["proved_conversions"] >= 1

    def test_address_outside_the_block_is_flagged(self):
        report = report_for("""
            from repro.core.address_space import MulticastAddressSpace

            def probe():
                space = MulticastAddressSpace.sdr_dynamic()
                return space.address_to_index(0xE0000000)
        """)
        assert codes(report) == ["UNIT713"]


class TestInterprocedural:
    def test_pass_b_reports_the_calling_path(self):
        report = report_for("""
            def outer(space: MulticastAddressSpace):
                return inner(space, space.size)

            def inner(space: MulticastAddressSpace, index: SlotIndex):
                return space.index_to_address(index)
        """)
        assert "UNIT713" in codes(report)
        via = [f for f in report.findings if f.code == "UNIT713"]
        assert any("reached via fix.outer" in f.message for f in via)

    def test_obligation_shadowed_by_hard_finding_is_dropped(self):
        # When pass B proves the violation at a site, the pass-A
        # obligation for the same site must not double-report.
        report = report_for("""
            def outer(space: MulticastAddressSpace):
                return inner(space, space.size)

            def inner(space: MulticastAddressSpace, index: SlotIndex):
                return space.index_to_address(index)
        """)
        hard = {(f.path, f.line, f.col) for f in report.findings}
        advisory = {(f.path, f.line, f.col) for f in report.advisory}
        assert not hard & advisory

    def test_safe_callers_stay_clean(self):
        report = report_for("""
            def outer(space: MulticastAddressSpace):
                return inner(space, space.size - 1)

            def inner(space: MulticastAddressSpace, index: SlotIndex):
                return space.index_to_address(index)
        """)
        assert codes(report) == []


class TestSuppressions:
    def test_disable_comment_suppresses_and_counts(self):
        report = report_for("""
            def over(n: Count):
                xs = [0] * n
                for i in range(len(xs) + 1):
                    print(xs[i])  # simlint: disable=index-bound-escape
        """)
        assert codes(report) == []
        assert report.suppressed == 1

    def test_unrelated_disable_does_not_suppress(self):
        report = report_for("""
            def over(n: Count):
                xs = [0] * n
                for i in range(len(xs) + 1):
                    print(xs[i])  # simlint: disable=unseeded-rng
        """)
        assert codes(report) == ["UNIT711"]
        assert report.suppressed == 0


class TestAdvisoryPolicy:
    def test_unknown_index_off_hot_path_is_silent(self):
        # A subscript the checker cannot decide, in a function that is
        # neither a hot root nor a fleet job, produces nothing at all:
        # the advisory channel is reserved for the paths that matter.
        report = report_for("""
            def cold(n: Count, i: int):
                xs = [0] * n
                return xs[i]
        """)
        assert codes(report) == []
        assert report.advisory == []

    def test_negative_index_idiom_is_not_flagged(self):
        report = report_for("""
            def last(n: Count):
                xs = [0] * n
                return xs[-1]
        """)
        assert codes(report) == []

    def test_dict_keyed_by_addr_is_legitimate(self):
        report = report_for("""
            def lookup(table: dict, addr: Addr):
                return table.get(addr)
        """)
        assert codes(report) == []


class TestStats:
    def test_stats_count_proofs_and_functions(self):
        report = report_for("""
            def walk(n: Count):
                xs = [0] * n
                return [xs[i] for i in range(len(xs))]
        """)
        for key in ("checked_subscripts", "proved_subscripts",
                    "checked_shifts", "proved_shifts",
                    "checked_conversions", "proved_conversions",
                    "functions", "modules"):
            assert key in report.stats
        assert report.stats["functions"] == 1
        assert report.stats["modules"] == 1
