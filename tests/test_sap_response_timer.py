"""Response delay timer tests."""

import numpy as np
import pytest

from repro.sap.response_timer import ExponentialDelayTimer, UniformDelayTimer


class TestUniformDelayTimer:
    def test_within_interval(self, rng):
        timer = UniformDelayTimer(1.0, 5.0, rng)
        samples = timer.sample_many(1000)
        assert samples.min() >= 1.0
        assert samples.max() <= 5.0

    def test_roughly_uniform(self, rng):
        timer = UniformDelayTimer(0.0, 1.0, rng)
        samples = timer.sample_many(4000)
        hist, __ = np.histogram(samples, bins=4, range=(0, 1))
        assert hist.min() > 800

    def test_scalar_sample(self, rng):
        timer = UniformDelayTimer(2.0, 3.0, rng)
        assert 2.0 <= timer.sample() <= 3.0

    def test_invalid_interval(self, rng):
        with pytest.raises(ValueError):
            UniformDelayTimer(5.0, 1.0, rng)
        with pytest.raises(ValueError):
            UniformDelayTimer(-1.0, 1.0, rng)


class TestExponentialDelayTimer:
    def test_within_interval(self, rng):
        timer = ExponentialDelayTimer(0.5, 6.4, rtt=0.2, rng=rng)
        samples = timer.sample_many(1000)
        assert samples.min() >= 0.5 - 1e-9
        assert samples.max() <= 6.4 + 1e-6

    def test_mass_concentrates_late(self, rng):
        """Exponential delays cluster near D2 (late buckets are the
        likely ones); the median sits within ~2 RTT of D2."""
        timer = ExponentialDelayTimer(0.0, 6.4, rtt=0.2, rng=rng)
        samples = timer.sample_many(2000)
        assert np.median(samples) > 6.4 - 0.5
        # Early responses are exponentially rare: with d = 32 buckets,
        # P(delay < D2/2) = 2^-16.
        assert (samples < 3.2).mean() < 0.01
        # With coarser buckets (d = 8) early responders do appear.
        coarse = ExponentialDelayTimer(0.0, 6.4, rtt=0.8, rng=rng)
        early = (coarse.sample_many(2000) < 3.2).mean()
        assert 0.001 < early < 0.2

    def test_scalar_and_vector_agree_in_range(self, rng):
        timer = ExponentialDelayTimer(1.0, 4.0, rtt=0.5, rng=rng)
        for __ in range(50):
            assert 1.0 - 1e-9 <= timer.sample() <= 4.0 + 1e-6

    def test_invalid_rtt(self, rng):
        with pytest.raises(ValueError):
            ExponentialDelayTimer(0.0, 1.0, rtt=0.0, rng=rng)
