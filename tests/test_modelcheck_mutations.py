"""Mutation testing: seeded protocol bugs must yield counterexamples.

Each mutation re-introduces a specific historical or plausible bug
behind a test-only flag; the model checker must find a minimal
counterexample trace for each, and the same traces must be clean on
the unmutated protocol.  The full ghost exploration (~1 min) runs
only when ``REPRO_MC_EXHAUSTIVE=1`` (CI's model-check job); the
tier-1 path replays the explorer-found counterexample directly.
"""

import os

import pytest

from repro.modelcheck.explorer import explore
from repro.modelcheck.harness import ProtocolHarness
from repro.modelcheck.scenarios import get_scenario

#: Minimal counterexample the explorer finds for smoke +
#: defend-off-by-one: B's announce reaches A (A defends via the
#: tie-break), A's defence reaches B (the mutant treats the newcomer
#: as established, so B defends instead of retreating), B's defence
#: reaches A (rate-limit suppresses a re-defence) — quiescing with
#: both claiming address 0.
SMOKE_CE = (("deliver", 1), ("deliver", 2), ("deliver", 3))

#: Counterexample the explorer finds for ghost + ghost-resurrection:
#: the victim's announcement reaches B but is dropped towards A; B's
#: third-party defence re-announces it, and the mutant victim caches
#: its own echo; the victim's session then expires (DELETE) — but the
#: ghost cache entry survives, so when the legacy newcomer's
#: re-announcement arrives, the victim schedules a defence of its own
#: withdrawn session and fires it: SAN204 use-after-expiry.
GHOST_CE = (
    ("deliver", 3), ("drop", 2), ("fire", 3), ("deliver", 4),
    ("deliver", 5), ("fire", 1), ("deliver", 6), ("deliver", 7),
    ("fire", 2), ("deliver", 8), ("deliver", 9), ("fire", 5),
)

exhaustive = pytest.mark.skipif(
    os.environ.get("REPRO_MC_EXHAUSTIVE") != "1",
    reason="full ghost exploration (~1 min); set REPRO_MC_EXHAUSTIVE=1",
)


class TestDefendOffByOne:
    def test_explorer_finds_minimal_counterexample(self):
        result = explore(get_scenario("smoke"),
                         mutation="defend-off-by-one")
        assert not result.clean
        assert result.violations[0].code == "MC312"
        assert result.counterexample == SMOKE_CE
        assert result.counterexample_labels is not None
        assert len(result.counterexample_labels) == len(SMOKE_CE)

    def test_counterexample_replays(self):
        harness = ProtocolHarness(get_scenario("smoke"),
                                  mutation="defend-off-by-one")
        for action in SMOKE_CE:
            harness.execute(action)
        assert harness.quiescent()
        harness.check_quiescent_state()
        assert any(v.code == "MC312" for v in harness.violations)

    def test_trace_is_clean_without_the_mutation(self):
        harness = ProtocolHarness(get_scenario("smoke"))
        for action in SMOKE_CE:
            harness.execute(action)
        harness.check_quiescent_state()
        assert harness.violations == []

    def test_full_space_also_breaches_established_safety(self):
        # Deeper in the mutant's space a lossy branch makes the
        # wrongly-established newcomer retreat later on: MC311.
        result = explore(get_scenario("smoke"),
                         mutation="defend-off-by-one",
                         stop_on_violation=False)
        codes = {violation.code for violation in result.violations}
        assert "MC312" in codes
        assert "MC311" in codes


class TestGhostResurrection:
    def test_counterexample_replays_to_san204(self):
        harness = ProtocolHarness(get_scenario("ghost"),
                                  mutation="ghost-resurrection")
        for action in GHOST_CE:
            harness.execute(action)
        codes = {violation.code for violation in harness.violations}
        assert "SAN204" in codes

    def test_prefix_is_clean_without_the_mutation(self):
        harness = ProtocolHarness(get_scenario("ghost"))
        # The final action fires the ghost-defence timer, which only
        # the mutant ever schedules; replay everything before it.
        for action in GHOST_CE[:-1]:
            harness.execute(action)
        assert harness.violations == []
        assert GHOST_CE[-1] not in harness.enabled_actions()

    @exhaustive
    def test_explorer_finds_the_ghost(self):
        result = explore(get_scenario("ghost"),
                         mutation="ghost-resurrection")
        assert not result.clean
        codes = {violation.code for violation in result.violations}
        assert "SAN204" in codes
        assert result.counterexample == GHOST_CE

    @exhaustive
    def test_ghost_space_is_clean_on_main(self):
        result = explore(get_scenario("ghost"))
        assert result.clean
        assert not result.truncated
        assert result.states == 15915


class TestCli:
    def test_mutant_run_exits_nonzero_with_trace(self, capsys):
        from repro.modelcheck.cli import main

        status = main(["smoke", "--mutation", "defend-off-by-one"])
        out = capsys.readouterr().out
        assert status == 1
        assert "MC312" in out
        assert "minimal counterexample" in out

    def test_unknown_mutation_is_usage_error(self):
        from repro.modelcheck.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["smoke", "--mutation", "nope"])
        assert excinfo.value.code == 2
