"""Deterministic sampling: same seed, same sampled event subset.

The always-on telemetry design hinges on two properties of the
1-in-N sampler: gap sequences are a pure function of (seed, stream)
— so re-running a scenario samples the *identical* spans — and the
sampler draws from seed-derived streams that are independent of every
simulation stream, so observation can never steer the run.
"""

import pytest

from repro.obs.context import ObsContext
from repro.obs.sampling import DEFAULT_SAMPLE_RATE, DeterministicSampler
from repro.obs.scenarios import build_steady


def span_key(span):
    """Identity of one recorded span, wall-clock free."""
    return (span.span_id, span.parent_id, span.name, span.category,
            span.node, span.start, span.end)


def run_observed(seed, obs_seed, sample_rate):
    """One small steady run; returns (context, events_run)."""
    context = ObsContext(scenario="sampling", seed=obs_seed,
                         sample_rate=sample_rate)
    scheduler, __dirs = build_steady(
        seed, context, num_sites=4, space_size=8,
        sessions_per_site=3, horizon=150.0,
    )
    scheduler.run(until=150.0)
    context.finish()
    return context, scheduler.events_run


class TestGapSequences:
    def test_same_seed_same_stream_identical(self):
        first = DeterministicSampler(16, seed=42, stream="obs/x")
        second = DeterministicSampler(16, seed=42, stream="obs/x")
        gaps = [first.next_gap() for __ in range(500)]
        assert gaps == [second.next_gap() for __ in range(500)]

    def test_seed_and_stream_both_move_the_sequence(self):
        base = DeterministicSampler(16, seed=42, stream="obs/x")
        other_seed = DeterministicSampler(16, seed=43, stream="obs/x")
        other_stream = DeterministicSampler(16, seed=42, stream="obs/y")
        gaps = [base.next_gap() for __ in range(200)]
        assert gaps != [other_seed.next_gap() for __ in range(200)]
        assert gaps != [other_stream.next_gap() for __ in range(200)]

    def test_gaps_bounded_with_mean_rate(self):
        rate = DEFAULT_SAMPLE_RATE
        sampler = DeterministicSampler(rate, seed=7)
        gaps = [sampler.next_gap() for __ in range(20_000)]
        assert min(gaps) >= 1
        assert max(gaps) <= 2 * rate - 1
        mean = sum(gaps) / len(gaps)
        # Uniform on [1, 2N-1] has mean N; 20k draws pin it tightly.
        assert mean == pytest.approx(rate, rel=0.02)

    def test_rate_one_always_samples(self):
        sampler = DeterministicSampler(1, seed=7)
        assert [sampler.next_gap() for __ in range(10)] == [1] * 10

    def test_rate_below_one_rejected(self):
        with pytest.raises(ValueError, match="sample rate"):
            DeterministicSampler(0)


class TestRunTwiceDeterminism:
    def test_same_seed_records_identical_span_set(self):
        # The run-twice harness: one scenario, one observer seed, two
        # executions.  Sampling must pick the same roots, so the full
        # recorded forest (ids, parents, names, sim timestamps) and
        # the started/recorded accounting are identical.
        first, events_first = run_observed(11, obs_seed=11,
                                           sample_rate=4)
        second, events_second = run_observed(11, obs_seed=11,
                                             sample_rate=4)
        assert events_first == events_second
        first_spans = [span_key(s) for s in first.spans.iter_spans()]
        second_spans = [span_key(s) for s in second.spans.iter_spans()]
        assert first_spans == second_spans
        assert len(first_spans) > 0
        assert first.spans.started == second.spans.started
        assert first.spans.recorded == second.spans.recorded
        assert first.spans.recorded < first.spans.started

    def test_observer_seed_moves_sampling_not_the_simulation(self):
        # Changing only the *observer's* seed changes which spans are
        # materialised but cannot change the run itself: the sampler
        # draws from derived obs streams, never simulation streams.
        first, events_first = run_observed(11, obs_seed=1,
                                           sample_rate=4)
        second, events_second = run_observed(11, obs_seed=2,
                                             sample_rate=4)
        assert events_first == events_second
        assert first.spans.started == second.spans.started
        first_spans = [span_key(s) for s in first.spans.iter_spans()]
        second_spans = [span_key(s) for s in second.spans.iter_spans()]
        assert first_spans != second_spans

    def test_children_only_under_recorded_roots(self):
        # Nesting invariant at a sampling rate: every recorded child
        # sits inside a recorded parent (no orphans), at any rate.
        context, __ = run_observed(11, obs_seed=11, sample_rate=4)
        by_id = {span.span_id: span
                 for span in context.spans.iter_spans()}
        for span in by_id.values():
            if span.parent_id is not None:
                assert span.parent_id in by_id

    def test_context_samplers_are_per_concern(self):
        context = ObsContext(seed=5)
        spans_gaps = [context._sampler("spans").next_gap()
                      for __ in range(50)]
        sched_gaps = [context._sampler("scheduler").next_gap()
                      for __ in range(50)]
        assert spans_gaps != sched_gaps
