"""Engine determinism contract: a run is pure in ``(spec, seed)``."""

import json

import pytest

from repro.scenario.engine import run_sampled, run_spec
from repro.scenario.spec import (
    ArrivalSpec,
    PersonaAssignment,
    ScenarioSpec,
    TopologySpec,
)

SEED = 0x19980902

ADVERSARIAL = ScenarioSpec(
    name="engine-adversarial",
    topology=TopologySpec(partition_storms=1),
    personas=(PersonaAssignment(1, "deaf-after-claim"),),
    space_size=8,
)


class TestDeterminism:
    def test_same_spec_same_seed_same_bytes(self):
        first = run_spec(ADVERSARIAL, SEED, max_events=40_000)
        second = run_spec(ADVERSARIAL, SEED, max_events=40_000)
        assert first.trace == second.trace
        assert first.codes() == second.codes()
        assert first.events_run == second.events_run

    def test_artifact_alone_replays_the_trace(self):
        run = run_spec(ADVERSARIAL, SEED, max_events=40_000)
        artifact = json.loads(json.dumps(run.artifact()))
        replayed = run_spec(
            ScenarioSpec.from_dict(artifact["spec"]),
            artifact["seed"],
            max_events=artifact["max_events"],
        )
        assert replayed.trace_sha256() == artifact["trace_sha256"]

    def test_different_seed_different_trace(self):
        first = run_spec(ADVERSARIAL, SEED, max_events=40_000)
        second = run_spec(ADVERSARIAL, SEED + 1, max_events=40_000)
        assert first.trace != second.trace


class TestBudget:
    def test_event_budget_bounds_the_run(self):
        run = run_spec(ScenarioSpec(name="budget"), SEED,
                       max_events=500)
        assert run.events_run <= 500
        assert not run.horizon_reached
        assert "SCN911" in run.codes()

    def test_advisory_truncation_does_not_fail_the_run(self):
        run = run_spec(ScenarioSpec(name="budget"), SEED,
                       max_events=500)
        assert run.clean
        assert run.hard_violations == []

    def test_budget_is_recorded_on_the_run(self):
        run = run_spec(ScenarioSpec(name="budget"), SEED,
                       max_events=500)
        assert run.max_events == 500
        assert run.artifact()["max_events"] == 500


class TestTraceShape:
    def test_trace_names_every_site_and_the_clash_count(self):
        spec = ScenarioSpec(name="shape")
        run = run_spec(spec, SEED, max_events=40_000)
        lines = run.trace.splitlines()
        assert lines[0].startswith(
            f"# scenario shape kind=synthetic digest={spec.digest()}")
        sites = [line for line in lines if line.startswith("site ")]
        assert len(sites) == spec.topology.num_sites
        assert any(line.startswith("clash-pairs=") for line in lines)
        assert any(line.startswith("net: ") for line in lines)

    def test_violations_are_rendered_into_the_trace(self):
        run = run_spec(ADVERSARIAL, SEED, max_events=40_000)
        assert run.codes()  # the adversarial spec violates
        for violation in run.violations:
            assert violation.format() in run.trace


class TestRunSampled:
    def test_rejects_legacy_kinds(self):
        spec = ScenarioSpec(name="kernel", kind="kernel")
        with pytest.raises(ValueError, match="synthetic"):
            run_sampled(spec, SEED)

    def test_matches_run_spec_for_synthetic(self):
        via_dispatch = run_spec(ADVERSARIAL, SEED, max_events=40_000)
        direct = run_sampled(ADVERSARIAL, SEED, max_events=40_000)
        assert direct.trace == via_dispatch.trace


class TestWorkloadShapes:
    @pytest.mark.parametrize("process", ["poisson", "diurnal",
                                         "flash-crowd"])
    def test_every_arrival_process_runs(self, process):
        spec = ScenarioSpec(
            name=f"arr-{process}",
            arrival=ArrivalSpec(process=process),
        )
        run = run_spec(spec, SEED, max_events=40_000)
        assert run.sessions_created > 0

    @pytest.mark.parametrize("shape", ["uniform", "hotspot",
                                       "multifractal"])
    def test_every_demand_shape_runs(self, shape):
        from repro.scenario.spec import DemandSpec

        spec = ScenarioSpec(name=f"dem-{shape}",
                            demand=DemandSpec(shape=shape))
        run = run_spec(spec, SEED, max_events=40_000)
        assert run.sessions_created > 0
