"""VisibleSet, nth_free_address and the allocator base contract."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.allocator import (
    AllocationResult,
    VisibleSet,
    nth_free_address,
)
from repro.core.session import Session


class TestVisibleSet:
    def test_empty(self):
        vs = VisibleSet.empty()
        assert len(vs) == 0
        assert vs.used_addresses().size == 0

    def test_from_sessions(self):
        sessions = [Session(address=3, ttl=15, source=0),
                    Session(address=9, ttl=63, source=1)]
        vs = VisibleSet.from_sessions(sessions)
        assert vs.addresses.tolist() == [3, 9]
        assert vs.ttls.tolist() == [15, 63]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            VisibleSet(np.array([1, 2]), np.array([15]))

    def test_used_addresses_unique_sorted(self):
        vs = VisibleSet(np.array([9, 3, 9, 1]), np.array([1, 1, 2, 3]))
        assert vs.used_addresses().tolist() == [1, 3, 9]

    def test_in_address_range(self):
        vs = VisibleSet(np.array([1, 5, 9]), np.array([15, 63, 127]))
        sub = vs.in_address_range(2, 9)
        assert sub.addresses.tolist() == [5]
        assert sub.ttls.tolist() == [63]

    def test_with_ttl_at_least(self):
        vs = VisibleSet(np.array([1, 5, 9]), np.array([15, 63, 127]))
        sub = vs.with_ttl_at_least(63)
        assert sub.addresses.tolist() == [5, 9]


class TestNthFreeAddress:
    def test_no_used(self):
        used = np.array([], dtype=np.int64)
        assert nth_free_address(used, 0, 0, 10) == 0
        assert nth_free_address(used, 9, 0, 10) == 9

    def test_skips_used(self):
        used = np.array([0, 1, 5])
        # Free addresses of [0, 10): 2,3,4,6,7,8,9
        frees = [nth_free_address(used, r, 0, 10) for r in range(7)]
        assert frees == [2, 3, 4, 6, 7, 8, 9]

    def test_offset_range(self):
        used = np.array([101, 103])
        frees = [nth_free_address(used, r, 100, 106) for r in range(4)]
        assert frees == [100, 102, 104, 105]

    def test_rank_out_of_bounds_rejected(self):
        used = np.array([0, 1])
        with pytest.raises(ValueError):
            nth_free_address(used, 8, 0, 10)
        with pytest.raises(ValueError):
            nth_free_address(used, -1, 0, 10)

    @given(
        st.integers(min_value=1, max_value=200),
        st.data(),
    )
    def test_property_matches_naive_enumeration(self, hi, data):
        used_set = data.draw(st.sets(
            st.integers(min_value=0, max_value=hi - 1), max_size=hi - 1
        ))
        used = np.array(sorted(used_set), dtype=np.int64)
        free = [a for a in range(hi) if a not in used_set]
        if not free:
            return
        r = data.draw(st.integers(min_value=0, max_value=len(free) - 1))
        assert nth_free_address(used, r, 0, hi) == free[r]


class TestAllocatorBase:
    def test_invalid_space_rejected(self):
        from repro.core.random_alloc import RandomAllocator
        with pytest.raises(ValueError):
            RandomAllocator(0)

    def test_invalid_ttl_rejected(self, rng):
        from repro.core.random_alloc import RandomAllocator
        allocator = RandomAllocator(100, rng)
        with pytest.raises(ValueError):
            allocator.allocate(0, VisibleSet.empty())
        with pytest.raises(ValueError):
            allocator.allocate(256, VisibleSet.empty())

    def test_allocation_result_fields(self):
        result = AllocationResult(address=5, band=2, informed=True,
                                  forced=False)
        assert result.address == 5
        assert result.band == 2
