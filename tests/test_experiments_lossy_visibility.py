"""Eq. 1 validation-by-simulation tests."""

import pytest

from repro.analysis.clash_model import no_clash_probability
from repro.experiments.lossy_visibility import (
    simulate_generation,
    simulated_no_clash_probability,
)

import numpy as np


class TestSimulateGeneration:
    def test_no_invisibility_never_clashes(self, rng):
        for __ in range(20):
            assert simulate_generation(100, 40, 0.0, rng)

    def test_full_invisibility_usually_clashes(self, rng):
        outcomes = [simulate_generation(100, 60, 1.0, rng)
                    for __ in range(20)]
        assert sum(outcomes) <= 2

    def test_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            simulate_generation(10, 0, 0.1, rng)
        with pytest.raises(ValueError):
            simulate_generation(10, 10, 0.1, rng)
        with pytest.raises(ValueError):
            simulate_generation(10, 5, 1.5, rng)


class TestEquationOneAgreement:
    @pytest.mark.parametrize("n,m,f", [
        (500, 100, 0.01),
        (500, 250, 0.005),
        (1000, 300, 0.002),
    ])
    def test_simulation_matches_eq1(self, n, m, f):
        simulated, stderr = simulated_no_clash_probability(
            n, m, f, rounds=150, seed=3
        )
        predicted = no_clash_probability(n, m, f * m)
        # Within 4 standard errors plus a small model tolerance (the
        # formula treats i as its expectation; the simulation draws it
        # binomially per allocation).
        assert abs(simulated - predicted) < 4 * stderr + 0.06

    def test_monotone_in_invisibility(self):
        p_low, __ = simulated_no_clash_probability(500, 200, 0.001,
                                                   rounds=80, seed=4)
        p_high, __ = simulated_no_clash_probability(500, 200, 0.02,
                                                    rounds=80, seed=4)
        assert p_high <= p_low

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            simulated_no_clash_probability(100, 10, 0.1, rounds=0)
