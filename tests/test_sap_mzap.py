"""MZAP-lite zone announcement tests."""

import pytest

from repro.routing.admin_scoping import AdminScopeMap, ScopeZone
from repro.sap.mzap import (
    ZamTransport,
    ZoneAnnouncement,
    ZoneAnnouncer,
    ZoneListener,
)
from repro.sim.events import EventScheduler


@pytest.fixture
def zone_world():
    """Two disjoint zones reusing range 100..200 across 8 nodes."""
    scope_map = AdminScopeMap(8)
    west = ScopeZone("west", frozenset(range(4)), 100, 200)
    east = ScopeZone("east", frozenset(range(4, 8)), 100, 200)
    scope_map.add_zone(west)
    scope_map.add_zone(east)
    sched = EventScheduler()
    transport = ZamTransport(scope_map, sched)
    return scope_map, sched, transport, west, east


class TestZoneAnnouncer:
    def test_member_zone_learned_inside_only(self, zone_world):
        scope_map, sched, transport, west, east = zone_world
        inside = ZoneListener(1, scope_map, transport)
        outside = ZoneListener(5, scope_map, transport)
        announcer = ZoneAnnouncer(west, producer=0, transport=transport)
        announcer.start()
        sched.run(until=10.0)
        assert inside.known_zone_names() == ["west"]
        assert outside.known_zone_names() == []
        assert announcer.announcements_sent >= 1

    def test_periodic_reannouncement(self, zone_world):
        scope_map, sched, transport, west, __ = zone_world
        listener = ZoneListener(1, scope_map, transport)
        announcer = ZoneAnnouncer(west, producer=0, transport=transport,
                                  interval=10.0)
        announcer.start()
        sched.run(until=35.0)
        entry = listener.learned[("west", 0)]
        assert entry.times_heard == 4

    def test_stop(self, zone_world):
        scope_map, sched, transport, west, __ = zone_world
        announcer = ZoneAnnouncer(west, producer=0, transport=transport,
                                  interval=10.0)
        announcer.start()
        sched.run(until=5.0)
        announcer.stop()
        sched.run(until=100.0)
        assert announcer.announcements_sent == 1

    def test_producer_must_be_member(self, zone_world):
        __, __, transport, west, __ = zone_world
        with pytest.raises(ValueError):
            ZoneAnnouncer(west, producer=6, transport=transport)

    def test_invalid_interval(self, zone_world):
        __, __, transport, west, __ = zone_world
        with pytest.raises(ValueError):
            ZoneAnnouncer(west, producer=0, transport=transport,
                          interval=0.0)


class TestLeakDetection:
    def test_no_leaks_when_boundaries_hold(self, zone_world):
        scope_map, sched, transport, west, east = zone_world
        listeners = [ZoneListener(n, scope_map, transport)
                     for n in range(8)]
        ZoneAnnouncer(west, 0, transport).start()
        ZoneAnnouncer(east, 5, transport).start()
        sched.run(until=10.0)
        assert all(not l.leaks_detected for l in listeners)

    def test_leak_detected_outside_zone(self, zone_world):
        scope_map, sched, transport, west, east = zone_world
        east_listener = ZoneListener(6, scope_map, transport)
        transport.inject_leak("west")
        ZoneAnnouncer(west, 0, transport).start()
        sched.run(until=10.0)
        assert len(east_listener.leaks_detected) >= 1
        leak = east_listener.leaks_detected[0]
        assert leak.zone_name == "west"

    def test_repair_stops_new_leaks(self, zone_world):
        scope_map, sched, transport, west, __ = zone_world
        east_listener = ZoneListener(6, scope_map, transport)
        transport.inject_leak("west")
        announcer = ZoneAnnouncer(west, 0, transport, interval=5.0)
        announcer.start()
        sched.run(until=6.0)
        seen = len(east_listener.leaks_detected)
        assert seen >= 1
        transport.repair_leak("west")
        sched.run(until=30.0)
        assert len(east_listener.leaks_detected) == seen

    def test_scoped_ranges_only_from_member_zones(self, zone_world):
        scope_map, sched, transport, west, east = zone_world
        listener = ZoneListener(1, scope_map, transport)
        transport.inject_leak("east")
        ZoneAnnouncer(west, 0, transport).start()
        ZoneAnnouncer(east, 5, transport).start()
        sched.run(until=10.0)
        # The leaked east ZAM is learned but not trusted as "our" zone.
        assert "east" in listener.known_zone_names()
        assert listener.scoped_ranges() == [(100, 200)]
        assert len(listener.leaks_detected) >= 1
