"""Ring-buffer exporter: overwrite-oldest with exact drop accounting.

The invariant pinned here backs the OBS403 advisory: every record
ever pushed is retained, drained, or counted dropped —
``pushed == retained + drained + dropped`` at every point in the
ring's life, saturated or not.
"""

import json

import pytest

from repro.obs.context import ObsContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.ring import RingExporter


def check_accounting(ring):
    stats = ring.stats()
    assert stats["pushed"] == (stats["retained"] + stats["drained"]
                               + stats["dropped"])
    return stats


class TestPushAndDrain:
    def test_fifo_below_capacity(self):
        ring = RingExporter(capacity=8)
        for index in range(5):
            ring.push({"kind": "span", "index": index})
        assert ring.retained == 5
        assert not ring.saturated
        assert [r["index"] for r in ring.peek()] == [0, 1, 2, 3, 4]
        drained = ring.drain()
        assert [r["index"] for r in drained] == [0, 1, 2, 3, 4]
        assert ring.retained == 0
        stats = check_accounting(ring)
        assert stats == {"capacity": 8, "pushed": 5, "retained": 0,
                         "drained": 5, "dropped": 0}

    def test_drain_empties_and_is_repeatable(self):
        ring = RingExporter(capacity=4)
        ring.push({"kind": "span"})
        assert len(ring.drain()) == 1
        assert ring.drain() == []
        check_accounting(ring)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            RingExporter(capacity=0)


class TestSaturation:
    def test_overwrites_oldest_and_counts_drops(self):
        ring = RingExporter(capacity=4)
        for index in range(11):
            ring.push({"kind": "span", "index": index})
        assert ring.saturated
        assert ring.retained == 4
        assert ring.dropped == 7
        # The survivors are exactly the newest `capacity` records,
        # still oldest-first.
        assert [r["index"] for r in ring.peek()] == [7, 8, 9, 10]
        stats = check_accounting(ring)
        assert stats["pushed"] == 11

    def test_accounting_holds_at_every_step(self):
        ring = RingExporter(capacity=3)
        for index in range(20):
            ring.push({"kind": "span", "index": index})
            check_accounting(ring)
            if index % 7 == 6:
                ring.drain()
                check_accounting(ring)

    def test_drain_after_saturation_resumes_cleanly(self):
        ring = RingExporter(capacity=2)
        for index in range(5):
            ring.push({"kind": "span", "index": index})
        assert [r["index"] for r in ring.drain()] == [3, 4]
        ring.push({"kind": "span", "index": 99})
        assert [r["index"] for r in ring.peek()] == [99]
        stats = check_accounting(ring)
        assert stats["dropped"] == 3
        assert stats["drained"] == 2


class TestRendering:
    def test_drain_json_round_trips(self):
        ring = RingExporter(capacity=4)
        for index in range(6):
            ring.push({"kind": "span", "index": index})
        document = json.loads(ring.drain_json())
        assert [r["index"] for r in document["records"]] == [2, 3, 4, 5]
        assert document["exporter"]["dropped"] == 2
        assert ring.retained == 0

    def test_snapshot_renders_to_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("demo_total").inc(3)
        ring = RingExporter(capacity=4)
        ring.push_snapshot(registry, label="mid-run")
        ring.push({"kind": "span", "name": "ignored"})
        text = ring.drain_prometheus()
        assert 'demo_total{snapshot="mid-run"} 3' in text
        assert "obs_exporter_pushed 2" in text
        assert "obs_exporter_drained 2" in text
        assert "ignored" not in text


class TestContextIntegration:
    def test_finish_raises_obs403_advisory_on_drops(self):
        # Saturate a tiny ring through the real span pipeline: the
        # context must report the loss as an *advisory* (clean stays
        # True — degraded telemetry, not a broken run).
        context = ObsContext(scenario="sat", sample_rate=1,
                             export_capacity=2)
        from repro.sim.events import EventScheduler

        scheduler = context.attach_scheduler(EventScheduler())
        for index in range(6):
            with context.spans.span(f"s{index}"):
                pass
        context.finish()
        stats = context.exporter.stats()
        assert stats["dropped"] > 0
        check_accounting(context.exporter)
        codes = [issue.code for issue in context.issues]
        assert "OBS403" in codes
        assert context.clean
        assert any(issue.code == "OBS403"
                   for issue in context.advisories)

    def test_unsaturated_finish_has_no_advisory(self):
        context = ObsContext(scenario="ok", sample_rate=1)
        from repro.sim.events import EventScheduler

        context.attach_scheduler(EventScheduler())
        with context.spans.span("only"):
            pass
        context.finish()
        assert context.exporter.dropped == 0
        assert not context.advisories
        assert context.clean
