"""Administrative scoping tests (paper §1)."""

import numpy as np
import pytest

from repro.core.admin import AdminScopedAllocator
from repro.core.allocator import VisibleSet
from repro.routing.admin_scoping import (
    AdminScopeMap,
    ScopeZone,
    zones_from_labels,
)
from repro.topology.mbone import MboneParams, generate_mbone


@pytest.fixture
def two_zone_map():
    """10 nodes: zone A = {0..4}, zone B = {5..9}, same range 100..200
    (reuse), plus a nested campus zone {0, 1} on 200..210."""
    scope_map = AdminScopeMap(10)
    scope_map.add_zone(ScopeZone("west", frozenset(range(5)), 100, 200))
    scope_map.add_zone(ScopeZone("east", frozenset(range(5, 10)),
                                 100, 200))
    scope_map.add_zone(ScopeZone("campus", frozenset({0, 1}), 200, 210))
    return scope_map


class TestScopeZone:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScopeZone("empty", frozenset(), 0, 10)
        with pytest.raises(ValueError):
            ScopeZone("bad", frozenset({1}), 10, 10)
        with pytest.raises(ValueError):
            ScopeZone("bad", frozenset({1}), -1, 10)

    def test_membership(self):
        zone = ScopeZone("z", frozenset({1, 2}), 5, 9)
        assert zone.contains_node(1)
        assert not zone.contains_node(3)
        assert zone.contains_address(5)
        assert not zone.contains_address(9)
        assert zone.range_size == 4


class TestAdminScopeMap:
    def test_zones_of(self, two_zone_map):
        assert {z.name for z in two_zone_map.zones_of(0)} == \
            {"west", "campus"}
        assert {z.name for z in two_zone_map.zones_of(7)} == {"east"}

    def test_zone_for_address(self, two_zone_map):
        assert two_zone_map.zone_for_address(0, 150).name == "west"
        assert two_zone_map.zone_for_address(7, 150).name == "east"
        assert two_zone_map.zone_for_address(0, 205).name == "campus"
        assert two_zone_map.zone_for_address(7, 205) is None

    def test_scoped_traffic_confined(self, two_zone_map):
        reach = two_zone_map.reachable(0, 150)
        assert reach[:5].all()
        assert not reach[5:].any()

    def test_unscoped_traffic_floods(self, two_zone_map):
        assert two_zone_map.reachable(0, 50).all()

    def test_symmetry_property(self, two_zone_map):
        """The paper's contrast with TTL scoping: admin scoping is
        symmetric."""
        for a in range(10):
            for b in range(10):
                for address in (150, 205, 50):
                    assert two_zone_map.visible_symmetric(a, b, address)

    def test_same_range_reuse_requires_disjoint(self):
        scope_map = AdminScopeMap(4)
        scope_map.add_zone(ScopeZone("a", frozenset({0, 1}), 0, 10))
        with pytest.raises(ValueError):
            scope_map.add_zone(ScopeZone("b", frozenset({1, 2}), 0, 10))
        scope_map.add_zone(ScopeZone("c", frozenset({2, 3}), 0, 10))

    def test_partial_range_overlap_rejected(self):
        scope_map = AdminScopeMap(4)
        scope_map.add_zone(ScopeZone("a", frozenset({0}), 0, 10))
        with pytest.raises(ValueError):
            scope_map.add_zone(ScopeZone("b", frozenset({1}), 5, 15))

    def test_member_out_of_range_rejected(self):
        scope_map = AdminScopeMap(3)
        with pytest.raises(ValueError):
            scope_map.add_zone(ScopeZone("a", frozenset({5}), 0, 10))


class TestZonesFromLabels:
    def test_country_zones_on_mbone(self):
        topo = generate_mbone(MboneParams(total_nodes=150, seed=42))
        zones = zones_from_labels(topo, prefix_depth=2,
                                  range_lo=0, range_hi=256)
        names = {z.name for z in zones}
        assert any("europe/uk" in n for n in names)
        assert any("north-america/usa" in n for n in names)
        # Zones partition the nodes (hubs form their own groups).
        total = sum(len(z.members) for z in zones)
        assert total == topo.num_nodes
        # All zones share the range and are disjoint: loadable.
        scope_map = AdminScopeMap(topo.num_nodes, zones)
        assert len(scope_map.zones) == len(zones)


class TestAdminScopedAllocator:
    def test_allocates_within_zone_range(self, two_zone_map, rng):
        allocator = AdminScopedAllocator(two_zone_map, node=7,
                                         space_size=300, rng=rng)
        for __ in range(30):
            result = allocator.allocate(63, VisibleSet.empty())
            assert 100 <= result.address < 200

    def test_prefers_smallest_zone(self, two_zone_map, rng):
        allocator = AdminScopedAllocator(two_zone_map, node=0,
                                         space_size=300, rng=rng)
        result = allocator.allocate(63, VisibleSet.empty())
        assert 200 <= result.address < 210  # campus, not west

    def test_full_packing_with_symmetric_visibility(self, two_zone_map):
        """The paper's claim: IR packs an admin zone completely."""
        rng = np.random.default_rng(0)
        allocator = AdminScopedAllocator(two_zone_map, node=7,
                                         space_size=300, rng=rng)
        used = []
        for __ in range(100):  # zone has exactly 100 addresses
            view = VisibleSet(
                np.asarray(used, dtype=np.int64),
                np.full(len(used), 63, dtype=np.int64),
            )
            result = allocator.allocate(63, view)
            assert not result.forced
            assert result.address not in used
            used.append(result.address)
        assert len(set(used)) == 100

    def test_no_zone_falls_back_to_space(self, rng):
        scope_map = AdminScopeMap(3)
        allocator = AdminScopedAllocator(scope_map, node=0,
                                         space_size=50, rng=rng)
        result = allocator.allocate(63, VisibleSet.empty())
        assert 0 <= result.address < 50
