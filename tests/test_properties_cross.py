"""Cross-cutting property tests over all allocation algorithms.

Invariants every allocator must satisfy for arbitrary visible sets:

* the chosen address is inside the space;
* if the algorithm is informed and its target range has free
  addresses, a visible address is never chosen (and forced=False);
* allocation is a pure function of (rng state, ttl, visible): two
  identically-seeded instances agree.

Plus protocol-level fuzz: the SAP codec never crashes on arbitrary
bytes, and SDP parsing either round-trips or raises ValueError.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.adaptive_legacy import LegacyAdaptiveIprmaAllocator
from repro.core.allocator import VisibleSet
from repro.core.hybrid import HybridIprmaAllocator
from repro.core.informed import InformedRandomAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.core.random_alloc import RandomAllocator
from repro.sap.messages import SapMessage
from repro.sap.sdp import SessionDescription

SPACE = 300
PAPER_TTLS = (1, 15, 31, 47, 63, 127, 191)

ALLOCATOR_FACTORIES = [
    lambda rng: RandomAllocator(SPACE, rng),
    lambda rng: InformedRandomAllocator(SPACE, rng),
    lambda rng: StaticIprmaAllocator.three_band(SPACE, rng),
    lambda rng: StaticIprmaAllocator.seven_band(SPACE, rng),
    lambda rng: AdaptiveIprmaAllocator.aipr1(SPACE, rng=rng),
    lambda rng: AdaptiveIprmaAllocator.aipr3(SPACE, rng=rng),
    lambda rng: HybridIprmaAllocator(SPACE, rng=rng),
    lambda rng: LegacyAdaptiveIprmaAllocator(SPACE, mode="push",
                                             rng=rng),
    lambda rng: LegacyAdaptiveIprmaAllocator(SPACE, mode="proportional",
                                             rng=rng),
]

visible_sets = st.lists(
    st.tuples(st.integers(0, SPACE - 1), st.sampled_from(PAPER_TTLS)),
    max_size=80,
).map(lambda pairs: VisibleSet(
    np.array([a for a, __ in pairs], dtype=np.int64),
    np.array([t for __, t in pairs], dtype=np.int64),
))


class TestAllocatorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(visible=visible_sets, ttl=st.sampled_from(PAPER_TTLS),
           seed=st.integers(0, 2 ** 31))
    def test_address_always_in_space(self, visible, ttl, seed):
        for factory in ALLOCATOR_FACTORIES:
            allocator = factory(np.random.default_rng(seed))
            result = allocator.allocate(ttl, visible)
            assert 0 <= result.address < SPACE

    @settings(max_examples=40, deadline=None)
    @given(visible=visible_sets, ttl=st.sampled_from(PAPER_TTLS),
           seed=st.integers(0, 2 ** 31))
    def test_unforced_informed_never_reuses_visible(self, visible, ttl,
                                                    seed):
        used = set(visible.addresses.tolist())
        for factory in ALLOCATOR_FACTORIES[1:]:  # skip pure random
            allocator = factory(np.random.default_rng(seed))
            result = allocator.allocate(ttl, visible)
            if not result.forced:
                assert result.address not in used

    @settings(max_examples=25, deadline=None)
    @given(visible=visible_sets, ttl=st.sampled_from(PAPER_TTLS),
           seed=st.integers(0, 2 ** 31))
    def test_deterministic_given_seed(self, visible, ttl, seed):
        for factory in ALLOCATOR_FACTORIES:
            first = factory(np.random.default_rng(seed)).allocate(
                ttl, visible
            )
            second = factory(np.random.default_rng(seed)).allocate(
                ttl, visible
            )
            assert first == second

    @settings(max_examples=25, deadline=None)
    @given(visible=visible_sets, seed=st.integers(0, 2 ** 31))
    def test_partitioned_allocators_respect_band_order(self, visible,
                                                       seed):
        """For band-based allocators, a higher TTL never lands at a
        lower address than a lower TTL would in the same world state
        (bands are TTL-ordered in address space)."""
        for factory in (
            lambda rng: AdaptiveIprmaAllocator.aipr1(SPACE, rng=rng),
            lambda rng: HybridIprmaAllocator(SPACE, rng=rng),
        ):
            allocator = factory(np.random.default_rng(seed))
            geometry = allocator.band_geometry(visible)
            for (lo_a, hi_a), (lo_b, hi_b) in zip(geometry,
                                                  geometry[1:]):
                assert hi_a <= lo_b or lo_a == 0


class TestCodecFuzz:
    @settings(max_examples=200)
    @given(st.binary(max_size=64))
    def test_sap_decode_never_crashes(self, data):
        try:
            message = SapMessage.decode(data)
        except ValueError:
            return
        # Anything decoded must re-encode to something decodable.
        again = SapMessage.decode(message.encode())
        assert again.msg_type == message.msg_type
        assert again.msg_id_hash == message.msg_id_hash

    @settings(max_examples=200)
    @given(st.text(max_size=200))
    def test_sdp_parse_never_crashes(self, text):
        try:
            description = SessionDescription.parse(text)
        except ValueError:
            return
        # Successful parses must survive a round trip.
        assert SessionDescription.parse(description.format()) == \
            description
