"""Multicast address space tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.address_space import (
    MULTICAST_TOTAL,
    MulticastAddressSpace,
    int_to_ip,
    ip_to_int,
)


class TestIpConversion:
    def test_roundtrip_known(self):
        assert ip_to_int("224.2.128.0") == 0xE0028000
        assert int_to_ip(0xE0028000) == "224.2.128.0"

    def test_malformed_rejected(self):
        for bad in ("224.2.128", "224.2.128.0.1", "224.2.128.300",
                    "a.b.c.d"):
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_int_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            int_to_ip(2 ** 32)
        with pytest.raises(ValueError):
            int_to_ip(-1)

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_property_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestMulticastAddressSpace:
    def test_sdr_dynamic(self):
        space = MulticastAddressSpace.sdr_dynamic()
        assert space.size == 65_536
        assert space.index_to_ip(0) == "224.2.128.0"
        assert space.index_to_ip(65_535) == "224.3.127.255"

    def test_admin_local(self):
        space = MulticastAddressSpace.admin_local_scope()
        assert space.index_to_ip(0) == "239.255.0.0"

    def test_full_ipv4(self):
        space = MulticastAddressSpace.full_ipv4()
        assert space.size == MULTICAST_TOTAL == 2 ** 28

    def test_abstract(self):
        space = MulticastAddressSpace.abstract(1000)
        assert len(space) == 1000
        assert space.contains_index(999)
        assert not space.contains_index(1000)

    def test_index_bounds(self):
        space = MulticastAddressSpace.abstract(10)
        with pytest.raises(IndexError):
            space.index_to_ip(10)
        with pytest.raises(IndexError):
            space.index_to_ip(-1)

    def test_ip_to_index_roundtrip(self):
        space = MulticastAddressSpace.abstract(500)
        for index in (0, 123, 499):
            assert space.ip_to_index(space.index_to_ip(index)) == index

    def test_ip_outside_block_rejected(self):
        space = MulticastAddressSpace.abstract(10)
        with pytest.raises(ValueError):
            space.ip_to_index("239.255.0.0")

    def test_non_multicast_base_rejected(self):
        with pytest.raises(ValueError):
            MulticastAddressSpace(ip_to_int("10.0.0.0"), 10)

    def test_block_overflow_rejected(self):
        with pytest.raises(ValueError):
            MulticastAddressSpace(ip_to_int("239.255.255.0"), 10_000)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MulticastAddressSpace.abstract(0)
