"""Session browser and session lifetime tests."""

import numpy as np
import pytest

from repro.core.address_space import MulticastAddressSpace
from repro.core.informed import InformedRandomAllocator
from repro.sap.browser import SessionBrowser
from repro.sap.directory import SessionDirectory
from repro.sap.sdp import MediaStream
from repro.sim.events import EventScheduler
from repro.sim.network import NetworkModel

SPACE = MulticastAddressSpace.abstract(256)


def full_mesh(source, ttl):
    return [(node, 0.01) for node in range(4)]


@pytest.fixture
def world():
    sched = EventScheduler()
    net = NetworkModel(sched, full_mesh)

    def make(node):
        rng = np.random.default_rng(node)
        return SessionDirectory(
            node, sched, net,
            InformedRandomAllocator(SPACE.size, rng), SPACE, rng=rng,
        )

    return sched, make(0), make(1)


class TestBrowser:
    def test_lists_cached_and_own(self, world):
        sched, alice, bob = world
        alice.create_session("remote talk", ttl=63)
        bob.create_session("my talk", ttl=63)
        sched.run(until=1.0)
        browser = SessionBrowser(bob)
        rows = browser.entries()
        assert {row.name for row in rows} == {"remote talk", "my talk"}
        own_flags = {row.name: row.own for row in rows}
        assert own_flags["my talk"] is True
        assert own_flags["remote talk"] is False
        assert len(browser) == 2

    def test_active_and_upcoming(self, world):
        sched, alice, bob = world
        alice.create_session("live now", ttl=63)
        alice.create_session("later", ttl=63, start=10_000)
        alice.create_session("over", ttl=63, start=1, stop=2)
        sched.run(until=5.0)
        browser = SessionBrowser(bob)
        assert {r.name for r in browser.active()} == {"live now"}
        assert {r.name for r in browser.upcoming()} == {"later"}

    def test_by_scope(self, world):
        sched, alice, bob = world
        alice.create_session("local", ttl=15)
        alice.create_session("global", ttl=191)
        sched.run(until=1.0)
        browser = SessionBrowser(bob)
        assert {r.name for r in browser.by_scope(63)} == {"local"}
        with pytest.raises(ValueError):
            browser.by_scope(0)

    def test_with_media(self, world):
        sched, alice, bob = world
        alice.create_session("audio only", ttl=63,
                             media=[MediaStream("audio", 5004)])
        alice.create_session("video too", ttl=63,
                             media=[MediaStream("audio", 5004),
                                    MediaStream("video", 5006)])
        sched.run(until=1.0)
        browser = SessionBrowser(bob)
        assert len(browser.with_media("video")) == 1
        assert len(browser.with_media("audio")) == 2
        assert len(browser.with_media("whiteboard")) == 0

    def test_search(self, world):
        sched, alice, bob = world
        alice.create_session("IETF plenary", ttl=63,
                             info="mbone working group")
        alice.create_session("lunch", ttl=63)
        sched.run(until=1.0)
        browser = SessionBrowser(bob)
        assert {r.name for r in browser.search("ietf")} == \
            {"IETF plenary"}
        assert {r.name for r in browser.search("MBONE")} == \
            {"IETF plenary"}
        assert browser.search("nothing") == []


class TestSessionLifetime:
    def test_session_expires_and_is_withdrawn(self, world):
        sched, alice, bob = world
        alice.create_session("short", ttl=63, lifetime=100.0)
        sched.run(until=1.0)
        assert len(bob.cache) == 1
        sched.run(until=200.0)
        assert alice.own_sessions() == []
        assert len(bob.cache) == 0  # deletion message removed it

    def test_manual_delete_before_expiry_is_safe(self, world):
        sched, alice, bob = world
        session = alice.create_session("short", ttl=63, lifetime=100.0)
        sched.run(until=1.0)
        alice.delete_session(session)
        # The expiry timer fires later and must be a no-op.
        sched.run(until=200.0)
        assert alice.own_sessions() == []

    def test_unbounded_sessions_stay(self, world):
        sched, alice, bob = world
        alice.create_session("forever", ttl=63)
        sched.run(until=10_000.0)
        assert len(alice.own_sessions()) == 1
