"""Fig. 11: mapping of TTL values to IPRMA partitions (margin 2).

The paper's rule yields one partition per TTL at the bottom of the
range, widening towards TTL 255, with ~55 partitions at margin 2 (our
ceil-based reading gives 54).
"""

from repro.core.partitions import margin_partition_map


def test_fig11_partition_map(benchmark, record_series):
    pm = benchmark(lambda: margin_partition_map(2))

    rows = []
    for band in range(pm.num_bands):
        lo, hi = pm.ttl_range(band)
        rows.append((band, lo, hi, hi - lo + 1))
    record_series(
        "fig11_partitions",
        f"Fig. 11 — TTL -> partition map, margin 2 "
        f"({pm.num_bands} partitions; paper: 55)",
        ["partition", "ttl lo", "ttl hi", "width"],
        rows,
    )

    assert 50 <= pm.num_bands <= 58
    # One TTL per partition at the bottom of the range.
    assert pm.ttl_range(0) == (1, 1)
    assert pm.ttl_range(1) == (2, 2)
    # Highest band narrower than the DVMRP infinity of 32.
    top_lo, top_hi = pm.ttl_range(pm.num_bands - 1)
    assert top_hi - top_lo + 1 < 32
    assert top_hi == 255
