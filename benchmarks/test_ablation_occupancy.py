"""Ablation: the 67% target band occupancy (DESIGN.md §6).

The paper picks 67% from fig. 6.  This sweep varies the target
occupancy of Deterministic Adaptive IPRMA and measures steady-state
capacity: too-high occupancy leaves no headroom for churn, too-low
occupancy wastes the space in half-empty bands.
"""

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.experiments.steady_state import allocations_at_half_clash
from repro.experiments.ttl_distributions import DS4

OCCUPANCIES = (0.4, 0.67, 0.9)


def test_ablation_occupancy(benchmark, record_series, mbone_scope_map,
                            space_sizes, bench_trials):
    space = space_sizes[-1]
    trials = max(4, bench_trials)

    def run():
        values = {}
        for occupancy in OCCUPANCIES:
            factory = (lambda occ: lambda n, rng: AdaptiveIprmaAllocator(
                n, gap_fraction=0.2, occupancy=occ, rng=rng
            ))(occupancy)
            values[occupancy] = allocations_at_half_clash(
                mbone_scope_map, factory, space, DS4,
                trials=trials, seed=21,
            )
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_occupancy",
        f"Ablation — target band occupancy (space {space})",
        ["occupancy", "allocations@0.5"],
        [(occ, values[occ]) for occ in OCCUPANCIES],
    )
    # All settings must achieve something non-trivial.
    assert all(v > 5 for v in values.values())
