"""Fleet baseline: parallel speedup, per-shard overhead, determinism.

Collects the BENCH_fleet payload — serial-vs-parallel wall clock for
a blocking sweep and a CPU-bound sweep, per-shard dispatch overhead,
and the serial==parallel byte-identity probe — and persists it to
``benchmarks/results/BENCH_fleet.json`` for trend comparison.

The hard speedup gate reads the **blocking** sweep: its ideal speedup
at N workers is N regardless of core count, so the >= 2x assertion
holds even on a single-core CI box.  CPU-bound speedup is recorded
for context but bounded by the host's cores, so it is not asserted.

Scale knobs: ``REPRO_BENCH_FLEET_JOBS`` (default 4) and
``REPRO_BENCH_FLEET_SHARDS`` (default 8).
"""

import json
import os
from pathlib import Path

from repro.fleet.bench import collect_baseline

RESULTS_DIR = Path(__file__).parent / "results"


def test_fleet_baseline(benchmark, record_series):
    jobs = int(os.environ.get("REPRO_BENCH_FLEET_JOBS", 4))
    shards = int(os.environ.get("REPRO_BENCH_FLEET_SHARDS", 8))

    def run():
        return collect_baseline(seed=1998, jobs=jobs, shards=shards)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    blocking = payload["blocking"]
    cpu = payload["cpu_bound"]
    overhead = payload["overhead"]
    record_series(
        "bench_fleet",
        "Fleet baseline — sweep speedup and per-shard overhead",
        ["measurement", "value"],
        [
            ("workers", f"{jobs}"),
            ("host cpus", f"{payload['host']['cpu_count']}"),
            ("blocking serial s",
             f"{blocking['serial']['seconds']:.3f}"),
            ("blocking parallel s",
             f"{blocking['parallel']['seconds']:.3f}"),
            ("blocking speedup", f"{blocking['speedup']:.2f}x"),
            ("cpu-bound speedup", f"{cpu['speedup']:.2f}x"),
            ("inline us/shard",
             f"{overhead['inline_per_shard'] * 1e6:.0f}"),
            ("process us/shard",
             f"{overhead['process_per_shard'] * 1e6:.0f}"),
            ("serial == parallel bytes",
             str(payload["determinism"]["identical"])),
        ],
    )

    # Every load shape completed every shard, cleanly.
    for section in (blocking, cpu):
        assert section["serial"]["complete"]
        assert section["parallel"]["complete"]
        assert section["serial"]["issues"] == 0
        assert section["parallel"]["issues"] == 0

    # The acceptance gate: >= 2x wall-clock speedup at 4 workers on
    # the blocking sweep (8 x 0.1 s of sleep: 0.8 s serial vs 0.2 s
    # ideal parallel; 2x leaves a wide margin for dispatch overhead).
    assert blocking["speedup"] >= 2.0

    # Dispatch overhead stays bounded: a worker-process round trip
    # costs real fork/pipe/join time, but under a second per shard.
    assert overhead["process_per_shard"] < 1.0

    # And the headline contract, measured on the real executor.
    assert payload["determinism"]["identical"] is True
