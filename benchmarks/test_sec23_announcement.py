"""§2.3: announcement delay/loss arithmetic and the 16,496 headline.

Paper values: mean effective delay ~12 s (2% loss, 200 ms e2e, 10-min
re-announcement); ~0.1% of sessions invisible; ~16,496 concurrent
sessions for a 65,536-address space in 8 IPRMA partitions at i=0.001m;
an exponential back-off start (5 s retry) cuts the delay to ~0.3 s.
"""

from repro.analysis.announcement import (
    ExponentialBackoffSchedule,
    invisible_fraction,
    mean_announcement_delay,
    paper_two_term_delay,
)
from repro.analysis.clash_model import iprma_concurrent_sessions


def test_sec23_announcement_numbers(benchmark, record_series):
    def run():
        schedule = ExponentialBackoffSchedule()
        two_term = paper_two_term_delay()
        geometric = mean_announcement_delay()
        backoff = schedule.mean_discovery_delay()
        return {
            "two_term_delay_s": two_term,
            "geometric_delay_s": geometric,
            "invisible_fraction": invisible_fraction(two_term),
            "backoff_delay_s": backoff,
            "backoff_i_fraction": schedule.i_fraction(),
            "iprma_concurrent_sessions": iprma_concurrent_sessions(),
        }

    values = benchmark(run)
    record_series(
        "sec23_announcement",
        "§2.3 — announcement model (paper values: 12 s, ~0.1%, "
        "16,496 sessions, ~0.3 s with back-off)",
        ["quantity", "measured", "paper"],
        [
            ("mean delay (10-min fixed interval)",
             round(values["two_term_delay_s"], 3), "~12 s"),
            ("mean delay (geometric retransmit)",
             round(values["geometric_delay_s"], 3), "-"),
            ("invisible session fraction",
             round(values["invisible_fraction"], 6), "~0.001"),
            ("concurrent sessions, 65,536/8 @ i=0.001m",
             values["iprma_concurrent_sessions"], "16,496"),
            ("mean delay (5 s exponential back-off)",
             round(values["backoff_delay_s"], 3), "~0.3 s"),
            ("back-off i fraction",
             round(values["backoff_i_fraction"], 7), "~0.00005"),
        ],
    )

    assert 11.9 < values["two_term_delay_s"] < 12.5
    assert 0.0005 < values["invisible_fraction"] < 0.0015
    assert abs(values["iprma_concurrent_sessions"] - 16_496) < 100
    assert 0.25 < values["backoff_delay_s"] < 0.35
