"""Fig. 15: simulated multicast request-response (uniform delay).

Four configurations, as in the paper: A/B shortest-path vs shared tree
with delay ~ distance, C/D the same with per-packet random jitter.
Shape: responses fall with D2, grow with the number of sites, and the
routing choice makes only a small difference.
"""

import numpy as np

from repro.experiments.request_response import (
    RequestResponseConfig,
    simulate_request_response,
)

D2_VALUES = [0.2, 0.8, 3.2, 12.8, 51.2]

CONFIGS = {
    "A: spt, delay~dist": dict(routing="spt", jitter=0.0),
    "B: shared, delay~dist": dict(routing="shared", jitter=0.0),
    "C: spt, dist+random": dict(routing="spt", jitter=0.02),
    "D: shared, dist+random": dict(routing="shared", jitter=0.02),
}


def test_fig15_response_simulation(benchmark, record_series,
                                   doar_topologies, bench_trials):
    trials = max(5, bench_trials)

    def run():
        results = {}
        for label, overrides in CONFIGS.items():
            for size, doar in doar_topologies.items():
                for d2 in D2_VALUES:
                    config = RequestResponseConfig(
                        d2=d2, timer="uniform", trials=trials, seed=15,
                        **overrides,
                    )
                    results[(label, size, d2)] = \
                        simulate_request_response(doar, config)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (label, size, d2, round(r.mean_responses, 2))
        for (label, size, d2), r in sorted(results.items())
    ]
    record_series(
        "fig15_response_sim",
        "Fig. 15 — simulated responders, uniform delay",
        ["config", "sites", "D2 (s)", "mean responses"],
        rows,
    )

    sizes = sorted(doar_topologies)
    big = sizes[-1]
    for label in CONFIGS:
        # Responses fall monotonically (within noise) with D2.
        series = [results[(label, big, d2)].mean_responses
                  for d2 in D2_VALUES]
        assert series[-1] < series[0]
        assert series[-1] < 6.0
        # And grow with the number of sites at small D2.
        assert results[(label, big, 0.2)].mean_responses >= \
            results[(label, sizes[0], 0.2)].mean_responses * 0.8
    # SPT vs shared tree: small difference (within ~3x either way).
    for d2 in (0.8, 12.8):
        spt = results[("A: spt, delay~dist", big, d2)].mean_responses
        shared = results[("B: shared, delay~dist", big,
                          d2)].mean_responses
        assert spt / shared < 3.0 and shared / spt < 3.0
