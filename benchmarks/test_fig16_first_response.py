"""Fig. 16: delay before the first response (uniform delay, SPT).

Shape: the first response arrives after O(D2) for small groups (one
responder somewhere in the interval) but much sooner for large groups
(the minimum of many uniform draws), with the maximum delay tracking
D2.
"""

from repro.experiments.request_response import (
    RequestResponseConfig,
    simulate_request_response,
)

D2_VALUES = [0.8, 3.2, 12.8, 51.2, 204.8]


def test_fig16_first_response_delay(benchmark, record_series,
                                    doar_topologies, bench_trials):
    trials = max(5, bench_trials)

    def run():
        results = {}
        for size, doar in doar_topologies.items():
            for d2 in D2_VALUES:
                config = RequestResponseConfig(
                    d2=d2, timer="uniform", routing="spt",
                    trials=trials, seed=16,
                )
                results[(size, d2)] = simulate_request_response(doar,
                                                                config)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "fig16_first_response",
        "Fig. 16 — time of first response, uniform delay",
        ["sites", "D2 (s)", "mean delay (s)", "max delay (s)"],
        [(size, d2, round(r.mean_first_delay, 3),
          round(r.max_first_delay, 3))
         for (size, d2), r in sorted(results.items())],
    )

    sizes = sorted(doar_topologies)
    small, big = sizes[0], sizes[-1]
    for size in sizes:
        # Mean first-response delay grows with D2...
        series = [results[(size, d2)].mean_first_delay
                  for d2 in D2_VALUES]
        assert series[-1] > series[0]
        # ...and stays below D2 plus propagation.
        for d2, value in zip(D2_VALUES, series):
            assert value < d2 + 1.0
    # Larger groups hear a first response sooner (min of more draws).
    assert results[(big, 51.2)].mean_first_delay < \
        results[(small, 51.2)].mean_first_delay
