"""Fig. 19: responses vs first-response delay, uniform vs exponential.

The paper's conclusion: both distributions can reach the "around two
responses and one second delay" operating point, but the uniform delay
is very sensitive to the receiver-set size while a single exponential
D2 works across the whole range — "much simpler to deploy".
"""

import numpy as np

from repro.experiments.request_response import (
    RequestResponseConfig,
    simulate_request_response,
)

D2_UNIFORM = [0.2, 0.8, 3.2, 12.8, 51.2, 204.8]
D2_EXPONENTIAL = [0.2, 0.8, 1.6, 3.2, 6.4, 12.8]


def test_fig19_tradeoff(benchmark, record_series, doar_topologies,
                        bench_trials):
    trials = max(5, bench_trials)
    sizes = sorted(doar_topologies)

    def run():
        results = {}
        for timer, d2_values in (("uniform", D2_UNIFORM),
                                 ("exponential", D2_EXPONENTIAL)):
            for d2 in d2_values:
                for n in sizes:
                    config = RequestResponseConfig(
                        d2=d2, timer=timer, routing="spt",
                        trials=trials, seed=19,
                    )
                    results[(timer, d2, n)] = simulate_request_response(
                        doar_topologies[n], config
                    )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "fig19_tradeoff",
        "Fig. 19 — mean responses vs time of first response",
        ["timer", "D2 (s)", "sites", "responses", "first delay (s)"],
        [(timer, d2, n, round(r.mean_responses, 2),
          round(r.mean_first_delay, 3))
         for (timer, d2, n), r in sorted(results.items())],
    )

    small, big = sizes[0], sizes[-1]
    # Uniform: the D2 needed for few responses depends strongly on n.
    uniform_spread = [
        results[("uniform", 12.8, n)].mean_responses for n in sizes
    ]
    assert max(uniform_spread) > 1.5 * min(uniform_spread)
    # Exponential: one D2 gives acceptable behaviour across all sizes.
    for n in sizes:
        r = results[("exponential", 6.4, n)]
        assert r.mean_responses < 4.0
        assert r.mean_first_delay < 15.0
    # The paper's operating point is reachable: ~2 responses within a
    # few seconds for the largest group.
    sweet = results[("exponential", 3.2, big)]
    assert sweet.mean_responses < 4.0
