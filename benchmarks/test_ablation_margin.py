"""Ablation: margin of safety m in the §2.4.1 partition rule.

m = 1 tracks typical hop counts exactly (fewest partitions, widest
bands); larger m gives more, narrower partitions — safer against odd
boundary policies but with each band holding fewer TTL values.
"""

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.partitions import margin_partition_map
from repro.experiments.allocation_run import allocations_before_first_clash
from repro.experiments.ttl_distributions import DS4

import numpy as np

MARGINS = (1, 2, 3)


def test_ablation_margin(benchmark, record_series, mbone_scope_map,
                         space_sizes, bench_trials):
    space = space_sizes[-1]

    def run():
        out = {}
        for margin in MARGINS:
            pm = margin_partition_map(margin)
            factory = (lambda edges: lambda n, rng:
                       AdaptiveIprmaAllocator(n, gap_fraction=0.2,
                                              edges=edges, rng=rng)
                       )(pm.edges)
            counts = [
                allocations_before_first_clash(
                    mbone_scope_map, factory, space, DS4,
                    np.random.default_rng((22, margin, t)),
                    max_allocations=space * 8,
                )
                for t in range(max(3, bench_trials))
            ]
            out[margin] = (pm.num_bands, float(np.mean(counts)))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_margin",
        f"Ablation — partition-rule margin of safety (space {space})",
        ["margin", "partitions", "mean allocations before clash"],
        [(m, out[m][0], round(out[m][1], 1)) for m in MARGINS],
    )
    # More margin => more partitions.
    assert out[1][0] < out[2][0] < out[3][0]
    # Every margin still allocates a meaningful number of sessions.
    assert all(mean > 10 for __, mean in out.values())
