"""Fig. 6: allocations per partition at clash-prob 0.5 vs partition size.

Curves for i = 0.01m, 0.001m, 0.0001m, 0.00001m between the y=x and
y=sqrt(x) bounds; packing degrades as partitions grow; smaller i is
markedly better.
"""

import math

from repro.analysis.clash_model import fig6_series

SIZES = [100, 1000, 10_000, 100_000, 1_000_000]
FRACTIONS = (0.01, 0.001, 0.0001, 0.00001)


def test_fig06_clash_model(benchmark, record_series):
    curves = benchmark(lambda: fig6_series(SIZES, FRACTIONS))

    rows = []
    for i, size in enumerate(SIZES):
        rows.append((
            size,
            int(math.isqrt(size)),
            curves[0.01][i],
            curves[0.001][i],
            curves[0.0001][i],
            curves[0.00001][i],
            size,
        ))
    record_series(
        "fig06_clash_model",
        "Fig. 6 — allocations in a partition at clash-prob 0.5",
        ["space", "sqrt(x) bound", "i=0.01m", "i=0.001m", "i=0.0001m",
         "i=0.00001m", "y=x bound"],
        rows,
    )

    for i, size in enumerate(SIZES):
        ordered = [curves[f][i] for f in FRACTIONS]
        # Smaller i packs strictly better, and everything respects y=x.
        assert ordered == sorted(ordered)
        assert ordered[-1] <= size
        assert ordered[0] >= 0.3 * math.sqrt(size)
    # Packing fraction degrades with partition size (for fixed i).
    frac_small = curves[0.001][0] / SIZES[0]
    frac_large = curves[0.001][-1] / SIZES[-1]
    assert frac_small > frac_large
