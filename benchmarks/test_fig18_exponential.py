"""Fig. 18: responders with an exponential delay interval.

Two series, as in the paper's figure: the analytic expectation from
eq. 4 and the simulated behaviour of the continuous exponential delay
on generated topologies.  Shape: a sharp knee — beyond a modest D2 the
response count sits near the 1/ln 2 ~ 1.44 limit and grows only slowly
with group size.
"""

from repro.analysis.response_bounds import (
    EXPONENTIAL_LIMIT,
    exponential_expected_responses,
)
from repro.experiments.request_response import (
    RequestResponseConfig,
    simulate_request_response,
)

D2_VALUES = [0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6]
RTT = 0.2


def test_fig18_exponential(benchmark, record_series, doar_topologies,
                           bench_trials):
    trials = max(5, bench_trials)
    sizes = sorted(doar_topologies)

    def run():
        analytic = {}
        simulated = {}
        for d2 in D2_VALUES:
            d = max(1, int(d2 / RTT))
            for n in sizes:
                analytic[(n, d2)] = exponential_expected_responses(n, d)
            for n in sizes:
                config = RequestResponseConfig(
                    d2=d2, timer="exponential", routing="spt",
                    trials=trials, seed=18, rtt_estimate=RTT,
                )
                simulated[(n, d2)] = simulate_request_response(
                    doar_topologies[n], config
                ).mean_responses
        return analytic, simulated

    analytic, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n in sizes:
        for d2 in D2_VALUES:
            rows.append((n, d2, round(analytic[(n, d2)], 2),
                         round(simulated[(n, d2)], 2)))
    record_series(
        "fig18_exponential",
        "Fig. 18 — expected vs simulated responders, exponential delay "
        f"(limit 1/ln2 = {EXPONENTIAL_LIMIT:.3f})",
        ["sites", "D2 (s)", "eq. 4 bound", "simulated"],
        rows,
    )

    big = sizes[-1]
    # The analytic bound has its sharp knee: large at tiny D2, near the
    # 1.44 limit by D2 in the seconds.
    assert analytic[(big, 0.4)] > 10
    assert analytic[(big, 25.6)] < 2.0
    # The cut-off moves only slowly with group size.
    assert analytic[(big, 6.4)] < analytic[(sizes[0], 6.4)] * 3 + 1
    # Simulation respects the bound's regime (suppression can only
    # reduce responses further, modulo sampling noise).
    for n in sizes:
        assert simulated[(n, 25.6)] < 3.0
