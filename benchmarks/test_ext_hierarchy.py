"""Extension (§4.1): hierarchical prefix allocation vs flat allocation.

The paper's proposed successor design rests on two effects:

* prefixes are claimed on long timescales over a reliable channel, so
  regions are isolated — an invisible session in another region can
  never collide;
* "the lower-level scheme would only need to announce the addresses in
  use within the local region, and this improved locality means that
  more address-usage announcement messages can be sent increasing the
  timeliness significantly" — i.e. the regional invisibility fraction
  is much smaller than the global one.

We measure clash counts in three settings: flat allocation with a
global, partly-stale view; the hierarchy with the paper's timeliness
advantage; and — as an honest ablation — the hierarchy *without* the
timeliness advantage, where its denser per-prefix packing can actually
lose to flat allocation.
"""

import numpy as np

from repro.core.allocator import VisibleSet
from repro.core.hierarchy import HierarchicalAllocator, PrefixPool
from repro.core.informed import InformedRandomAllocator

NUM_REGIONS = 8
SESSIONS_PER_REGION = 40
SPACE = 1024
GLOBAL_INVISIBLE = 0.05
#: §4.1: regional announcements can run ~an order of magnitude more
#: frequently within the same bandwidth budget.
REGIONAL_INVISIBLE = 0.005
TRIALS = 10


def _mask_view(addresses, invisible, rng):
    keep = rng.random(len(addresses)) > invisible
    kept = np.asarray(addresses, dtype=np.int64)[keep]
    return VisibleSet(kept, np.full(len(kept), 63, dtype=np.int64))


def _run_flat(rng):
    allocator = InformedRandomAllocator(SPACE, rng)
    used, clashes = [], 0
    for __ in range(NUM_REGIONS * SESSIONS_PER_REGION):
        view = _mask_view(used, GLOBAL_INVISIBLE, rng)
        address = allocator.allocate(63, view).address
        if address in used:
            clashes += 1
        used.append(address)
    return clashes


def _run_hierarchical(rng, invisible):
    pool = PrefixPool(SPACE, NUM_REGIONS * 3)
    claimed = set()
    clashes = 0
    for region in range(NUM_REGIONS):
        allocator = HierarchicalAllocator(pool, region_id=region,
                                          grow_at=0.4, rng=rng)
        used_local = []
        for __ in range(SESSIONS_PER_REGION):
            allocator.observe_claims(claimed)
            allocator.ensure_capacity(len(used_local) + 1)
            view = _mask_view(used_local, invisible, rng)
            address = allocator.allocate(63, view).address
            if address in used_local:
                clashes += 1
            used_local.append(address)
        claimed.update(allocator.prefixes)
    return clashes


def test_ext_hierarchy_vs_flat(benchmark, record_series):
    def run():
        flat, timely, stale = [], [], []
        for trial in range(TRIALS):
            flat.append(_run_flat(np.random.default_rng((30, trial))))
            timely.append(_run_hierarchical(
                np.random.default_rng((31, trial)), REGIONAL_INVISIBLE
            ))
            stale.append(_run_hierarchical(
                np.random.default_rng((32, trial)), GLOBAL_INVISIBLE
            ))
        return (float(np.mean(flat)), float(np.mean(timely)),
                float(np.mean(stale)))

    flat_c, timely_c, stale_c = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    total = NUM_REGIONS * SESSIONS_PER_REGION
    record_series(
        "ext_hierarchy",
        f"Extension §4.1 — mean clashes over {total} allocations",
        ["scheme", "invisibility", "mean clashes"],
        [
            ("flat informed-random", GLOBAL_INVISIBLE, round(flat_c, 2)),
            ("hierarchical (timely regional announcements)",
             REGIONAL_INVISIBLE, round(timely_c, 2)),
            ("hierarchical (no timeliness advantage)",
             GLOBAL_INVISIBLE, round(stale_c, 2)),
        ],
    )

    # The paper's argument: locality buys timeliness, which buys
    # packing — the timely hierarchy must beat the flat scheme.
    assert timely_c < flat_c
    assert flat_c > 0
    # Without the timeliness advantage the hierarchy's denser prefixes
    # give up most of the win (it is not automatically better).
    assert stale_c >= timely_c
