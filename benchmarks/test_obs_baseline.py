"""Observability baseline: steady-state overhead and allocation latency.

Collects the BENCH_obs payload — the whole-stack bare-vs-observed
steady overhead (the headline number), the uninstrumented-vs-disabled-
vs-observed scheduler microbenchmark, instrumented ``allocate()``
latency, and a steady-scenario metric snapshot — and persists it to
``benchmarks/results/BENCH_obs.json`` for trend comparison.  Each run
appends one entry to the payload's ``trajectory`` list (seeded from
the previous file) so the observed-mode throughput trend is visible
PR over PR.

Wall-clock numbers are machine-dependent; most assertions below check
the layer's *structure* (the scenario ran, metrics accumulated, spans
sampled, no OBS4xx issues).  The one hard performance gate is the
always-on contract itself: full telemetry on the steady workload must
cost less than 5% (it cost 74% before the slot-table/sampling
rework), measured by a min-time estimator over interleaved rounds so
host noise cannot fail it spuriously.

Scale knobs: ``REPRO_BENCH_OBS_EVENTS`` (default 50000) sets the
microbenchmark drain size; ``REPRO_BENCH_OBS_STEADY_SPS`` (default
10, ~250k events) and ``REPRO_BENCH_OBS_STEADY_REPEATS`` (default 5)
size the steady overhead measurement.
"""

import json
import os
from pathlib import Path

from repro.obs.bench import collect_baseline

RESULTS_DIR = Path(__file__).parent / "results"

#: Trajectory entries kept in BENCH_obs.json (oldest dropped first).
TRAJECTORY_CAP = 20


def _load_prior_trajectory(path: Path) -> list:
    if not path.exists():
        return []
    try:
        prior = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    trajectory = prior.get("trajectory", [])
    return trajectory if isinstance(trajectory, list) else []


def test_obs_baseline(benchmark, record_series):
    num_events = int(os.environ.get("REPRO_BENCH_OBS_EVENTS", 50_000))
    steady_sps = int(os.environ.get("REPRO_BENCH_OBS_STEADY_SPS", 10))
    steady_repeats = int(
        os.environ.get("REPRO_BENCH_OBS_STEADY_REPEATS", 5)
    )

    def run():
        return collect_baseline(
            seed=1998, num_events=num_events,
            steady_repeats=steady_repeats,
            steady_sessions_per_site=steady_sps,
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    scheduler = payload["scheduler"]
    overhead = payload["steady_overhead"]
    allocation = payload["allocation"]
    steady = payload["steady"]

    # Observed-mode throughput trend, PR over PR: seed from the prior
    # file's trajectory, append this run, cap, persist.
    results_path = RESULTS_DIR / "BENCH_obs.json"
    trajectory = _load_prior_trajectory(results_path)
    trajectory.append({
        "events_run": overhead["events_run"],
        "bare_events_per_second": round(
            overhead["bare_events_per_second"], 1),
        "observed_events_per_second": round(
            overhead["observed_events_per_second"], 1),
        "observed_overhead_pct": round(
            overhead["observed_overhead_pct"], 2),
        "disabled_overhead_pct": round(
            scheduler["disabled_overhead_pct"], 2),
        "sample_rate": overhead["sample_rate"],
    })
    payload["trajectory"] = trajectory[-TRAJECTORY_CAP:]

    RESULTS_DIR.mkdir(exist_ok=True)
    results_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    record_series(
        "bench_obs",
        "Observability baseline — steady-state overhead and "
        "allocation latency",
        ["measurement", "value"],
        [
            ("steady observed overhead %",
             f"{overhead['observed_overhead_pct']:+.2f}"),
            ("steady bare events/s",
             f"{overhead['bare_events_per_second']:,.0f}"),
            ("steady observed events/s",
             f"{overhead['observed_events_per_second']:,.0f}"),
            ("steady events run",
             f"{overhead['events_run']:,}"),
            ("spans recorded / started",
             f"{overhead['spans_recorded']:,} / "
             f"{overhead['spans_started']:,}"),
            ("baseline events/s (micro)",
             f"{scheduler['baseline_events_per_second']:,.0f}"),
            ("disabled-path events/s (micro)",
             f"{scheduler['disabled_events_per_second']:,.0f}"),
            ("disabled overhead % (micro)",
             f"{scheduler['disabled_overhead_pct']:+.2f}"),
            ("allocate() mean us",
             f"{allocation['mean_seconds'] * 1e6:.2f}"),
            ("allocate() p99 us",
             f"{allocation['p99_seconds'] * 1e6:.2f}"),
            ("steady cache hit rate",
             f"{steady['cache_hit_rate']:.2%}"),
        ],
    )

    # Structure: the steady scenario really exercised the stack under
    # sampling — events ran, spans materialised with real nesting, the
    # exporter accounted for every record, and nothing raised OBS4xx.
    assert steady["events_run"] > 1_000
    assert steady["span_max_depth"] >= 2
    assert steady["spans_recorded"] > 0
    assert steady["spans_started"] >= steady["spans_recorded"]
    assert 0.0 < steady["cache_hit_rate"] < 1.0
    assert steady["issues"] == 0
    assert allocation["mean_seconds"] > 0
    stats = overhead["exporter"]
    assert stats["pushed"] == (stats["retained"] + stats["drained"]
                               + stats["dropped"])

    # The always-on contract: full telemetry (counters, sampled spans
    # and histograms, ring exporter) costs < 5% on the whole-stack
    # steady workload.  This is the number that was 74% before the
    # handle-table/sampling rework; the min-time interleaved estimator
    # keeps the measurement stable on noisy hosts.
    assert overhead["observed_overhead_pct"] < 5.0

    # The when-off contract targets < 2%; hosts are noisy, so the
    # hard ceiling here is deliberately loose (the recorded JSON is
    # the precise artifact).
    assert scheduler["disabled_overhead_pct"] < 25.0
