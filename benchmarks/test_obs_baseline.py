"""Observability baseline: scheduler overhead and allocation latency.

Collects the BENCH_obs payload — the uninstrumented-vs-disabled-vs-
observed scheduler throughput, instrumented ``allocate()`` latency,
and a steady-scenario metric snapshot — and persists it to
``benchmarks/results/BENCH_obs.json`` for trend comparison.

Wall-clock numbers are machine-dependent; the assertions below check
the layer's *structure* (the scenario ran, metrics accumulated, no
OBS4xx issues) and a deliberately loose overhead ceiling, not absolute
speed.

Scale knob: ``REPRO_BENCH_OBS_EVENTS`` (default 50000) sets the
microbenchmark drain size.
"""

import json
import os
from pathlib import Path

from repro.obs.bench import collect_baseline

RESULTS_DIR = Path(__file__).parent / "results"


def test_obs_baseline(benchmark, record_series):
    num_events = int(os.environ.get("REPRO_BENCH_OBS_EVENTS", 50_000))

    def run():
        return collect_baseline(seed=1998, num_events=num_events)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    scheduler = payload["scheduler"]
    allocation = payload["allocation"]
    steady = payload["steady"]
    record_series(
        "bench_obs",
        "Observability baseline — scheduler overhead and "
        "allocation latency",
        ["measurement", "value"],
        [
            ("baseline events/s",
             f"{scheduler['baseline_events_per_second']:,.0f}"),
            ("disabled-path events/s",
             f"{scheduler['disabled_events_per_second']:,.0f}"),
            ("observed events/s",
             f"{scheduler['observed_events_per_second']:,.0f}"),
            ("disabled overhead %",
             f"{scheduler['disabled_overhead_pct']:+.2f}"),
            ("observed overhead %",
             f"{scheduler['observed_overhead_pct']:+.2f}"),
            ("allocate() mean us",
             f"{allocation['mean_seconds'] * 1e6:.2f}"),
            ("allocate() p99 us",
             f"{allocation['p99_seconds'] * 1e6:.2f}"),
            ("steady events/s (full stack)",
             f"{steady['events_per_wall_second']:,.0f}"),
            ("steady cache hit rate",
             f"{steady['cache_hit_rate']:.2%}"),
        ],
    )

    # Structure: the steady scenario really exercised the stack.
    assert steady["events_run"] > 1_000
    assert steady["span_max_depth"] >= 2
    assert 0.0 < steady["cache_hit_rate"] < 1.0
    assert steady["issues"] == 0
    assert allocation["mean_seconds"] > 0

    # The when-off contract targets < 2%; hosts are noisy, so the
    # hard ceiling here is deliberately loose (the recorded JSON is
    # the precise artifact).
    assert scheduler["disabled_overhead_pct"] < 25.0
