"""Extension (§1): administrative vs TTL scoping for allocation.

"The simpler solutions work well for administrative scope zone address
allocation" — because zone visibility is symmetric, plain informed-
random packs a zone range almost completely, while the same algorithm
under TTL scoping is stuck near the birthday bound (fig. 5's IR
curve).  This bench quantifies the gap on the same synthetic Mbone.
"""

import numpy as np

from repro.core.admin import AdminScopedAllocator
from repro.core.allocator import VisibleSet
from repro.core.informed import InformedRandomAllocator
from repro.experiments.allocation_run import allocations_before_first_clash
from repro.experiments.ttl_distributions import DS4
from repro.routing.admin_scoping import AdminScopeMap, zones_from_labels

SPACE = 400
TRIALS = 5


def _admin_fill(mbone, zone_map, rng) -> int:
    """Fill country zones via admin-scoped IR until a clash (or the
    whole reusable range is packed in some zone)."""
    zones = zone_map.zones
    used_per_zone = {zone.name: [] for zone in zones}
    allocations = 0
    node_zone = {}
    for zone in zones:
        for node in zone.members:
            node_zone[node] = zone
    nodes = list(node_zone)
    while True:
        node = nodes[int(rng.integers(0, len(nodes)))]
        zone = node_zone[node]
        used = used_per_zone[zone.name]
        if len(used) == zone.range_size:
            return allocations  # a zone is perfectly full: stop
        allocator = AdminScopedAllocator(zone_map, node, SPACE, rng)
        view = VisibleSet(
            np.asarray(used, dtype=np.int64),
            np.full(len(used), 63, dtype=np.int64),
        )
        result = allocator.allocate(63, view)
        if result.address in used:
            return allocations  # a clash (cannot happen pre-fill)
        used.append(result.address)
        allocations += 1


def test_ext_admin_scoping(benchmark, record_series, mbone,
                           mbone_scope_map):
    zones = zones_from_labels(mbone, prefix_depth=2, range_lo=0,
                              range_hi=SPACE)
    zone_map = AdminScopeMap(mbone.num_nodes, zones)

    def run():
        admin = [
            _admin_fill(mbone, zone_map, np.random.default_rng((40, t)))
            for t in range(TRIALS)
        ]
        ttl = [
            allocations_before_first_clash(
                mbone_scope_map,
                lambda n, r: InformedRandomAllocator(n, r),
                SPACE, DS4, np.random.default_rng((41, t)),
            )
            for t in range(TRIALS)
        ]
        return float(np.mean(admin)), float(np.mean(ttl))

    admin_mean, ttl_mean = benchmark.pedantic(run, rounds=1,
                                              iterations=1)
    record_series(
        "ext_admin_scoping",
        f"Extension — IR allocations before first clash, space {SPACE}",
        ["scoping", "mean allocations"],
        [("administrative zones (symmetric)", round(admin_mean, 1)),
         ("TTL scoping (asymmetric)", round(ttl_mean, 1))],
    )

    # Admin zones pack the reusable range across every zone — far past
    # what TTL-scoped IR achieves, and past the single-range size.
    assert admin_mean > ttl_mean * 2
    assert admin_mean >= SPACE  # reuse across zones exceeds one range
