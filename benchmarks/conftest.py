"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and
records the series both to stdout and to ``benchmarks/results/*.txt``
so the data survives pytest's output capture.

Scale knobs (environment variables):

* ``REPRO_BENCH_NODES`` — Mbone map size (default 400; the paper's
  mcollect map had 1864 — set 1864 to reproduce at full scale).
* ``REPRO_BENCH_TRIALS`` — trials per stochastic data point (default 3).
* ``REPRO_BENCH_MAX_SPACE`` — largest address space swept (default 400;
  the paper sweeps to 1000+ in fig. 5 and 1600 in figs. 12/13).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.reporting import format_table
from repro.routing.scoping import ScopeMap
from repro.topology.doar import DoarParams, generate_doar
from repro.topology.mbone import MboneParams, generate_mbone

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_nodes() -> int:
    return _env_int("REPRO_BENCH_NODES", 400)


@pytest.fixture(scope="session")
def bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 3)


@pytest.fixture(scope="session")
def bench_max_space() -> int:
    return _env_int("REPRO_BENCH_MAX_SPACE", 400)


@pytest.fixture(scope="session")
def space_sizes(bench_max_space):
    sizes = [100, 200, 400, 800, 1600]
    return [s for s in sizes if s <= bench_max_space]


@pytest.fixture(scope="session")
def mbone(bench_nodes):
    return generate_mbone(MboneParams(total_nodes=bench_nodes, seed=1998))


@pytest.fixture(scope="session")
def mbone_scope_map(mbone):
    return ScopeMap.from_topology(mbone)


@pytest.fixture(scope="session")
def doar_topologies(bench_nodes):
    """Doar maps for the §3 simulations, keyed by size."""
    sizes = [200, 400, 800]
    if bench_nodes >= 1600:
        sizes.append(1600)
    return {size: generate_doar(DoarParams(num_nodes=size, seed=1998))
            for size in sizes}


@pytest.fixture(scope="session")
def record_series():
    """Print a titled series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, title: str, headers, rows) -> str:
        table = format_table(headers, rows)
        text = f"== {title} ==\n{table}\n"
        print(f"\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        return text

    return record
