"""Ablation: announcement strategy (fixed vs exponential back-off).

§4's first requirement: "The session announcement rate must be
non-uniform."  This bench quantifies it end to end: the discovery
delay each strategy achieves under loss, the eq. 1 invisibility
fraction that follows, and the packing (allocations at clash-prob 0.5
in a 10,000-address partition) that invisibility permits.
"""

from repro.analysis.announcement import (
    ExponentialBackoffSchedule,
    invisible_fraction,
    mean_announcement_delay,
)
from repro.analysis.clash_model import allocations_before_half

LOSS_RATES = (0.01, 0.02, 0.05, 0.10)
PARTITION = 10_000


def test_ablation_backoff(benchmark, record_series):
    def run():
        rows = []
        for loss in LOSS_RATES:
            fixed_delay = mean_announcement_delay(loss=loss)
            backoff_delay = ExponentialBackoffSchedule(
            ).mean_discovery_delay(loss=loss)
            fixed_i = invisible_fraction(fixed_delay)
            backoff_i = invisible_fraction(backoff_delay)
            rows.append((
                loss,
                round(fixed_delay, 2),
                round(backoff_delay, 3),
                allocations_before_half(PARTITION, fixed_i),
                allocations_before_half(PARTITION, backoff_i),
            ))
        return rows

    rows = benchmark(run)
    record_series(
        "ablation_backoff",
        "Ablation — announcement strategy vs loss "
        f"(packing in a {PARTITION}-address partition)",
        ["loss", "fixed delay (s)", "back-off delay (s)",
         "packing (fixed)", "packing (back-off)"],
        rows,
    )

    for loss, fixed_delay, backoff_delay, fixed_pack, backoff_pack \
            in rows:
        assert backoff_delay < fixed_delay / 10
        assert backoff_pack > fixed_pack
    # Packing under fixed announcements degrades quickly with loss.
    assert rows[-1][3] < rows[0][3]
