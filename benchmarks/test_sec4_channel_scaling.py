"""§4: the announcement-channel scaling argument, quantified.

"As the MBone scales and distinct user groups emerge... the amount of
bandwidth dedicated to announcements would have to increase
significantly or the inter-announcement interval would become too long
to give any kind of assurance of reliability."

This bench sweeps the session population of one SAP channel (classic
4000 bps budget) and reports the resulting re-announcement interval,
the eq.-1 invisibility it implies, and the packing a 10,000-address
partition can then sustain — the end-to-end chain behind the paper's
conclusion that flat allocation cannot scale.
"""

from repro.analysis.clash_model import allocations_before_half
from repro.sap.channel import AnnouncementChannel

POPULATIONS = [10, 100, 1000, 10_000, 100_000]
PARTITION = 10_000


def test_sec4_channel_scaling(benchmark, record_series):
    def run():
        rows = []
        for sessions in POPULATIONS:
            channel = AnnouncementChannel()
            for key in range(sessions):
                channel.register(key)
            stats = channel.stats()
            packing = allocations_before_half(
                PARTITION, stats.invisible_fraction
            )
            rows.append((sessions, round(stats.interval, 1),
                         round(stats.invisible_fraction, 6), packing))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "sec4_channel_scaling",
        "§4 — SAP channel (4000 bps) interval / invisibility / packing "
        "vs session population",
        ["sessions", "interval (s)", "invisible fraction",
         f"packing in {PARTITION}"],
        rows,
    )

    intervals = [row[1] for row in rows]
    packings = [row[3] for row in rows]
    # Interval explodes linearly past the floor...
    assert intervals[0] == 300.0
    assert intervals[-1] > 100_000
    # ...and the achievable packing collapses.
    assert packings[-1] < packings[0] / 3
    assert all(b <= a for a, b in zip(packings, packings[1:]))
