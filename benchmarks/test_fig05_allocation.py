"""Fig. 5: allocations before the first clash (R, IR, IPR-3, IPR-7).

Paper shape criteria: R and IR scale ~O(sqrt n) and are close to each
other; IPR 3-band does better but still sub-linear at large n; IPR
7-band (perfect partitioning) scales ~O(n) and benefits most from
locally-scoped TTL distributions (ds4 > ds1).
"""

import numpy as np

from repro.core.informed import InformedRandomAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.core.random_alloc import RandomAllocator
from repro.experiments.allocation_run import fig5_run
from repro.experiments.ttl_distributions import ALL_DISTRIBUTIONS

ALGORITHMS = {
    "R": lambda n, rng: RandomAllocator(n, rng),
    "IR": lambda n, rng: InformedRandomAllocator(n, rng),
    "IPR 3-band": lambda n, rng: StaticIprmaAllocator.three_band(n, rng),
    "IPR 7-band": lambda n, rng: StaticIprmaAllocator.seven_band(n, rng),
}


def test_fig05_allocation_sweep(benchmark, record_series, mbone_scope_map,
                                space_sizes, bench_trials):
    def run():
        return fig5_run(
            mbone_scope_map, ALGORITHMS, space_sizes,
            ALL_DISTRIBUTIONS, trials=bench_trials, seed=1998,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "fig05_allocation",
        "Fig. 5 — mean allocations before first clash "
        "(log/log in the paper)",
        ["algorithm", "dist", "space", "allocations"],
        [(r.algorithm, r.distribution, r.space_size,
          round(r.mean_allocations, 1)) for r in rows],
    )

    means = {(r.algorithm, r.distribution, r.space_size):
             r.mean_allocations for r in rows}
    lo, hi = space_sizes[0], space_sizes[-1]
    for dist in ("ds1", "ds4"):
        # IPR-7 dominates R by a large factor at the top size.
        assert means[("IPR 7-band", dist, hi)] > \
            3 * means[("R", dist, hi)]
        # IR is not a great improvement on R (within ~4x).
        assert means[("IR", dist, hi)] < 6 * means[("R", dist, hi)]
    # IPR-7 scales ~linearly: quadrupling space gives ~4x (allow 2.2+).
    growth = means[("IPR 7-band", "ds4", hi)] / \
        means[("IPR 7-band", "ds4", lo)]
    assert growth > 0.55 * (hi / lo)
    # Local scoping helps: ds4 packs more sessions than ds1 on IPR-7.
    assert means[("IPR 7-band", "ds4", hi)] > \
        means[("IPR 7-band", "ds1", hi)]
