"""Extension: allocation through the full SAP stack, closed loop.

A flash crowd of sessions is created faster than announcements can
propagate, so allocation races happen for real; the three-phase clash
protocol (§3) must detect and repair them.  This validates the whole
pipeline — allocation assumptions, SAP propagation, clash detection —
in one experiment the paper only argues piecewise.
"""

from repro.experiments.sap_in_the_loop import (
    SapLoopConfig,
    run_sap_in_the_loop,
)
from repro.experiments.ttl_distributions import DS1
from repro.routing.scoping import ScopeMap
from repro.topology.mbone import MboneParams, generate_mbone

SEEDS = (2, 3, 4)


def test_ext_sap_in_the_loop(benchmark, record_series):
    topology = generate_mbone(MboneParams(total_nodes=200, seed=5))
    scope_map = ScopeMap.from_topology(topology)

    def run_variant(enable_protocol: bool):
        residual = changes = 0
        for seed in SEEDS:
            config = SapLoopConfig(
                num_directories=25, sessions_per_directory=8,
                space_size=700, strategy="fixed", loss=0.02,
                inter_arrival=0.005, distribution=DS1, seed=seed,
                settle_time=600.0,
                enable_clash_protocol=enable_protocol,
            )
            result = run_sap_in_the_loop(topology, scope_map, config)
            residual += result.residual_clashing_pairs
            changes += result.address_changes
        return residual, changes

    def run():
        return run_variant(True), run_variant(False)

    (with_residual, with_changes), (without_residual, __) = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    record_series(
        "ext_sap_loop",
        "Extension — flash-crowd allocation over real SAP "
        f"({len(SEEDS)} runs of 200 sessions, 2% loss)",
        ["configuration", "residual clashing pairs",
         "protocol address changes"],
        [
            ("three-phase clash protocol ON", with_residual,
             with_changes),
            ("clash protocol OFF", without_residual, 0),
        ],
    )

    # Races really happen without the protocol...
    assert without_residual >= 1
    # ...and the protocol repairs every one of them.
    assert with_residual == 0
    assert with_changes >= 1
