"""Fig. 12: steady-state allocations before clash-prob > 50% (DS4).

Algorithms: AIPR-1..4 (20/50/60/70% inter-band gap), AIPR-H, and the
static IPR 3-band / 7-band controls.  Paper shape: the static IPR-7
control leads; among the adaptive schemes AIPR-3 (60% gap) does best
in this random-churn setting; all scale roughly linearly with space.
"""

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.hybrid import HybridIprmaAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.experiments.steady_state import steady_state_sweep
from repro.experiments.ttl_distributions import DS4

ALGORITHMS = {
    "AIPR-1 (20% gap)": lambda n, rng: AdaptiveIprmaAllocator.aipr1(
        n, rng=rng),
    "AIPR-2 (50% gap)": lambda n, rng: AdaptiveIprmaAllocator.aipr2(
        n, rng=rng),
    "AIPR-3 (60% gap)": lambda n, rng: AdaptiveIprmaAllocator.aipr3(
        n, rng=rng),
    "AIPR-4 (70% gap)": lambda n, rng: AdaptiveIprmaAllocator.aipr4(
        n, rng=rng),
    "AIPR-H (hybrid)": lambda n, rng: HybridIprmaAllocator(n, rng=rng),
    "IPR 3-band": lambda n, rng: StaticIprmaAllocator.three_band(n, rng),
    "IPR 7-band": lambda n, rng: StaticIprmaAllocator.seven_band(n, rng),
}


def test_fig12_steady_state(benchmark, record_series, mbone_scope_map,
                            space_sizes, bench_trials):
    trials = max(4, bench_trials)

    def run():
        return steady_state_sweep(
            mbone_scope_map, ALGORITHMS, space_sizes, DS4,
            trials=trials, seed=12,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "fig12_steady_state",
        "Fig. 12 — steady-state allocations before clash-prob > 50%",
        ["algorithm", "space", "allocations@0.5"],
        [(r.algorithm, r.space_size, r.allocations_at_half)
         for r in rows],
    )

    values = {(r.algorithm, r.space_size): r.allocations_at_half
              for r in rows}
    hi = space_sizes[-1]
    # Static IPR-7 control leads every adaptive scheme.
    for algo in ALGORITHMS:
        if algo != "IPR 7-band":
            assert values[("IPR 7-band", hi)] >= values[(algo, hi)]
    # The adaptive schemes scale with space size.
    lo = space_sizes[0]
    for algo in ("AIPR-1 (20% gap)", "AIPR-3 (60% gap)"):
        assert values[(algo, hi)] > values[(algo, lo)]
    # Wider gaps beat the tightest gap in this churn regime (paper:
    # AIPR-3 best among adaptive).
    assert values[("AIPR-3 (60% gap)", hi)] >= \
        values[("AIPR-1 (20% gap)", hi)]
