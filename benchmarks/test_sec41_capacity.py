"""§4.1: capacity arithmetic for flat vs hierarchical allocation.

The conclusion's claims, evaluated: flat allocation cannot use the
2^28 space; with ~10,000-address prefixes allocated on reliable long
timescales and regional announcements at the address layer, the
hierarchy makes most of the space usable.
"""

from repro.analysis.scaling import (
    FLAT_BAND_BOUND,
    IPV4_MULTICAST,
    flat_capacity,
    hierarchical_capacity,
    improvement_factor,
)

SPACES = [65_536, 2 ** 20, 2 ** 24, IPV4_MULTICAST]


def test_sec41_capacity(benchmark, record_series):
    def run():
        rows = []
        for space in SPACES:
            flat = flat_capacity(space, 0.001)
            hierarchy = hierarchical_capacity(
                total_space=space,
                prefix_size=min(FLAT_BAND_BOUND, space),
            )
            rows.append((
                space, flat, round(flat / space, 4),
                hierarchy.total_sessions,
                round(hierarchy.total_sessions / space, 4),
            ))
        return rows

    rows = benchmark(run)
    record_series(
        "sec41_capacity",
        "§4.1 — concurrent sessions at p(clash)=0.5: flat vs "
        "hierarchical",
        ["space", "flat", "flat frac", "hierarchical", "hier frac"],
        rows,
    )

    # Flat utilisation collapses with space; hierarchical stays high.
    flat_fracs = [row[2] for row in rows]
    hier_fracs = [row[4] for row in rows]
    assert flat_fracs == sorted(flat_fracs, reverse=True)
    assert flat_fracs[-1] < 0.01
    assert hier_fracs[-1] > 0.3
    assert improvement_factor() > 100
