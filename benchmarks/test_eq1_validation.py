"""Closed-loop check of eq. 1 against direct simulation.

The paper presents eq. 1 analytically; here we run the process it
models — m sessions churned through a band with a fraction of
announcements invisible — and compare the measured no-clash
probability to the formula.
"""

from repro.analysis.clash_model import no_clash_probability
from repro.experiments.lossy_visibility import (
    simulated_no_clash_probability,
)

CASES = [
    # (band size n, sessions m, invisibility fraction f)
    (500, 100, 0.010),
    (500, 250, 0.005),
    (1000, 300, 0.002),
    (1000, 500, 0.001),
]


def test_eq1_validation(benchmark, record_series, bench_trials):
    rounds = max(100, 40 * bench_trials)

    def run():
        rows = []
        for n, m, f in CASES:
            simulated, stderr = simulated_no_clash_probability(
                n, m, f, rounds=rounds, seed=7
            )
            predicted = no_clash_probability(n, m, f * m)
            rows.append((n, m, f, round(predicted, 3),
                         round(simulated, 3), round(stderr, 3)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "eq1_validation",
        "Eq. 1 vs simulation — P(no clash over one session lifetime)",
        ["band n", "sessions m", "invisible f", "eq. 1", "simulated",
         "stderr"],
        rows,
    )

    for __, __, __, predicted, simulated, stderr in rows:
        assert abs(predicted - simulated) < 4 * stderr + 0.06
