"""Fig. 13: upper bound on steady-state behaviour (same-site churn).

A removed session is replaced from the same site with the same TTL —
this "doesn't test the adaptation mechanism itself, but merely the
limits to how far the mechanism can adapt".  Paper shape: AIPR-1 (20%
gap) now beats AIPR-2 (50% gap) — gaps are pure overhead when nothing
moves — and static IPR-7 remains strong.

Known deviation (see EXPERIMENTS.md): at this reduced scale our
substrate's hop-limited partial scope visibility misaligns band
geometry across sites, so inter-band gaps still pay for themselves and
AIPR-2 can edge out AIPR-1; the paper's ordering relies on saturation
dominating, which needs its full 1864-node map and larger spaces.  The
bench therefore asserts the robust parts of the shape (scaling with
space, IPR-7 strength) and records the AIPR-1/AIPR-2 ordering for the
report rather than asserting it.
"""

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.iprma import StaticIprmaAllocator
from repro.experiments.steady_state import steady_state_sweep
from repro.experiments.ttl_distributions import DS4

ALGORITHMS = {
    "AIPR-1 (20% gap)": lambda n, rng: AdaptiveIprmaAllocator.aipr1(
        n, rng=rng),
    "AIPR-2 (50% gap)": lambda n, rng: AdaptiveIprmaAllocator.aipr2(
        n, rng=rng),
    "IPR 3-band": lambda n, rng: StaticIprmaAllocator.three_band(n, rng),
    "IPR 7-band": lambda n, rng: StaticIprmaAllocator.seven_band(n, rng),
}


def test_fig13_upper_bound(benchmark, record_series, mbone_scope_map,
                           space_sizes, bench_trials):
    trials = max(4, bench_trials)

    def run():
        return steady_state_sweep(
            mbone_scope_map, ALGORITHMS, space_sizes, DS4,
            trials=trials, seed=13, same_site_replacement=True,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "fig13_upper_bound",
        "Fig. 13 — upper bound (same-site replacement)",
        ["algorithm", "space", "allocations@0.5"],
        [(r.algorithm, r.space_size, r.allocations_at_half)
         for r in rows],
    )

    values = {(r.algorithm, r.space_size): r.allocations_at_half
              for r in rows}
    hi = space_sizes[-1]
    # Static IPR-7 still performs well.
    assert values[("IPR 7-band", hi)] >= values[("AIPR-2 (50% gap)", hi)]
    assert values[("IPR 7-band", hi)] >= values[("AIPR-1 (20% gap)", hi)]
    # The adaptive schemes scale with space under same-site churn.
    lo = space_sizes[0]
    for algo in ("AIPR-1 (20% gap)", "AIPR-2 (50% gap)"):
        assert values[(algo, hi)] > values[(algo, lo)]
    # AIPR-1 vs AIPR-2 ordering is substrate-sensitive at reduced
    # scale (see module docstring); both must be non-trivial.
    assert values[("AIPR-1 (20% gap)", hi)] > 10
    assert values[("AIPR-2 (50% gap)", hi)] > 10
