"""Fig. 4: probability of an address clash, random allocation, n=10,000."""

import numpy as np

from repro.analysis.birthday import clash_probability


def test_fig04_birthday_curve(benchmark, record_series):
    ks = np.arange(0, 401, 25)

    def run():
        return clash_probability(10_000, ks)

    probs = benchmark(run)
    rows = [(int(k), float(p)) for k, p in zip(ks, probs)]
    record_series(
        "fig04_birthday",
        "Fig. 4 — clash probability, random allocation from 10,000",
        ["allocations", "clash probability"],
        rows,
    )
    # Shape: ~0 at the origin, ~0.5 near 118, saturating by 400.
    assert probs[0] == 0.0
    assert 0.4 < clash_probability(10_000, 118) < 0.6
    assert probs[-1] > 0.99
