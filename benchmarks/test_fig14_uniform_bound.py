"""Fig. 14: upper bound on responders, uniform delay interval (eq. 2).

Grid over the number of sites (200..51,200) and D2 (800 ms..204.8 s)
with R = 200 ms buckets.  Shape: the bound falls with D2 but for large
site counts only very large D2 approaches one response.
"""

from repro.analysis.response_bounds import uniform_expected_responses

SITES = [200, 800, 3200, 12_800, 51_200]
D2_MS = [800, 3200, 12_800, 51_200, 204_800]
RTT_MS = 200


def test_fig14_uniform_bound(benchmark, record_series):
    def run():
        table = {}
        for n in SITES:
            for d2 in D2_MS:
                table[(n, d2)] = uniform_expected_responses(
                    n, max(1, d2 // RTT_MS)
                )
        return table

    table = benchmark(run)
    rows = [
        tuple([n] + [round(table[(n, d2)], 2) for d2 in D2_MS])
        for n in SITES
    ]
    record_series(
        "fig14_uniform_bound",
        "Fig. 14 — expected responders, uniform delay (R = 200 ms)",
        ["sites"] + [f"D2={d2}ms" for d2 in D2_MS],
        rows,
    )

    # Monotone: more buckets, fewer responses; more sites, more.
    for n in SITES:
        values = [table[(n, d2)] for d2 in D2_MS]
        assert values == sorted(values, reverse=True)
    for d2 in D2_MS:
        values = [table[(n, d2)] for n in SITES]
        assert values == sorted(values)
    # Large groups need enormous D2: at 51,200 sites and D2=51.2 s the
    # bound is still far above one response...
    assert table[(51_200, 51_200)] > 100
    # ...while a small group with the same D2 is fine.
    assert table[(200, 51_200)] < 2.0
