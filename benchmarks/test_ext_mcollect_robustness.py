"""Extension: robustness of the results to mcollect's incompleteness.

The paper's map "is not a complete mapping of all of the Mbone because
some mrouters do not have unicast routes to the mwatch daemon".  Does
that matter?  We run the fig. 5 headline comparison on the ground
truth and on partial maps collected with increasing fractions of
silent mrouters: the qualitative result (IPR-7 >> R) must survive.
"""

import numpy as np

from repro.core.iprma import StaticIprmaAllocator
from repro.core.random_alloc import RandomAllocator
from repro.experiments.allocation_run import fig5_run
from repro.experiments.ttl_distributions import DS4
from repro.routing.scoping import ScopeMap
from repro.topology.mcollect import McollectProbe

FRACTIONS = (0.0, 0.1, 0.25)
SPACE = 200

ALGORITHMS = {
    "R": lambda n, rng: RandomAllocator(n, rng),
    "IPR 7-band": lambda n, rng: StaticIprmaAllocator.seven_band(n, rng),
}


def test_ext_mcollect_robustness(benchmark, record_series, mbone,
                                 bench_trials):
    trials = max(3, bench_trials)

    def run():
        rows = []
        for fraction in FRACTIONS:
            probe = McollectProbe(mbone, unreachable_fraction=fraction,
                                  rng=np.random.default_rng(50))
            partial = probe.collect(monitor=0)
            scope_map = ScopeMap.from_topology(partial)
            # Decorrelate seeds across fractions: with a shared seed
            # the TTL draw sequence is identical and the binding event
            # (the globally-visible band filling) is topology
            # independent, which makes the rows artificially equal.
            results = fig5_run(scope_map, ALGORITHMS, [SPACE], [DS4],
                               trials=trials,
                               seed=51 + int(fraction * 100))
            means = {r.algorithm: r.mean_allocations for r in results}
            rows.append((
                fraction, partial.num_nodes,
                round(means["R"], 1), round(means["IPR 7-band"], 1),
                round(means["IPR 7-band"] / max(1.0, means["R"]), 1),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ext_mcollect_robustness",
        f"Extension — fig. 5 headline on partial mcollect maps "
        f"(space {SPACE}, DS4)",
        ["silent fraction", "mapped nodes", "R", "IPR 7-band",
         "advantage"],
        rows,
    )

    for fraction, nodes, r_mean, ipr_mean, advantage in rows:
        # The paper's qualitative conclusion survives map holes.
        assert advantage > 2.0
    # Coverage really does shrink.
    assert rows[-1][1] < rows[0][1]
