"""Ablation: deterministic vs original (fig. 7) adaptive IPRMA.

§2.4 argues the original adaptive scheme is unsound because a band's
geometry depends on lower-TTL sessions other sites cannot see; the
deterministic variant derives the TTL-x band from TTL>=x announcements
only.  The *soundness* property is asserted in the unit tests
(``test_core_adaptive_legacy.py``: legacy geometry moves with
lower-TTL counts and diverges across sites; deterministic geometry
does not).

This bench records the raw capacity comparison.  Note it does NOT show
the legacy scheme losing: with even initial partitions the legacy
scheme behaves like static IPRMA until bands overflow, which at these
scales rarely happens before the first clash — its documented failure
needs sustained growth pressure plus inconsistent views.  The paper
itself never compares the two numerically (fig. 12 simulates only the
deterministic family); we record both so the trade-off — geometry
soundness vs initial-partition capacity — is visible.
"""

import numpy as np

from repro.core.adaptive import AdaptiveIprmaAllocator
from repro.core.adaptive_legacy import LegacyAdaptiveIprmaAllocator
from repro.experiments.allocation_run import fig5_run
from repro.experiments.ttl_distributions import DS4

ALGORITHMS = {
    "Deterministic AIPR-1": lambda n, rng: AdaptiveIprmaAllocator.aipr1(
        n, rng=rng),
    "Legacy adaptive (push)": lambda n, rng:
        LegacyAdaptiveIprmaAllocator(n, mode="push", rng=rng),
    "Legacy adaptive (proportional)": lambda n, rng:
        LegacyAdaptiveIprmaAllocator(n, mode="proportional", rng=rng),
}


def test_ablation_deterministic(benchmark, record_series,
                                mbone_scope_map, space_sizes,
                                bench_trials):
    trials = max(3, bench_trials)

    def run():
        return fig5_run(mbone_scope_map, ALGORITHMS, space_sizes,
                        [DS4], trials=trials, seed=24)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_series(
        "ablation_deterministic",
        "Ablation — deterministic vs fig. 7 adaptive IPRMA "
        "(allocations before first clash, DS4)",
        ["algorithm", "space", "allocations"],
        [(r.algorithm, r.space_size, round(r.mean_allocations, 1))
         for r in rows],
    )

    means = {(r.algorithm, r.space_size): r.mean_allocations
             for r in rows}
    # Every scheme allocates something and scales with space.
    hi, lo = space_sizes[-1], space_sizes[0]
    for algo in ALGORITHMS:
        assert means[(algo, hi)] > 5
