"""Fig. 10 and the §2.4.1 table: Mbone hop counts per TTL scope.

Paper reference values (real 1998 Mbone):

    TTL   typical hops   max hops   usage
    127   10.6           26         Intercontinental
    63    7.7            18         International
    47    7.0            18         National
    16    3.1            10         Local
"""

from repro.topology.hopcount import hop_count_distribution, usage_table


def test_fig10_hopcount(benchmark, record_series, mbone, mbone_scope_map):
    stats = benchmark.pedantic(
        lambda: hop_count_distribution(mbone, scope_map=mbone_scope_map),
        rounds=1, iterations=1,
    )

    # Fig. 10: normalised histogram rows (hop -> share) per TTL.
    hist_rows = []
    max_len = max(len(s.normalized) for s in stats.values())
    for hop in range(max_len):
        row = [hop]
        for ttl in sorted(stats):
            norm = stats[ttl].normalized
            row.append(round(float(norm[hop]), 4) if hop < len(norm)
                       else 0.0)
        hist_rows.append(tuple(row))
    record_series(
        "fig10_hopcount_hist",
        "Fig. 10 — normalised mrouter count vs hop distance",
        ["hops"] + [f"TTL={t}" for t in sorted(stats)],
        hist_rows,
    )

    table = usage_table(stats)
    record_series(
        "sec241_ttl_table",
        "§2.4.1 table — typical/maximum hop count per TTL "
        "(paper: 10.6/26, 7.7/18, 7.0/18, 3.1/10)",
        ["ttl", "typical hops", "max hops", "usage"],
        [(r["ttl"], r["typical_hop_count"], r["max_hop_count"],
          r["example_usage"]) for r in table],
    )

    # Shape: scopes grow with TTL, all under DVMRP's 32-hop ceiling.
    assert stats[15].mean_hops < stats[47].mean_hops
    assert stats[47].mean_hops <= stats[63].mean_hops
    assert stats[63].mean_hops <= stats[127].mean_hops
    assert stats[127].max_hops < 32
    # Rough magnitudes match the paper's table.
    assert 1.0 < stats[15].mean_hops < 5.0
    assert 4.0 < stats[63].mean_hops < 11.0
    assert 6.0 < stats[127].mean_hops < 14.0
