#!/usr/bin/env bash
# Pre-PR gate: run every check the repo can enforce, in order of cost.
#
#   ./scripts/check.sh            # lint + style + types + tier-1 tests
#   ./scripts/check.sh --fast     # skip the pytest run
#
# ruff and mypy are optional-dev dependencies (pyproject [dev]); when
# they are not installed the corresponding step is skipped with a
# notice rather than failing, so the gate also works in minimal
# containers.  repro.lint and pytest are always required.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro.lint (determinism & simulation-correctness) =="
# Pin hash randomisation for the run-twice harness: the two runs must
# diverge only if the *code* is nondeterministic, never because the
# gate process drew a different hash seed than a rerun of the gate.
export PYTHONHASHSEED=0
python -m repro.lint src --determinism

echo "== repro.sanitize (runtime shadow-state invariants) =="
python -m repro.sanitize all

echo "== repro.modelcheck (bounded exhaustive exploration) =="
# The fast scenarios are exhaustive in under a second; the ghost
# scenario (~1 min) runs in CI's model-check step, not the local gate.
python -m repro.modelcheck smoke simultaneous

echo "== repro.obs (instrumented scenarios, OBS4xx self-checks) =="
# Fails on any OBS4xx issue (metric collisions, unclosed spans); the
# full metrics/bench artifacts are collected in CI's reports job.
python -m repro.obs kernel steady

echo "== repro.fleet (2-worker smoke sweep, FLT5xx diagnostics) =="
# Exercises the whole parallel path — fork, pipes, checkpoint, merge
# — and fails on any FLT5xx issue (exhausted retries, torn journals,
# nondeterministic shard payloads).
python -m repro.fleet demo --jobs 2

echo "== repro.flow (whole-program RNG provenance & job purity) =="
# Interprocedural pass: every draw on a fleet-job/experiment path
# must trace to a keyed stream, and jobs must be pure. Cached by a
# whole-tree digest, so an untouched tree re-checks in milliseconds.
python -m repro.flow src

echo "== repro.units (semantic units & value-range bounds proofs) =="
# Abstract interpretation over the same call graph: no Addr/SlotIndex
# or SimTime/Duration mix-ups, and every index the checker can decide
# stays inside 0..size-1.  Shares the flow cache discipline.
python -m repro.units src

echo "== repro.alias (escape/aliasing proofs & SoA ledger) =="
# Interprocedural escape and mutability analysis over the same call
# graph: no leaked live containers, aliased mutation, iterator
# invalidation or mutation-after-publish; per-class SoA-safe /
# SoA-blocked verdicts roll up into alias-ledger.json.
python -m repro.alias src

echo "== repro.scenario (bounded smoke fuzz, SCN9xx invariants) =="
# 25 sampled workloads through the full sanitizer + monitor stack;
# found violations are the campaign's product (exit 0), only an
# SCN912 replay mismatch — broken determinism machinery — fails.
# Memoized in .repro-scenario-cache.json, so a warm gate re-checks
# in seconds.
python -m repro.scenario fuzz --runs 25 --seed 0x19980902

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests
else
    echo "== ruff not installed; skipping (pip install -e '.[dev]') =="
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (whole src/repro tree) =="
    mypy src/repro
else
    echo "== mypy not installed; skipping (pip install -e '.[dev]') =="
fi

if [[ "${1:-}" != "--fast" ]]; then
    echo "== tier-1 pytest =="
    python -m pytest -x -q
fi

echo "== all checks passed =="
