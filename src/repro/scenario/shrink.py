"""Delta-debugging shrinker for violating scenario specs.

Given a spec that trips a rule, find a *smaller* spec that still
trips it, where size is the number of :func:`active_fields` — dotted
paths differing from the neutral baseline ``ScenarioSpec()``.

Two reduction phases, both deterministic and bounded by a run budget:

1. **Event-prefix shrink** — repeatedly halve the horizon while the
   violation survives.  The whole workload is derived from the spec,
   so a shorter horizon is literally a prefix of the event sequence.
2. **Field delta-debug** — for each active field try (a) resetting it
   to its baseline value, (b) for numbers, the midpoint toward
   baseline, (c) for the persona tuple, dropping one assignment at a
   time.  Greedy to fixed point: any accepted reduction restarts the
   sweep over the (now smaller) active set.

Every candidate is judged by actually running it: it must reproduce
at least one of the target codes.  Candidates that fail validation
are simply rejected.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional

from repro.scenario.engine import DEFAULT_MAX_EVENTS, run_spec
from repro.scenario.spec import (
    ScenarioSpec,
    active_fields,
    baseline_spec,
)


@dataclass
class ShrinkResult:
    """The minimized spec and how much work finding it took."""

    spec: ScenarioSpec
    codes: List[str]
    runs_used: int
    active: List[str]

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "digest": self.spec.digest(),
            "codes": self.codes,
            "runs_used": self.runs_used,
            "active_fields": self.active,
        }


def get_path(spec: ScenarioSpec, path: str) -> Any:
    """The value at a dotted field path."""
    value: Any = spec
    for part in path.split("."):
        value = getattr(value, part)
    return value


def set_path(spec: ScenarioSpec, path: str, value: Any) -> ScenarioSpec:
    """A copy of ``spec`` with the dotted field path replaced."""
    parts = path.split(".")

    def rebuild(obj: Any, remaining: List[str]) -> Any:
        if len(remaining) == 1:
            return dataclasses.replace(obj, **{remaining[0]: value})
        child = rebuild(getattr(obj, remaining[0]), remaining[1:])
        return dataclasses.replace(obj, **{remaining[0]: child})

    return rebuild(spec, parts)


def _candidates(spec: ScenarioSpec, path: str) -> List[Any]:
    """Reduction candidates for one field, most aggressive first."""
    base_value = get_path(baseline_spec(), path)
    current = get_path(spec, path)
    out: List[Any] = [base_value]
    if isinstance(current, tuple) and len(current) > 1:
        out.extend(
            current[:index] + current[index + 1:]
            for index in range(len(current))
        )
    elif (isinstance(current, (int, float))
          and not isinstance(current, bool)
          and isinstance(base_value, (int, float))):
        midpoint = (current + base_value) / 2.0
        if isinstance(current, int) and isinstance(base_value, int):
            midpoint = int(round(midpoint))
        if midpoint not in (current, base_value):
            out.append(midpoint)
    return out


class Shrinker:
    """Stateful delta-debugger; one instance per counterexample.

    Args:
        seed: the seed the violation was found with (replays use it).
        target_codes: reproduce = any of these codes fires again.
        max_events: per-run event budget, same as the original run.
        budget: total candidate runs allowed.
        runner: optional ``(spec, seed, max_events) -> list[str]``
            returning a run's codes; injected by the fuzzer to share
            its run cache.  Defaults to a fresh :func:`run_spec`.
    """

    def __init__(self, seed: int, target_codes: FrozenSet[str],
                 max_events: int = DEFAULT_MAX_EVENTS,
                 budget: int = 64, runner=None) -> None:
        self.seed = seed
        self.target_codes = frozenset(target_codes)
        self.max_events = max_events
        self.budget = budget
        self.runs_used = 0
        self._runner = runner if runner is not None else self._run_codes

    def _run_codes(self, spec: ScenarioSpec, seed: int,
                   max_events: int) -> List[str]:
        return run_spec(spec, seed, max_events=max_events).codes()

    def reproduces(self, candidate: ScenarioSpec) -> bool:
        """Run one candidate; True if a target code fires."""
        try:
            candidate.validate()
        except ValueError:
            return False
        self.runs_used += 1
        codes = self._runner(candidate, self.seed, self.max_events)
        return bool(self.target_codes & set(codes))

    def shrink(self, spec: ScenarioSpec) -> ShrinkResult:
        """Minimize ``spec``; always returns a reproducing spec."""
        current = self._shrink_horizon(spec)
        current = self._shrink_fields(current)
        codes = sorted(
            self.target_codes
            & set(self._runner(current, self.seed, self.max_events))
        )
        return ShrinkResult(
            spec=current, codes=codes, runs_used=self.runs_used,
            active=active_fields(current),
        )

    def _shrink_horizon(self, spec: ScenarioSpec) -> ScenarioSpec:
        current = spec
        while (self.runs_used < self.budget
               and current.horizon / 2.0 >= 60.0):
            candidate = set_path(current, "horizon",
                                 current.horizon / 2.0)
            if not self.reproduces(candidate):
                break
            current = candidate
        return current

    def _shrink_fields(self, spec: ScenarioSpec) -> ScenarioSpec:
        current = spec
        progress = True
        while progress and self.runs_used < self.budget:
            progress = False
            # One full pass over the active set, keeping accepted
            # reductions as we go (restarting per success would burn
            # the budget re-testing fields already found essential).
            for path in active_fields(current):
                if self.runs_used >= self.budget:
                    break
                reduced = self._reduce_field(current, path)
                if reduced is not None:
                    current = reduced
                    progress = True
        return current

    def _reduce_field(self, spec: ScenarioSpec,
                      path: str) -> Optional[ScenarioSpec]:
        for value in _candidates(spec, path):
            if self.runs_used >= self.budget:
                return None
            candidate = set_path(spec, path, value)
            if candidate == spec:
                continue
            if self.reproduces(candidate):
                return candidate
        return None


def shrink_spec(spec: ScenarioSpec, seed: int, target_codes,
                max_events: int = DEFAULT_MAX_EVENTS,
                budget: int = 64, runner=None) -> ShrinkResult:
    """Convenience wrapper: one-shot :class:`Shrinker` use."""
    shrinker = Shrinker(seed, frozenset(target_codes),
                        max_events=max_events, budget=budget,
                        runner=runner)
    return shrinker.shrink(spec)
