"""The bounded fuzz loop: sample, run, shrink, emit artifacts.

Run ``i`` of a fuzz campaign is fully determined by ``(seed, i)``:
the spec is sampled from ``derived_stream(f"scenario/fuzz/run-{i}",
seed)`` and then run with ``seed`` itself (the spec digest already
namespaces every engine stream).  Because rows are keyed by global
run index, sharding the campaign across fleet workers cannot change
the report — ``scenario-fuzz-cell`` is a pure job returning rows and
all impure work (shrinking, corpus writing, caching) stays in the
parent.

Every violating run is checked for **replayability** before it is
trusted: the spec travels through its JSON artifact and is re-run
from ``(spec, seed)`` alone; a trace-hash mismatch is SCN912 — the
one finding that fails the fuzz command itself, because it means the
determinism contract (not the protocol) broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.scenario.cache import RunCache, run_key
from repro.scenario.engine import run_sampled, run_spec
from repro.scenario.generator import sample_spec
from repro.scenario.rules import SCENARIO_ADVISORY_CODES
from repro.scenario.shrink import shrink_spec
from repro.scenario.spec import ScenarioSpec
from repro.sim.rng import derived_stream

#: Per-fuzz-run event budget: tighter than the engine default because
#: a fuzz campaign runs many specs and the circuit breakers usually
#: decide a doomed run's verdict within a few thousand events anyway.
FUZZ_MAX_EVENTS = 40_000

#: Shrinking is expensive (dozens of runs per counterexample); only
#: the first this-many violating runs are minimized per campaign.
#: The report marks the rest ``"shrunk": false`` — never silently.
MAX_SHRINKS = 3


def fuzz_stream_key(index: int) -> str:
    """The generator stream key for global run ``index``."""
    return f"scenario/fuzz/run-{index}"


def spec_for_run(index: int, seed: int) -> ScenarioSpec:
    """Re-sample run ``index``'s spec (pure in ``(index, seed)``)."""
    return sample_spec(derived_stream(fuzz_stream_key(index), seed),
                       name=f"fuzz-{index}")


def run_row(index: int, seed: int, max_events: int,
            cache: Optional[RunCache] = None) -> Dict[str, Any]:
    """Execute one fuzz run; returns its JSON-safe row.

    A cache hit returns the stored row without running — sound
    because runs are pure in ``(digest, seed, max_events)``, and
    cross-checked anyway: violating rows are later re-run from their
    artifact and must reproduce the stored trace hash.
    """
    spec = spec_for_run(index, seed)
    key = run_key(spec.digest(), seed, max_events)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return dict(hit, index=index)
    # run_sampled, not run_spec: this sits on the fleet-job path and
    # must never reach the legacy dispatch (see engine.run_sampled).
    run = run_sampled(spec, seed, max_events=max_events)
    row = {
        "index": index,
        "digest": run.digest,
        "codes": run.codes(),
        "clean": run.clean,
        "sessions": run.sessions_created,
        "events": run.events_run,
        "trace_sha256": run.trace_sha256(),
    }
    if cache is not None:
        cache.put(key, {k: v for k, v in row.items() if k != "index"})
    return row


def fuzz_cell(params: Dict[str, Any], rng, attempt) -> Dict[str, Any]:
    """Fleet job ``scenario-fuzz-cell``: one contiguous run range.

    Pure in ``params`` alone — the shard stream is deliberately
    unused because rows must be keyed by *global* run index, not by
    shard layout, so re-sharding a campaign cannot change its report.
    """
    del rng, attempt
    start = int(params["start"])
    count = int(params["count"])
    seed = int(params["seed"])
    max_events = int(params["max_events"])
    return {"rows": [run_row(index, seed, max_events)
                     for index in range(start, start + count)]}


@dataclass
class FuzzReport:
    """One campaign's deterministic, JSON-safe outcome."""

    seed: int
    runs: int
    max_events: int
    rows: List[Dict[str, Any]] = field(default_factory=list)
    counterexamples: List[Dict[str, Any]] = field(default_factory=list)
    replay_failures: List[Dict[str, Any]] = field(default_factory=list)

    def violating_rows(self) -> List[Dict[str, Any]]:
        return [row for row in self.rows if not row["clean"]]

    def code_histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for row in self.rows:
            for code in row["codes"]:
                counts[code] = counts.get(code, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def machinery_ok(self) -> bool:
        """False iff SCN912 fired — a replay failed to reproduce."""
        return not self.replay_failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "runs": self.runs,
            "max_events": self.max_events,
            "violating": len(self.violating_rows()),
            "codes": self.code_histogram(),
            "counterexamples": self.counterexamples,
            "replay_failures": self.replay_failures,
            "rows": self.rows,
        }

    def summary(self) -> str:
        histogram = self.code_histogram()
        codes = ",".join(f"{code}={count}"
                         for code, count in histogram.items())
        shrunk = sum(1 for entry in self.counterexamples
                     if entry["shrunk"])
        return (f"fuzz seed={self.seed}: {self.runs} runs, "
                f"{len(self.violating_rows())} violating"
                f" ({codes or 'no codes'}), "
                f"{len(self.counterexamples)} counterexamples "
                f"({shrunk} minimized), "
                f"{len(self.replay_failures)} replay failures")


def _hard_codes(row: Dict[str, Any]) -> List[str]:
    return [code for code in row["codes"]
            if code not in SCENARIO_ADVISORY_CODES]


def _fleet_rows(seed: int, runs: int, max_events: int,
                jobs: int) -> List[Dict[str, Any]]:
    """Shard the campaign over fleet workers; rows in index order.

    The shard layout is a function of ``runs`` alone (never of
    ``jobs``), so any worker count reproduces the identical report.
    """
    from repro.fleet.runner import run_sweep
    from repro.fleet.spec import SweepSpec, make_shards

    shard_size = 5
    params = [
        {"start": start, "count": min(shard_size, runs - start),
         "seed": seed, "max_events": max_events}
        for start in range(0, runs, shard_size)
    ]
    sweep = SweepSpec(sweep_id=f"scenario-fuzz-{seed}",
                      job="scenario-fuzz-cell", seed=seed,
                      shards=make_shards(params))
    result = run_sweep(sweep, jobs=jobs)
    rows: List[Dict[str, Any]] = []
    for payload in result.aggregate()["rows"]:
        rows.extend(payload["rows"])
    return rows


def run_fuzz(seed: int, runs: int,
             max_events: int = FUZZ_MAX_EVENTS,
             jobs: int = 1, shrink: bool = True,
             shrink_budget: int = 48,
             cache: Optional[RunCache] = None) -> FuzzReport:
    """One bounded fuzz campaign; see the module docstring.

    Args:
        seed: campaign seed; with ``runs`` it determines everything.
        runs: how many specs to sample and run.
        max_events: per-run event budget (the deterministic timeout).
        jobs: >1 shards the runs over fleet worker processes.
        shrink: delta-debug violating specs (first
            :data:`MAX_SHRINKS` only).
        shrink_budget: candidate runs allowed per shrink.
        cache: optional :class:`RunCache` (parent-side only; fleet
            cells never touch disk).
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    report = FuzzReport(seed=seed, runs=runs, max_events=max_events)
    if jobs > 1:
        report.rows = _fleet_rows(seed, runs, max_events, jobs)
    else:
        report.rows = [run_row(index, seed, max_events, cache=cache)
                       for index in range(runs)]

    def cached_runner(spec: ScenarioSpec, run_seed: int,
                      budget: int) -> List[str]:
        key = run_key(spec.digest(), run_seed, budget)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                return list(hit["codes"])
        run = run_spec(spec, run_seed, max_events=budget)
        if cache is not None:
            cache.put(key, {
                "digest": run.digest, "codes": run.codes(),
                "clean": run.clean,
                "sessions": run.sessions_created,
                "events": run.events_run,
                "trace_sha256": run.trace_sha256(),
            })
        return run.codes()

    shrinks_done = 0
    for row in report.violating_rows():
        hard = _hard_codes(row)
        if not hard:
            continue
        spec = spec_for_run(row["index"], seed)
        # Replay from the JSON artifact alone — never from the live
        # spec object and never from the cache.
        replayed = run_spec(ScenarioSpec.from_json(spec.to_json()),
                            seed, max_events=max_events)
        if replayed.trace_sha256() != row["trace_sha256"]:
            report.replay_failures.append({
                "code": "SCN912",
                "index": row["index"],
                "digest": row["digest"],
                "expected_trace_sha256": row["trace_sha256"],
                "replayed_trace_sha256": replayed.trace_sha256(),
            })
            continue
        entry: Dict[str, Any] = {
            "index": row["index"],
            "codes": hard,
            "artifact": {"spec": spec.to_dict(), "seed": seed,
                         "max_events": max_events,
                         "digest": row["digest"],
                         "trace_sha256": row["trace_sha256"]},
            "shrunk": False,
        }
        if shrink and shrinks_done < MAX_SHRINKS:
            result = shrink_spec(spec, seed, frozenset(hard),
                                 max_events=max_events,
                                 budget=shrink_budget,
                                 runner=cached_runner)
            entry["shrunk"] = True
            entry["minimized"] = result.to_dict()
            shrinks_done += 1
        report.counterexamples.append(entry)
    return report
