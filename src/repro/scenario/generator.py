"""Random scenario sampling for the fuzz loop.

One rule: a sampled spec is a pure function of the generator stream
it is handed, so the fuzzer's run ``i`` re-samples identically from
``derived_stream(f"scenario/fuzz/run-{i}", seed)`` no matter how runs
are sharded across fleet workers.

The distribution is biased toward the interesting corners — partition
storms, churn, flash crowds, tight spaces and misbehaving personas
show up far more often than they would uniformly — because the point
is tripping SCN9xx/SAN2xx rules, not modelling a typical day on the
Mbone.
"""

from __future__ import annotations

import numpy as np

from repro.scenario.personas import PERSONA_NAMES
from repro.scenario.spec import (
    ARRIVAL_PROCESSES,
    DEMAND_SHAPES,
    LIFETIME_DISTRIBUTIONS,
    ArrivalSpec,
    DemandSpec,
    LifetimeSpec,
    PersonaAssignment,
    ScenarioSpec,
    TopologySpec,
)


def _choice(rng: np.random.Generator, options) -> str:
    return str(options[int(rng.integers(len(options)))])


def sample_spec(rng: np.random.Generator,
                name: str = "fuzz") -> ScenarioSpec:
    """One random, always-valid synthetic spec from ``rng``."""
    num_sites = int(rng.integers(4, 11))
    horizon = float(rng.integers(8, 17)) * 30.0

    arrival = ArrivalSpec(
        process=_choice(rng, ARRIVAL_PROCESSES),
        rate=round(float(rng.uniform(0.02, 0.12)), 4),
        diurnal_period=float(rng.integers(2, 7)) * 60.0,
        diurnal_depth=round(float(rng.uniform(0.3, 0.9)), 2),
        flash_start=round(float(rng.uniform(0.2, 0.6)), 2),
        flash_width=round(float(rng.uniform(0.05, 0.2)), 2),
        flash_multiplier=round(float(rng.uniform(4.0, 16.0)), 1),
    )
    lifetime = LifetimeSpec(
        distribution=_choice(rng, LIFETIME_DISTRIBUTIONS),
        mean=float(rng.integers(6, 19)) * 10.0,
        minimum=20.0,
        pareto_alpha=round(float(rng.uniform(1.2, 2.5)), 2),
    )
    demand = DemandSpec(
        shape=_choice(rng, DEMAND_SHAPES),
        hotspot_fraction=round(float(rng.uniform(0.15, 0.5)), 2),
        hotspot_weight=round(float(rng.uniform(0.6, 0.95)), 2),
        cascade_depth=int(rng.integers(4, 9)),
        cascade_bias=round(float(rng.uniform(0.55, 0.9)), 2),
    )
    topology = TopologySpec(
        num_sites=num_sites,
        loss_rate=round(float(rng.uniform(0.0, 0.05)), 3),
        jitter=round(float(rng.uniform(0.0, 0.02)), 3),
        churn_events=(int(rng.integers(1, 7))
                      if rng.random() < 0.35 else 0),
        churn_downtime=float(rng.integers(2, 9)) * 30.0,
        partition_storms=(int(rng.integers(1, 4))
                          if rng.random() < 0.45 else 0),
        partition_duty=round(float(rng.uniform(0.1, 0.4)), 2),
        loss_ramp_to=(round(float(rng.uniform(0.05, 0.3)), 2)
                      if rng.random() < 0.2 else -1.0),
    )

    personas = ()
    if rng.random() < 0.55:
        count = 1 if rng.random() < 0.7 else 2
        nodes = rng.permutation(num_sites)[:count]
        personas = tuple(
            PersonaAssignment(node=int(node),
                              persona=_choice(rng, PERSONA_NAMES))
            for node in sorted(int(node) for node in nodes)
        )

    return ScenarioSpec(
        name=name,
        space_size=int(rng.integers(8, 25)),
        horizon=horizon,
        announce_interval=float(rng.integers(2, 6)) * 5.0,
        cache_timeout=(float(rng.integers(2, 11)) * 30.0
                       if rng.random() < 0.4 else 3600.0),
        expiry_sweep=(float(rng.integers(1, 5)) * 30.0
                      if rng.random() < 0.5 else 0.0),
        starvation_moves=int(rng.integers(24, 65)),
        arrival=arrival,
        lifetime=lifetime,
        demand=demand,
        topology=topology,
        personas=personas,
    ).validate()
