"""The declarative scenario model.

A :class:`ScenarioSpec` is a frozen value: everything a run needs
except the seed.  Two properties make specs the unit of fuzzing:

* **JSON round trip** — :meth:`ScenarioSpec.to_dict` /
  :meth:`ScenarioSpec.from_dict` are exact inverses, so a violating
  spec travels as a replayable artifact;
* **Content digest** — :meth:`ScenarioSpec.digest` hashes the
  canonical JSON form, and the engine keys every RNG stream under
  ``scenario/<digest>/...``, so a run is a pure function of
  ``(spec, seed)``.

The *neutral baseline* is ``ScenarioSpec()`` — a small honest Poisson
workload with no dynamics and no adversaries.  The shrinker measures
a spec's complexity as its :func:`active_fields`: the dotted field
paths where it differs from the baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Dict, List, Tuple

#: Arrival processes the engine understands.
ARRIVAL_PROCESSES = ("poisson", "diurnal", "flash-crowd")

#: Session-lifetime distributions (``pareto`` is the heavy tail).
LIFETIME_DISTRIBUTIONS = ("uniform", "exponential", "pareto")

#: Address-demand shapes over the scoped space.
DEMAND_SHAPES = ("uniform", "hotspot", "multifractal")

#: Spec kinds: ``synthetic`` runs the generative engine; the legacy
#: kinds dispatch to the repo's original hand-coded harnesses so the
#: old scenarios are expressible as committed spec fixtures.
SPEC_KINDS = ("synthetic", "kernel", "clash", "steady", "chaos")


@dataclass(frozen=True)
class ArrivalSpec:
    """When sessions are created.

    Attributes:
        process: ``poisson`` (homogeneous), ``diurnal`` (sinusoidal
            rate modulation), or ``flash-crowd`` (a burst window at
            ``flash_start`` multiplying the base rate).
        rate: mean aggregate arrivals per simulated second.
        diurnal_period: seconds per diurnal cycle.
        diurnal_depth: modulation depth in [0, 1).
        flash_start: burst start as a fraction of the horizon.
        flash_width: burst width as a fraction of the horizon.
        flash_multiplier: rate multiplier inside the burst.
    """

    process: str = "poisson"
    rate: float = 0.05
    diurnal_period: float = 300.0
    diurnal_depth: float = 0.8
    flash_start: float = 0.4
    flash_width: float = 0.1
    flash_multiplier: float = 8.0

    def validate(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {self.process!r}")
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive: {self.rate}")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ValueError("diurnal_depth must sit in [0, 1)")
        if not 0.0 <= self.flash_start <= 1.0:
            raise ValueError("flash_start must sit in [0, 1]")
        if not 0.0 < self.flash_width <= 1.0:
            raise ValueError("flash_width must sit in (0, 1]")
        if self.flash_multiplier < 1.0:
            raise ValueError("flash_multiplier must be >= 1")


@dataclass(frozen=True)
class LifetimeSpec:
    """How long created sessions live before withdrawing.

    ``pareto`` gives the paper-realistic heavy tail: most sessions
    are short, a few effectively pin their address for the whole run.
    """

    distribution: str = "uniform"
    mean: float = 120.0
    minimum: float = 20.0
    pareto_alpha: float = 1.5

    def validate(self) -> None:
        if self.distribution not in LIFETIME_DISTRIBUTIONS:
            raise ValueError(
                f"unknown lifetime distribution {self.distribution!r}"
            )
        if self.minimum <= 0 or self.mean <= self.minimum:
            raise ValueError(
                f"need 0 < minimum < mean, got minimum={self.minimum} "
                f"mean={self.mean}"
            )
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must exceed 1 (finite mean)")


@dataclass(frozen=True)
class DemandSpec:
    """Where demand lands: which sites create sessions, at what scope.

    ``hotspot`` concentrates ``hotspot_weight`` of the arrival mass on
    the first ``hotspot_fraction`` of sites; ``multifractal`` builds a
    multiplicative cascade over the site population (the arXiv
    2504.01374 observation that real address demand is multifractally
    skewed, mapped onto the scoped space).  TTLs are drawn from
    ``ttls`` with ``ttl_weights``.
    """

    shape: str = "uniform"
    hotspot_fraction: float = 0.25
    hotspot_weight: float = 0.8
    cascade_depth: int = 6
    cascade_bias: float = 0.7
    ttls: Tuple[int, ...] = (15, 47, 63, 127)
    ttl_weights: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4)

    def validate(self) -> None:
        if self.shape not in DEMAND_SHAPES:
            raise ValueError(f"unknown demand shape {self.shape!r}")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must sit in (0, 1]")
        if not 0.0 < self.hotspot_weight < 1.0:
            raise ValueError("hotspot_weight must sit in (0, 1)")
        if not 1 <= self.cascade_depth <= 16:
            raise ValueError("cascade_depth must sit in 1..16")
        if not 0.5 <= self.cascade_bias < 1.0:
            raise ValueError("cascade_bias must sit in [0.5, 1)")
        if not self.ttls or len(self.ttls) != len(self.ttl_weights):
            raise ValueError("ttls and ttl_weights must align")
        if any(t < 1 or t > 255 for t in self.ttls):
            raise ValueError("ttls must sit in 1..255")
        if any(w <= 0 for w in self.ttl_weights):
            raise ValueError("ttl_weights must be positive")


@dataclass(frozen=True)
class TopologySpec:
    """The full-mesh substrate and its dynamics.

    Attributes:
        num_sites: directories in the mesh.
        loss_rate: end-to-end loss probability.
        jitter: uniform per-delivery jitter bound (seconds).
        churn_events: node-down events over the horizon (MANET-style
            membership churn; each downed node detaches from the mesh
            and re-attaches after ``churn_downtime`` seconds).
        churn_downtime: seconds a churned node stays detached.
        partition_storms: partition/heal cycles over the horizon.
        partition_duty: fraction of the horizon spent partitioned,
            split evenly across the storms.
        loss_ramp_to: if >= 0, the loss rate ramps linearly from
            ``loss_rate`` to this value over the horizon.
    """

    num_sites: int = 6
    loss_rate: float = 0.01
    jitter: float = 0.01
    churn_events: int = 0
    churn_downtime: float = 120.0
    partition_storms: int = 0
    partition_duty: float = 0.2
    loss_ramp_to: float = -1.0

    def validate(self) -> None:
        if not 2 <= self.num_sites <= 64:
            raise ValueError("num_sites must sit in 2..64")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be a probability")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.churn_events < 0 or self.churn_events > 64:
            raise ValueError("churn_events must sit in 0..64")
        if self.churn_downtime <= 0:
            raise ValueError("churn_downtime must be positive")
        if self.partition_storms < 0 or self.partition_storms > 16:
            raise ValueError("partition_storms must sit in 0..16")
        if not 0.0 < self.partition_duty < 1.0:
            raise ValueError("partition_duty must sit in (0, 1)")
        if self.loss_ramp_to > 1.0:
            raise ValueError("loss_ramp_to must be <= 1")


@dataclass(frozen=True)
class PersonaAssignment:
    """Bind one misbehaving persona to one node."""

    node: int
    persona: str

    def validate(self, num_sites: int) -> None:
        from repro.scenario.personas import PERSONA_NAMES

        if not 0 <= self.node < num_sites:
            raise ValueError(
                f"persona node {self.node} outside 0..{num_sites - 1}"
            )
        if self.persona not in PERSONA_NAMES:
            raise ValueError(f"unknown persona {self.persona!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario, minus the seed.

    Attributes:
        name: human label.  The digest covers every field, name
            included, so two specs are interchangeable iff their
            JSON forms are equal.
        kind: ``synthetic`` or a legacy harness kind.
        space_size: addresses in the (abstract) scoped space.
        horizon: simulated seconds to run.
        announce_interval: fixed re-announcement interval.
        cache_timeout: seconds of announcement silence after which a
            cache entry is stale.
        expiry_sweep: period of the per-directory cache expiry sweep;
            0 disables sweeping (stale claims then pin the space —
            the SCN905 shape).
        starvation_moves: SCN902 threshold — a directory forced to
            move addresses this many times under a flash crowd is
            starved.
        arrival / lifetime / demand / topology: sub-specs above.
        personas: misbehaving-node assignments.
        legacy: JSON-safe ``(key, value)`` parameter pairs for the
            legacy harness kinds.
    """

    name: str = "scenario"
    kind: str = "synthetic"
    space_size: int = 16
    horizon: float = 600.0
    announce_interval: float = 20.0
    cache_timeout: float = 3600.0
    expiry_sweep: float = 0.0
    starvation_moves: int = 64
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    lifetime: LifetimeSpec = field(default_factory=LifetimeSpec)
    demand: DemandSpec = field(default_factory=DemandSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    personas: Tuple[PersonaAssignment, ...] = ()
    legacy: Tuple[Tuple[str, Any], ...] = ()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Check every field; returns self so calls chain.

        Raises:
            ValueError: on the first out-of-range field.
        """
        if self.kind not in SPEC_KINDS:
            raise ValueError(f"unknown spec kind {self.kind!r}")
        if not self.name:
            raise ValueError("spec name must be non-empty")
        if self.kind != "synthetic":
            return self
        if not 2 <= self.space_size <= 1 << 20:
            raise ValueError("space_size must sit in 2..2^20")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.announce_interval <= 0:
            raise ValueError("announce_interval must be positive")
        if self.cache_timeout <= 0:
            raise ValueError("cache_timeout must be positive")
        if self.expiry_sweep < 0:
            raise ValueError("expiry_sweep must be >= 0")
        if self.starvation_moves < 1:
            raise ValueError("starvation_moves must be >= 1")
        self.arrival.validate()
        self.lifetime.validate()
        self.demand.validate()
        self.topology.validate()
        seen = set()
        for assignment in self.personas:
            assignment.validate(self.topology.num_sites)
            if assignment.node in seen:
                raise ValueError(
                    f"node {assignment.node} has two personas"
                )
            seen.add(assignment.node)
        return self

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; exact inverse of :meth:`from_dict`."""
        return _as_dict(self)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, minimal separators."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Raises:
            ValueError: on unknown or missing fields.
        """
        return _from_dict(cls, payload)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Content identity: sha256 of the canonical JSON, 16 hex."""
        raw = self.to_json().encode("utf-8")
        return hashlib.sha256(raw).hexdigest()[:16]

    def stream_prefix(self) -> str:
        """Every engine RNG key starts here (FLOW602 namespace)."""
        return f"scenario/{self.digest()}"

    def legacy_params(self) -> Dict[str, Any]:
        """The legacy pairs as a dict (synthetic specs: empty)."""
        return {key: value for key, value in self.legacy}


#: Field paths the shrinker treats as one unit (tuples shrink
#: element-wise, not field-wise).
_ATOMIC_FIELDS = ("personas", "legacy", "demand.ttls",
                  "demand.ttl_weights")


def _as_dict(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _as_dict(getattr(value, f.name))
                for f in fields(value)}
    if isinstance(value, tuple):
        return [_as_dict(item) for item in value]
    return value


def _from_dict(cls: type, payload: Dict[str, Any]) -> Any:
    if not isinstance(payload, dict):
        raise ValueError(f"expected an object for {cls.__name__}, "
                         f"got {type(payload).__name__}")
    known = {f.name: f for f in fields(cls)}
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}"
        )
    kwargs: Dict[str, Any] = {}
    for name, value in payload.items():
        kwargs[name] = _revive(cls, name, value)
    return cls(**kwargs)


def _revive(cls: type, name: str, value: Any) -> Any:
    if cls is ScenarioSpec:
        nested = {"arrival": ArrivalSpec, "lifetime": LifetimeSpec,
                  "demand": DemandSpec, "topology": TopologySpec}
        if name in nested:
            return _from_dict(nested[name], value)
        if name == "personas":
            return tuple(_from_dict(PersonaAssignment, item)
                         for item in value)
        if name == "legacy":
            return tuple((str(key), item) for key, item in value)
    if isinstance(value, list):
        return tuple(value)
    return value


def baseline_spec() -> ScenarioSpec:
    """The neutral baseline every shrink converges toward."""
    return ScenarioSpec()


def active_fields(spec: ScenarioSpec) -> List[str]:
    """Dotted paths where ``spec`` differs from the baseline.

    Nested sub-spec fields count individually
    (``topology.partition_storms``); tuple-valued fields count as one
    (``personas``).  ``name`` is excluded: it is a label, and although
    it participates in the digest (and so re-keys the streams), it
    carries no behavioural weight worth shrinking away.  The
    shrinker's "≤ N active fields" contract is measured with exactly
    this function.
    """
    return [path for path in _diff(spec, baseline_spec(), prefix="")
            if path != "name"]


def _diff(value: Any, base: Any, prefix: str) -> List[str]:
    out: List[str] = []
    if is_dataclass(value) and not isinstance(value, type):
        for f in fields(value):
            path = f"{prefix}{f.name}"
            if path in _ATOMIC_FIELDS or not is_dataclass(
                    getattr(value, f.name)):
                if getattr(value, f.name) != getattr(base, f.name):
                    out.append(path)
            else:
                out.extend(_diff(getattr(value, f.name),
                                 getattr(base, f.name),
                                 prefix=f"{path}."))
        return out
    if value != base:
        out.append(prefix.rstrip("."))
    return out
