"""SCN9xx — scenario-level runtime invariants.

The SAN2xx sanitizers check the *kernel* (allocations, scopes, clocks,
caches); the SCN9xx rules check the *scenario*: protocol-level
promises that only make sense over a whole workload.  Band SCN901–914
on the shared registry; SCN901–905 are invariants the engine checks
over a run, SCN911–912 are diagnostics about the fuzzing machinery
itself.
"""

from __future__ import annotations

#: code -> rule name, mirroring sanitize's VIOLATION_CODES shape.
SCENARIO_RUNTIME_CODES = {
    "SCN901": "partition-heal-double-claim",
    "SCN902": "flash-crowd-starvation",
    "SCN903": "ttl-liar-acceptance",
    "SCN904": "misbehaver-residual-clash",
    "SCN905": "churned-ghost-entry",
    "SCN911": "run-event-budget-exhausted",
    "SCN912": "replay-mismatch",
}

#: Degraded-run diagnostics: the scenario's protocol verdict is still
#: trustworthy, so these never fail a run on their own.
SCENARIO_ADVISORY_CODES = frozenset({"SCN911"})

SCENARIO_RULE_DESCRIPTIONS = {
    "SCN901": "two honest sites still claiming one address after a "
              "partition healed (the paper's §3 repair never "
              "completed)",
    "SCN902": "a directory forced to move addresses more than the "
              "spec's starvation threshold under a flash crowd "
              "(allocation livelock instead of a grant)",
    "SCN903": "an honest cache accepted an announcement whose "
              "arrival TTL exceeds the scope its SDP claims (a TTL "
              "liar's claim taken at face value)",
    "SCN904": "a live address still claimed by two overlapping "
              "sessions at end of run with a misbehaving persona "
              "involved (the clash protocol could not repair around "
              "the adversary)",
    "SCN905": "a cache entry older than the announcement timeout "
              "still present at end of run (a churned-away node's "
              "stale claim pinning address space)",
    "SCN911": "a run stopped at its event budget before reaching "
              "the horizon (scenario truncated; raise --max-events "
              "to see it through)",
    "SCN912": "re-running a minimized counterexample from its "
              "emitted (spec, seed) artifact did not reproduce the "
              "original violation (the determinism contract broke)",
}
