"""Misbehaving-allocator personas (the adversary model).

The paper's claims assume every site runs the announce/listen
protocol faithfully.  A persona is a small policy object a
:class:`~repro.sap.directory.SessionDirectory` consults through the
same ``is not None`` hook convention the sanitizer and profiler use —
zero cost when absent, and the honest code path is byte-identical
with no persona attached.

Four adversaries, each attacking a different protocol assumption:

* ``never-listens`` — drops every received packet, so it allocates
  blind against an empty visible set (the §2.1 "informed" premise
  broken outright).
* ``deaf-after-claim`` — listens honestly until its first session is
  established, then goes deaf: it can still *announce* (and so keeps
  its claim pinned) but never hears a clash, so it can neither
  retreat nor defend intelligently.
* ``always-defends`` — never retreats: even a just-announced session
  is defended as if established, breaking the §3 newcomer-yields
  tie-break and leaving persistent double claims.
* ``ttl-liar`` — announces every packet at TTL 255 while its SDP
  still claims the session's real (smaller) scope, so remote caches
  accept a claim whose delivery scope contradicts its declared scope.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type


class Persona:
    """Honest behaviour; subclasses override specific decisions."""

    #: Registry key; subclasses must set it.
    name = "honest"

    def drops_packet(self, directory, packet) -> bool:
        """True to ignore a received packet entirely."""
        del directory, packet
        return False

    def overrides_retreat(self, directory, own) -> bool:
        """True to defend (phase 1) where the protocol says retreat."""
        del directory, own
        return False

    def announce_ttl(self, directory, ttl: int) -> int:
        """The TTL actually stamped on an outgoing packet."""
        del directory
        return ttl


class NeverListens(Persona):
    name = "never-listens"

    def drops_packet(self, directory, packet) -> bool:
        del directory, packet
        return True


class DeafAfterClaim(Persona):
    name = "deaf-after-claim"

    def drops_packet(self, directory, packet) -> bool:
        del packet
        return len(directory.own_sessions()) > 0


class AlwaysDefends(Persona):
    name = "always-defends"

    def overrides_retreat(self, directory, own) -> bool:
        del directory, own
        return True


class TtlLiar(Persona):
    name = "ttl-liar"

    #: The inflated scope every packet is sent with.
    LIE_TTL = 255

    def announce_ttl(self, directory, ttl: int) -> int:
        del directory
        return self.LIE_TTL


_PERSONA_CLASSES: Tuple[Type[Persona], ...] = (
    NeverListens, DeafAfterClaim, AlwaysDefends, TtlLiar,
)

#: name -> class, for spec validation and engine construction.
PERSONAS: Dict[str, Type[Persona]] = {
    cls.name: cls for cls in _PERSONA_CLASSES
}

PERSONA_NAMES: Tuple[str, ...] = tuple(sorted(PERSONAS))


def make_persona(name: str) -> Persona:
    """Instantiate the persona registered under ``name``.

    Raises:
        ValueError: for an unknown persona name.
    """
    try:
        cls = PERSONAS[name]
    except KeyError:
        raise ValueError(
            f"unknown persona {name!r}; known: "
            f"{', '.join(PERSONA_NAMES)}"
        ) from None
    return cls()
