"""repro.scenario — declarative workloads, adversaries and fuzzing.

The ROADMAP's north star asks for "as many scenarios as you can
imagine"; the four hand-coded harnesses (kernel/clash/steady/chaos)
cover exactly four.  This package turns scenarios into *data*:

* :mod:`repro.scenario.spec` — a frozen, JSON-round-trippable
  :class:`~repro.scenario.spec.ScenarioSpec` composing arrival
  processes (Poisson, diurnal, flash crowd), heavy-tailed session
  lifetimes, address-demand shapes (uniform, hotspot, multifractal
  cascade), topology dynamics (churn, partition storms, loss ramps)
  and misbehaving-allocator personas;
* :mod:`repro.scenario.engine` — runs a spec through the real
  ``sim``/``sap`` stack, every draw keyed under
  ``scenario/<spec-digest>/...`` so any run replays from
  ``(spec, seed)`` alone;
* :mod:`repro.scenario.invariants` — scenario-level runtime rules
  SCN901–905 layered over the SAN2xx sanitizers;
* :mod:`repro.scenario.generator` / :mod:`~repro.scenario.shrink` /
  :mod:`~repro.scenario.fuzz` — sample random specs, run them under
  the sanitizer + invariants, and delta-debug any violating spec down
  to a minimal replayable JSON artifact.

``python -m repro.scenario`` (or ``repro scenario``) is the ninth CLI
on the shared rule registry.
"""

from repro.scenario.engine import ScenarioRun, run_spec
from repro.scenario.spec import (
    ArrivalSpec,
    DemandSpec,
    LifetimeSpec,
    PersonaAssignment,
    ScenarioSpec,
    TopologySpec,
)

__all__ = [
    "ArrivalSpec",
    "DemandSpec",
    "LifetimeSpec",
    "PersonaAssignment",
    "ScenarioRun",
    "ScenarioSpec",
    "TopologySpec",
    "run_spec",
]
