"""``python -m repro.scenario`` — the scenario/fuzzing CLI.

Same contract as the other eight tools: exit 0 clean, 1 findings,
2 usage error; ``--list-rules`` prints the shared registry;
``--format github`` emits Actions annotations.

Three verbs:

* ``run`` — execute one :class:`ScenarioSpec` from ``--spec FILE``
  (or the neutral baseline); hard SCN/SAN violations exit 1.
* ``replay`` — re-run a counterexample artifact (``--artifact FILE``,
  the JSON the fuzzer emitted) and verify the trace hash; a mismatch
  is SCN912 and exits 1.
* ``fuzz`` — a bounded campaign (``--runs N``); *found* violations
  are the product and exit 0, only an SCN912 replay failure — the
  determinism machinery itself breaking — exits 1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)
from repro.scenario.cache import DEFAULT_CACHE_FILE, RunCache
from repro.scenario.engine import (
    DEFAULT_MAX_EVENTS,
    ScenarioRun,
    run_spec,
)
from repro.scenario.fuzz import FUZZ_MAX_EVENTS, FuzzReport, run_fuzz
from repro.scenario.rules import SCENARIO_ADVISORY_CODES
from repro.scenario.spec import ScenarioSpec

#: The repo-wide scenario seed (1998-09-02, the SIGCOMM'98 week).
DEFAULT_SEED = 0x19980902


def _seed_value(text: str) -> int:
    """Seed argument: decimal or prefixed (0x/0o/0b) literal."""
    return int(text, 0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description=("declarative workload/adversary scenarios "
                     "(SCN901–905 invariants) with a deterministic "
                     "generate-run-shrink fuzzing loop"),
    )
    parser.add_argument(
        "command", nargs="?", choices=("run", "replay", "fuzz"),
        default="fuzz",
        help="run one spec, replay an artifact, or fuzz (default)",
    )
    add_report_arguments(parser)
    parser.add_argument(
        "--spec", metavar="FILE",
        help="ScenarioSpec JSON for 'run' (default: the baseline "
             "spec)",
    )
    parser.add_argument(
        "--artifact", metavar="FILE",
        help="counterexample artifact JSON for 'replay'",
    )
    parser.add_argument(
        "--seed", type=_seed_value, default=DEFAULT_SEED,
        help=f"campaign/run seed, decimal or 0x hex "
             f"(default: {DEFAULT_SEED:#x})",
    )
    parser.add_argument(
        "--runs", type=int, default=100, metavar="N",
        help="fuzz campaign size (default: 100)",
    )
    parser.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="per-run event budget, the deterministic timeout "
             f"(default: {DEFAULT_MAX_EVENTS} for run/replay, "
             f"{FUZZ_MAX_EVENTS} for fuzz)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fuzz worker processes (>1 shards runs over "
             "repro.fleet; same report, any worker count)",
    )
    parser.add_argument(
        "--corpus-out", metavar="DIR",
        help="write fuzz artifacts here: report.json plus one "
             "minimized-<index>.json per shrunk counterexample",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debug minimization of counterexamples",
    )
    parser.add_argument(
        "--shrink-budget", type=int, default=48, metavar="N",
        help="candidate runs allowed per shrink (default: 48)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="also print the run's full trace (run/replay)",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="also write the report to this file",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-run, ignoring the on-disk run cache",
    )
    parser.add_argument(
        "--cache-file", default=DEFAULT_CACHE_FILE,
        help=f"run cache location (default: {DEFAULT_CACHE_FILE})",
    )
    return parser


def _load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return payload


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")


# ---------------------------------------------------------------------
# run / replay
# ---------------------------------------------------------------------
def _render_run_text(run: ScenarioRun) -> str:
    lines = [run.summary()]
    for violation in run.violations:
        lines.append(violation.format())
    return "\n".join(lines)


def _render_run_github(run: ScenarioRun) -> str:
    lines = []
    for violation in run.violations:
        level = ("notice" if violation.code in SCENARIO_ADVISORY_CODES
                 else "error")
        lines.append(
            f"::{level} title={violation.code} "
            f"[{violation.rule}]::scenario {run.spec.name} "
            f"(digest {run.digest}) t={violation.time:.4f}: "
            f"{violation.message}"
        )
    return "\n".join(lines)


def _report_run(run: ScenarioRun, args: argparse.Namespace) -> None:
    if args.format == "json":
        _emit(json.dumps(run.to_dict(), indent=2, sort_keys=True),
              args.out)
    elif args.format == "github":
        output = _render_run_github(run)
        if output:
            _emit(output, args.out)
    else:
        _emit(_render_run_text(run), args.out)
    if args.trace and args.format != "json":
        print(run.trace, end="")


def cmd_run(args: argparse.Namespace) -> int:
    if args.spec:
        spec = ScenarioSpec.from_dict(_load_json(args.spec))
    else:
        spec = ScenarioSpec()
    spec.validate()
    budget = (args.max_events if args.max_events is not None
              else DEFAULT_MAX_EVENTS)
    run = run_spec(spec, args.seed, max_events=budget)
    _report_run(run, args)
    return EXIT_CLEAN if run.clean else EXIT_FINDINGS


def cmd_replay(args: argparse.Namespace) -> int:
    if not args.artifact:
        raise ValueError("replay requires --artifact FILE")
    artifact = _load_json(args.artifact)
    # Corpus files wrap the artifact; bare artifacts work too.
    if "artifact" in artifact and isinstance(artifact["artifact"],
                                             dict):
        artifact = artifact["artifact"]
    for field in ("spec", "seed", "trace_sha256"):
        if field not in artifact:
            raise ValueError(
                f"{args.artifact}: artifact missing {field!r}")
    spec = ScenarioSpec.from_dict(artifact["spec"])
    # A trace is only reproducible under the budget it ran with; the
    # artifact records it, an explicit --max-events overrides.
    if args.max_events is not None:
        budget = args.max_events
    else:
        budget = int(artifact.get("max_events", DEFAULT_MAX_EVENTS))
    run = run_spec(spec, int(artifact["seed"]), max_events=budget)
    expected = artifact["trace_sha256"]
    replayed = run.trace_sha256()
    _report_run(run, args)
    if replayed != expected:
        message = (f"SCN912 [replay-mismatch] artifact expected "
                   f"trace {expected}, replay produced {replayed}")
        if args.format == "github":
            print(f"::error title=SCN912 [replay-mismatch]::{message}")
        else:
            print(message)
        return EXIT_FINDINGS
    print(f"replay ok: trace {replayed} reproduced "
          f"({len(run.hard_violations)} hard violations, as recorded)")
    return EXIT_CLEAN


# ---------------------------------------------------------------------
# fuzz
# ---------------------------------------------------------------------
def _render_fuzz_text(report: FuzzReport) -> str:
    lines = [report.summary()]
    for entry in report.counterexamples:
        codes = ",".join(entry["codes"])
        line = (f"counterexample run {entry['index']}: {codes} "
                f"(digest {entry['artifact']['digest']})")
        if entry["shrunk"]:
            minimized = entry["minimized"]
            line += (f" minimized to "
                     f"{len(minimized['active_fields'])} active "
                     f"field(s): "
                     f"{', '.join(minimized['active_fields']) or '—'}")
        lines.append(line)
    for failure in report.replay_failures:
        lines.append(
            f"SCN912 [replay-mismatch] run {failure['index']} "
            f"(digest {failure['digest']}): expected "
            f"{failure['expected_trace_sha256']}, got "
            f"{failure['replayed_trace_sha256']}"
        )
    return "\n".join(lines)


def _render_fuzz_github(report: FuzzReport) -> str:
    lines = [
        f"::notice title=scenario fuzz::{report.summary()}",
    ]
    for entry in report.counterexamples:
        codes = ",".join(entry["codes"])
        lines.append(
            f"::notice title=scenario counterexample::run "
            f"{entry['index']} digest "
            f"{entry['artifact']['digest']}: {codes}"
        )
    for failure in report.replay_failures:
        lines.append(
            f"::error title=SCN912 [replay-mismatch]::run "
            f"{failure['index']} digest {failure['digest']}: "
            f"expected {failure['expected_trace_sha256']}, got "
            f"{failure['replayed_trace_sha256']}"
        )
    return "\n".join(lines)


def _write_corpus(report: FuzzReport, directory: str) -> None:
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "report.json"), "w",
              encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    for entry in report.counterexamples:
        payload = {
            "artifact": entry["artifact"],
            "codes": entry["codes"],
        }
        if entry["shrunk"]:
            payload["minimized"] = entry["minimized"]
        path = os.path.join(directory,
                            f"minimized-{entry['index']}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


def cmd_fuzz(args: argparse.Namespace) -> int:
    if args.runs < 1:
        raise ValueError(f"--runs must be >= 1, got {args.runs}")
    if args.jobs < 1:
        raise ValueError(f"--jobs must be >= 1, got {args.jobs}")
    budget = (args.max_events if args.max_events is not None
              else FUZZ_MAX_EVENTS)
    cache = None if args.no_cache else RunCache(args.cache_file)
    report = run_fuzz(
        args.seed, args.runs, max_events=budget, jobs=args.jobs,
        shrink=not args.no_shrink, shrink_budget=args.shrink_budget,
        cache=cache,
    )
    if cache is not None:
        cache.save()
    if args.corpus_out:
        _write_corpus(report, args.corpus_out)
    if args.format == "json":
        _emit(json.dumps(report.to_dict(), indent=2, sort_keys=True),
              args.out)
    elif args.format == "github":
        _emit(_render_fuzz_github(report), args.out)
    else:
        _emit(_render_fuzz_text(report), args.out)
    return EXIT_CLEAN if report.machinery_ok else EXIT_FINDINGS


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN

    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "replay":
            return cmd_replay(args)
        return cmd_fuzz(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro-scenario: error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
