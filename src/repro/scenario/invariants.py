"""SCN901–905 — scenario-level runtime invariants.

The SAN2xx sanitizers shadow the *kernel* (allocations, scopes,
clocks, caches); a :class:`ScenarioMonitor` checks the *protocol
outcome* of a whole workload: did the clash repair complete after the
partitions healed, did the flash crowd starve anyone, did an adversary
poison honest caches.  Violations are
:class:`~repro.sanitize.report.Violation` values so one report model
serves both layers.

The monitor observes and never steers: attaching one does not change
the run's event sequence, so traces stay byte-identical with or
without it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.sanitize.report import Violation
from repro.sap.messages import SapMessage, SapMessageType
from repro.sap.sdp import SessionDescription
from repro.scenario.rules import SCENARIO_RUNTIME_CODES
from repro.scenario.spec import ScenarioSpec


class ScenarioMonitor:
    """Checks SCN901–905 over one synthetic scenario run.

    Args:
        spec: the scenario being run (thresholds and persona map).

    Usage: construct, :meth:`watch` after the directories exist (the
    TTL probe must run *after* each directory's own packet handler so
    it sees post-acceptance cache state), then :meth:`finish` once the
    scheduler stops.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.violations: List[Violation] = []
        self.persona_of: Dict[int, str] = {
            assignment.node: assignment.persona
            for assignment in spec.personas
        }
        self._directories: list = []
        self._ttl_flagged: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def record(self, code: str, message: str, time: float) -> None:
        """Append one SCN violation (codes checked against the band)."""
        self.violations.append(Violation(
            code=code, rule=SCENARIO_RUNTIME_CODES[code],
            message=message, time=time,
        ))

    # ------------------------------------------------------------------
    # Delivery-time probe (SCN903)
    # ------------------------------------------------------------------
    def watch(self, directories, network) -> None:
        """Register the TTL-liar acceptance probe at honest sites."""
        self._directories = list(directories)
        liars = {node for node, persona in self.persona_of.items()
                 if persona == "ttl-liar"}
        if not liars:
            return
        for directory in self._directories:
            if directory.node in self.persona_of:
                continue
            network.listen(directory.node,
                           self._make_ttl_probe(directory, liars))

    def _make_ttl_probe(self, directory, liars: Set[int]):
        def probe(receiver: int, packet) -> None:
            if packet.source not in liars:
                return
            try:
                message = SapMessage.decode(packet.payload)
            except ValueError:
                return
            if message.msg_type is not SapMessageType.ANNOUNCE:
                return
            try:
                description = SessionDescription.parse(message.payload)
            except ValueError:
                return
            if packet.ttl <= description.ttl:
                return
            if directory.cache.lookup(*message.key()) is None:
                return
            flag = (receiver, packet.source)
            if flag in self._ttl_flagged:
                return
            self._ttl_flagged.add(flag)
            self.record(
                "SCN903",
                f"site {receiver} cached node {packet.source}'s claim "
                f"announced at ttl={packet.ttl} while its SDP scopes "
                f"it to ttl={description.ttl}",
                time=directory.scheduler.now,
            )
        return probe

    # ------------------------------------------------------------------
    # End-of-run checks (SCN901/902/904/905)
    # ------------------------------------------------------------------
    def finish(self, now: float) -> List[Violation]:
        """Run the end-of-run checks; returns all SCN violations."""
        self._check_residual_claims(now)
        self._check_starvation(now)
        self._check_ghost_entries(now)
        return self.violations

    def _check_residual_claims(self, now: float) -> None:
        """SCN901 (honest, post-partition) / SCN904 (adversarial)."""
        owners: Dict[int, List[int]] = {}
        for directory in self._directories:
            for own in directory.own_sessions():
                owners.setdefault(own.session.address,
                                  []).append(directory.node)
        for address in sorted(owners):
            nodes = sorted(set(owners[address]))
            if len(nodes) < 2:
                continue
            misbehaving = [node for node in nodes
                           if node in self.persona_of]
            label = ",".join(str(node) for node in nodes)
            if misbehaving:
                personas = ",".join(self.persona_of[node]
                                    for node in misbehaving)
                self.record(
                    "SCN904",
                    f"address {address} still claimed by sites "
                    f"{label} at end of run ({personas} involved)",
                    time=now,
                )
            elif self.spec.topology.partition_storms > 0:
                self.record(
                    "SCN901",
                    f"address {address} still claimed by honest "
                    f"sites {label} after every partition healed",
                    time=now,
                )

    def _check_starvation(self, now: float) -> None:
        """SCN902: flash-crowd moves past the starvation threshold."""
        if self.spec.arrival.process != "flash-crowd":
            return
        for directory in self._directories:
            if directory.node in self.persona_of:
                continue
            if directory.address_changes >= self.spec.starvation_moves:
                self.record(
                    "SCN902",
                    f"site {directory.node} moved addresses "
                    f"{directory.address_changes} times under the "
                    f"flash crowd (threshold "
                    f"{self.spec.starvation_moves})",
                    time=now,
                )

    def _check_ghost_entries(self, now: float) -> None:
        """SCN905: stale claims still pinning space at end of run."""
        timeout = self.spec.cache_timeout
        for directory in self._directories:
            if directory.node in self.persona_of:
                continue
            ghosts: Dict[int, int] = {}
            for entry in directory.cache.entries():
                if now - entry.last_heard > timeout:
                    origin = entry.message.origin
                    ghosts[origin] = ghosts.get(origin, 0) + 1
            for origin in sorted(ghosts):
                self.record(
                    "SCN905",
                    f"site {directory.node} still caches "
                    f"{ghosts[origin]} entr"
                    f"{'y' if ghosts[origin] == 1 else 'ies'} from "
                    f"node {origin} unheard for over {timeout:g}s",
                    time=now,
                )
