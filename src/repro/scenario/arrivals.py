"""Arrival-time and lifetime sampling.

Non-homogeneous processes (diurnal, flash crowd) are sampled by Lewis
thinning against the peak rate, so every process is an exact
inhomogeneous Poisson process and every draw comes from the single
stream the engine passes in — replayable from ``(spec, seed)``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.scenario.spec import ArrivalSpec, LifetimeSpec

#: Hard cap on sessions per run: a sampled spec cannot explode one
#: fuzz run into millions of sessions (the per-run budget still
#: bounds *events*; this bounds the memory for the arrival list).
MAX_ARRIVALS = 10_000


def rate_at(spec: ArrivalSpec, t: float, horizon: float) -> float:
    """The instantaneous arrival rate at simulated time ``t``."""
    if spec.process == "poisson":
        return spec.rate
    if spec.process == "diurnal":
        phase = 2.0 * np.pi * t / spec.diurnal_period
        return spec.rate * (1.0 + spec.diurnal_depth * float(np.sin(phase)))
    start = spec.flash_start * horizon
    width = spec.flash_width * horizon
    if start <= t < start + width:
        return spec.rate * spec.flash_multiplier
    return spec.rate


def peak_rate(spec: ArrivalSpec) -> float:
    """An upper bound on :func:`rate_at` over any horizon."""
    if spec.process == "diurnal":
        return spec.rate * (1.0 + spec.diurnal_depth)
    if spec.process == "flash-crowd":
        return spec.rate * spec.flash_multiplier
    return spec.rate


def sample_arrivals(spec: ArrivalSpec, horizon: float,
                    rng: np.random.Generator) -> List[float]:
    """Arrival instants over ``[0, horizon)``, ascending.

    Thinning: candidate gaps are exponential at the peak rate; each
    candidate survives with probability ``rate_at(t) / peak``.
    """
    peak = peak_rate(spec)
    times: List[float] = []
    t = 0.0
    while len(times) < MAX_ARRIVALS:
        t += float(rng.exponential(1.0 / peak))
        if t >= horizon:
            break
        if float(rng.random()) * peak <= rate_at(spec, t, horizon):
            times.append(t)
    return times


def sample_lifetime(spec: LifetimeSpec,
                    rng: np.random.Generator) -> float:
    """One session lifetime in seconds (always >= ``spec.minimum``)."""
    if spec.distribution == "uniform":
        # Uniform on [minimum, 2*mean - minimum]: mean matches spec.
        return float(rng.uniform(spec.minimum,
                                 2.0 * spec.mean - spec.minimum))
    if spec.distribution == "exponential":
        return spec.minimum + float(
            rng.exponential(spec.mean - spec.minimum)
        )
    # Pareto with shape alpha and scale chosen so the mean matches:
    # E = minimum + scale / (alpha - 1).
    scale = (spec.mean - spec.minimum) * (spec.pareto_alpha - 1.0)
    return spec.minimum + float(rng.pareto(spec.pareto_alpha)) * scale
