"""Address-demand shapes over the scoped space.

The workload controls *where* demand lands: which sites create
sessions (the site-weight vector) and at what scope (the TTL draw).
Three shapes:

* ``uniform`` — every site equally likely;
* ``hotspot`` — a fixed fraction of sites carries most of the mass
  (the flash-crowd / popular-campus shape);
* ``multifractal`` — a multiplicative binomial cascade over the site
  population, the arXiv 2504.01374 observation that real address
  demand is multifractally skewed, mapped onto the scoped space:
  at every level a biased coin sends mass left or right, so the
  weight vector is rough at every scale rather than smoothly skewed.
"""

from __future__ import annotations

import numpy as np

from repro.scenario.spec import DemandSpec


def site_weights(spec: DemandSpec, num_sites: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Per-site arrival probabilities, summing to 1.

    The cascade draws from ``rng`` (one orientation bit per node of
    the binary cascade tree), so the skew pattern itself is part of
    the scenario and replays with it.
    """
    if spec.shape == "uniform":
        return np.full(num_sites, 1.0 / num_sites)
    if spec.shape == "hotspot":
        hot = max(1, int(round(spec.hotspot_fraction * num_sites)))
        hot = min(hot, num_sites)
        weights = np.full(
            num_sites, (1.0 - spec.hotspot_weight) / max(1, num_sites - hot)
        )
        weights[:hot] = spec.hotspot_weight / hot
        if hot == num_sites:
            weights[:] = 1.0 / num_sites
        return weights / weights.sum()
    # Multifractal cascade: build over the next power of two, then
    # fold the tail back onto the real sites.
    levels = spec.cascade_depth
    cells = 1 << levels
    weights = np.ones(1)
    for __ in range(levels):
        orientation = rng.random(weights.shape[0]) < 0.5
        left = np.where(orientation, spec.cascade_bias,
                        1.0 - spec.cascade_bias)
        expanded = np.empty(weights.shape[0] * 2)
        expanded[0::2] = weights * left
        expanded[1::2] = weights * (1.0 - left)
        weights = expanded
    folded = np.zeros(num_sites)
    for cell in range(cells):
        folded[cell % num_sites] += weights[cell]
    return folded / folded.sum()


def sample_site(spec: DemandSpec, weights: np.ndarray,
                rng: np.random.Generator) -> int:
    """The site the next session is created at."""
    del spec
    return int(rng.choice(weights.shape[0], p=weights))


def sample_ttl(spec: DemandSpec, rng: np.random.Generator) -> int:
    """The scope TTL the next session requests."""
    weights = np.asarray(spec.ttl_weights, dtype=float)
    weights = weights / weights.sum()
    return int(rng.choice(np.asarray(spec.ttls), p=weights))
