"""Run a :class:`~repro.scenario.spec.ScenarioSpec` on the real stack.

One entry point, :func:`run_spec`, and one determinism contract: a run
is a pure function of ``(spec, seed)``.  Every engine-level draw —
arrivals, lifetimes, site choice, TTL choice, cascade orientation,
churn victims — comes from a stream keyed under
``scenario/<spec-digest>/...``, so two runs of the same spec and seed
are byte-identical and a violating run replays from its emitted JSON
artifact alone.

Synthetic specs build a full-mesh substrate modelled on the obs steady
harness (deterministic asymmetric per-pair delays, tight abstract
space), layer the spec's dynamics on top (churn, partition storms,
loss ramps, personas) and run under the SAN2xx sanitizers plus the
SCN9xx :class:`~repro.scenario.invariants.ScenarioMonitor`.  Legacy
kinds (``kernel``/``clash``/``steady``/``chaos``) dispatch to the
repo's original harnesses, so the four hand-coded scenarios are
expressible as committed spec fixtures whose traces match the
originals byte for byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sanitize.report import Violation
from repro.scenario.arrivals import sample_arrivals, sample_lifetime
from repro.scenario.demand import sample_site, sample_ttl, site_weights
from repro.scenario.invariants import ScenarioMonitor
from repro.scenario.personas import make_persona
from repro.scenario.rules import (
    SCENARIO_ADVISORY_CODES,
    SCENARIO_RUNTIME_CODES,
)
from repro.scenario.spec import ScenarioSpec

#: Default per-run event budget — the deterministic analogue of a
#: wall-clock timeout (wall clocks are banned; see SIM103).  A run
#: stopping here instead of at its horizon reports advisory SCN911.
DEFAULT_MAX_EVENTS = 400_000

#: Events per scheduler chunk between circuit-breaker checks.
_CHUNK_EVENTS = 2048

#: The livelock circuit breaker trips at this many address moves per
#: site on average: adversarial retreat ping-pong moves addresses at
#: network-delay timescale, so a run past this bound has its verdict
#: (starvation and/or residual clash) long since determined and the
#: remaining budget would only re-confirm it.
_MOVES_PER_SITE_CAP = 96


@dataclass
class ScenarioRun:
    """Everything one :func:`run_spec` call produced."""

    spec: ScenarioSpec
    seed: int
    violations: List[Violation] = field(default_factory=list)
    trace: str = ""
    events_run: int = 0
    sessions_created: int = 0
    horizon_reached: bool = True
    max_events: int = DEFAULT_MAX_EVENTS

    @property
    def digest(self) -> str:
        return self.spec.digest()

    @property
    def hard_violations(self) -> List[Violation]:
        """Violations that fail the run (advisory SCN codes excluded)."""
        return [violation for violation in self.violations
                if violation.code not in SCENARIO_ADVISORY_CODES]

    @property
    def clean(self) -> bool:
        return not self.hard_violations

    def codes(self) -> List[str]:
        """Sorted distinct violation codes (advisory included)."""
        return sorted({violation.code for violation in self.violations})

    def trace_sha256(self) -> str:
        return hashlib.sha256(self.trace.encode("utf-8")).hexdigest()

    def artifact(self) -> Dict[str, Any]:
        """The replayable counterexample: everything a re-run needs."""
        return {
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "max_events": self.max_events,
            "digest": self.digest,
            "codes": self.codes(),
            "trace_sha256": self.trace_sha256(),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe run report (no trace body; its hash instead)."""
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "digest": self.digest,
            "seed": self.seed,
            "events_run": self.events_run,
            "sessions_created": self.sessions_created,
            "horizon_reached": self.horizon_reached,
            "clean": self.clean,
            "codes": self.codes(),
            "violations": [
                {"code": violation.code, "rule": violation.rule,
                 "time": round(violation.time, 6),
                 "message": violation.message}
                for violation in self.violations
            ],
            "trace_lines": self.trace.count("\n"),
            "trace_sha256": self.trace_sha256(),
        }

    def summary(self) -> str:
        codes = ",".join(self.codes()) or "clean"
        return (f"{self.spec.name}[{self.digest}] seed={self.seed}: "
                f"{codes} (sessions={self.sessions_created}, "
                f"events={self.events_run})")


def run_spec(spec: ScenarioSpec, seed: int,
             max_events: int = DEFAULT_MAX_EVENTS) -> ScenarioRun:
    """Validate and run ``spec``; returns the full run record.

    Raises:
        ValueError: if the spec fails validation.
    """
    spec.validate()
    if spec.kind == "kernel":
        run = _run_kernel(spec, seed)
    elif spec.kind == "clash":
        run = _run_clash(spec, seed)
    elif spec.kind == "steady":
        run = _run_steady(spec, seed, max_events)
    elif spec.kind == "chaos":
        run = _run_chaos(spec, seed)
    else:
        run = _run_synthetic(spec, seed, max_events)
    run.max_events = max_events
    return run


def run_sampled(spec: ScenarioSpec, seed: int,
                max_events: int = DEFAULT_MAX_EVENTS) -> ScenarioRun:
    """Synthetic-only entry point for the fuzz loop.

    Sampled specs are always ``kind="synthetic"``; routing them here
    instead of :func:`run_spec` keeps the legacy-harness dispatch
    (whose ``chaos`` arm calls the fleet sweep runner) off the
    ``scenario-fuzz-cell`` job path, so the job stays provably pure
    (FLOW612–614).
    """
    spec.validate()
    if spec.kind != "synthetic":
        raise ValueError(
            f"run_sampled only accepts synthetic specs, got "
            f"kind={spec.kind!r}"
        )
    run = _run_synthetic(spec, seed, max_events)
    run.max_events = max_events
    return run


# ----------------------------------------------------------------------
# The synthetic engine
# ----------------------------------------------------------------------
def _run_synthetic(spec: ScenarioSpec, seed: int,
                   max_events: int) -> ScenarioRun:
    from repro.core.adaptive import AdaptiveIprmaAllocator
    from repro.core.address_space import MulticastAddressSpace
    from repro.sanitize.context import SanitizerContext
    from repro.sap.announcer import FixedIntervalStrategy
    from repro.sap.cache import SessionCache
    from repro.sap.directory import SessionDirectory
    from repro.sim.events import EventScheduler
    from repro.sim.network import NetworkModel
    from repro.sim.rng import RandomStreams

    prefix = spec.stream_prefix()
    topo = spec.topology
    num_sites = topo.num_sites
    streams = RandomStreams(seed)
    scheduler = EventScheduler()
    sanitizer = SanitizerContext(scenario=f"scenario:{spec.name}")
    sanitizer.attach_scheduler(scheduler)

    def receiver_map(source: int, ttl: int):
        # Full mesh with deterministic, asymmetric per-pair delays
        # (the obs steady harness's substrate).
        return [(node, 0.01 + 0.002 * ((source + 3 * node) % 5))
                for node in range(num_sites) if node != source]

    network = NetworkModel(scheduler, receiver_map, streams=streams,
                           loss_rate=topo.loss_rate, jitter=topo.jitter)
    sanitizer.attach_network(network)
    space = MulticastAddressSpace.abstract(spec.space_size)
    persona_of = {assignment.node: assignment.persona
                  for assignment in spec.personas}

    directories: List[SessionDirectory] = []
    for node in range(num_sites):
        directory = SessionDirectory(
            node, scheduler, network,
            AdaptiveIprmaAllocator.aipr1(
                spec.space_size,
                rng=streams.get(f"{prefix}/alloc/{node}"),
            ),
            space,
            strategy_factory=lambda: FixedIntervalStrategy(
                spec.announce_interval
            ),
            cache=SessionCache(timeout=spec.cache_timeout),
            rng=streams.get(f"{prefix}/dir/{node}"),
        )
        sanitizer.watch_directory(directory)
        if node in persona_of:
            directory._persona = make_persona(persona_of[node])
        directories.append(directory)

    monitor = ScenarioMonitor(spec)
    monitor.watch(directories, network)

    sessions_created = _schedule_workload(spec, streams, scheduler,
                                          directories)
    _schedule_dynamics(spec, streams, scheduler, network)

    truncated_by = _run_chunked(spec, scheduler, directories,
                                max_events)
    horizon_reached = scheduler.now >= spec.horizon

    violations = list(sanitizer.violations)
    if not horizon_reached:
        violations.append(Violation(
            code="SCN911", rule=SCENARIO_RUNTIME_CODES["SCN911"],
            message=(f"stopped at t={scheduler.now:.4f} of "
                     f"{spec.horizon:g} ({truncated_by})"),
            time=scheduler.now,
        ))
    violations.extend(monitor.finish(scheduler.now))

    trace = _mesh_trace(_header(spec, seed), directories, violations,
                        network=network, scheduler=scheduler)
    return ScenarioRun(
        spec=spec, seed=seed, violations=violations, trace=trace,
        events_run=scheduler.events_run,
        sessions_created=sessions_created,
        horizon_reached=horizon_reached,
    )


def _run_chunked(spec: ScenarioSpec, scheduler, directories,
                 max_events: int) -> str:
    """Run to the horizon in chunks, checking circuit breakers.

    Deterministic: chunk boundaries fall at fixed event counts and
    every breaker reads only simulation state, so chunking never
    perturbs the trace — it only decides how early a doomed run
    stops.  Returns the truncation reason ("" if the horizon was
    reached or the queue drained).
    """
    persona_nodes = {assignment.node
                     for assignment in spec.personas}
    moves_cap = _MOVES_PER_SITE_CAP * spec.topology.num_sites
    flash = spec.arrival.process == "flash-crowd"
    base = scheduler.events_run
    while scheduler.now < spec.horizon:
        used = scheduler.events_run - base
        if used >= max_events:
            return f"event budget of {max_events} exhausted"
        scheduler.run(until=spec.horizon,
                      max_events=min(_CHUNK_EVENTS, max_events - used))
        total_moves = sum(directory.address_changes
                          for directory in directories)
        if total_moves >= moves_cap:
            return (f"move budget of {moves_cap} exhausted "
                    f"(retreat livelock)")
        if flash and any(
            directory.address_changes >= spec.starvation_moves
            for directory in directories
            if directory.node not in persona_nodes
        ):
            return "starvation verdict already determined"
    return ""


def _schedule_workload(spec: ScenarioSpec, streams, scheduler,
                       directories) -> int:
    """Pre-sample the whole workload, then schedule it.

    Drawing everything up front (rather than inside callbacks) fixes
    the draw order independently of event interleaving, which is what
    lets one stream per concern replay exactly.
    """
    prefix = spec.stream_prefix()
    arrival_times = sample_arrivals(
        spec.arrival, spec.horizon, streams.get(f"{prefix}/arrivals")
    )
    lifetime_rng = streams.get(f"{prefix}/lifetimes")
    demand_rng = streams.get(f"{prefix}/demand")
    weights = site_weights(spec.demand, spec.topology.num_sites,
                           streams.get(f"{prefix}/cascade"))

    def make_creation(directory, name: str, ttl: int, lifetime: float):
        def create() -> None:
            directory.create_session(name, ttl=ttl, lifetime=lifetime)
        return create

    for index, when in enumerate(arrival_times):
        site = sample_site(spec.demand, weights, demand_rng)
        ttl = sample_ttl(spec.demand, demand_rng)
        lifetime = sample_lifetime(spec.lifetime, lifetime_rng)
        scheduler.schedule_at(  # simlint: disable=discarded-handle
            when,
            make_creation(directories[site], f"s{index}@{site}",
                          ttl, lifetime),
        )

    if spec.expiry_sweep > 0:
        def sweep() -> None:
            for directory in directories:
                directory.expire_cache()
            if scheduler.now + spec.expiry_sweep < spec.horizon:
                scheduler.schedule(  # simlint: disable=discarded-handle
                    spec.expiry_sweep, sweep
                )
        scheduler.schedule(  # simlint: disable=discarded-handle
            spec.expiry_sweep, sweep
        )
    return len(arrival_times)


def _schedule_dynamics(spec: ScenarioSpec, streams, scheduler,
                       network) -> None:
    """Churn, partition storms and loss ramps from the spec."""
    prefix = spec.stream_prefix()
    topo = spec.topology

    if topo.churn_events:
        churn_rng = streams.get(f"{prefix}/churn")
        for __ in range(topo.churn_events):
            victim = int(churn_rng.integers(topo.num_sites))
            down_at = float(churn_rng.uniform(0.0, spec.horizon))
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                down_at, _detacher(network, victim)
            )
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                down_at + topo.churn_downtime, _attacher(network, victim)
            )

    if topo.partition_storms:
        half = range(topo.num_sites // 2)
        cycle = spec.horizon / topo.partition_storms
        for storm in range(topo.partition_storms):
            start = (storm + (1.0 - topo.partition_duty) / 2.0) * cycle
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                start, _partitioner(network, half)
            )
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                start + cycle * topo.partition_duty, network.heal
            )

    if topo.loss_ramp_to >= 0.0:
        steps = 16
        for step in range(1, steps + 1):
            frac = step / steps
            rate = (topo.loss_rate
                    + (topo.loss_ramp_to - topo.loss_rate) * frac)
            scheduler.schedule_at(  # simlint: disable=discarded-handle
                spec.horizon * frac * 0.999, _loss_setter(network, rate)
            )


def _detacher(network, node: int):
    return lambda: network.detach(node)


def _attacher(network, node: int):
    return lambda: network.attach(node)


def _partitioner(network, group):
    return lambda: network.partition(group)


def _loss_setter(network, rate: float):
    return lambda: network.set_loss_rate(rate)


# ----------------------------------------------------------------------
# Canonical traces
# ----------------------------------------------------------------------
def _header(spec: ScenarioSpec, seed: int) -> str:
    return (f"# scenario {spec.name} kind={spec.kind} "
            f"digest={spec.digest()} seed={seed}")


def _mesh_trace(header: str, directories, violations,
                network=None, scheduler=None) -> str:
    """The canonical end-state trace for full-mesh harness runs.

    Shared between the synthetic engine and the legacy ``steady``
    dispatch, so "the engine did not perturb the harness" is a
    byte-equality check on this text.
    """
    from repro.experiments.world import mesh_clashing_pairs

    lines = [header]
    for directory in directories:
        lines.append(
            f"site {directory.node}: "
            f"own={len(directory.own_sessions())} "
            f"cached={len(directory.cache)} "
            f"moves={directory.address_changes} "
            f"recv={directory.announcements_received}"
        )
    live = [own.session for directory in directories
            for own in directory.own_sessions()]
    lines.append(f"clash-pairs={len(mesh_clashing_pairs(live))}")
    if network is not None:
        lines.append(
            f"net: sent={network.packets_sent} "
            f"delivered={network.packets_delivered} "
            f"lost={network.packets_lost}"
        )
    if scheduler is not None:
        lines.append(f"clock: now={scheduler.now:.6f} "
                     f"events={scheduler.events_run}")
    lines.extend(violation.format() for violation in violations)
    return "\n".join(lines) + "\n"


def clash_trace(header: str, result) -> str:
    """Canonical rendering of a SAP-in-the-loop result."""
    return (
        f"{header}\n"
        f"sap-loop: allocations={result.allocations} "
        f"clash_pairs={result.residual_clashing_pairs} "
        f"moves={result.address_changes} "
        f"sent={result.announcements_sent} "
        f"lost={result.announcements_lost} "
        f"clash_rate={result.clash_rate:.6f}\n"
    )


# ----------------------------------------------------------------------
# Legacy dispatch — the four hand-coded harnesses as spec kinds
# ----------------------------------------------------------------------
def _run_kernel(spec: ScenarioSpec, seed: int) -> ScenarioRun:
    from repro.lint.determinism import run_scenario as run_kernel

    params = spec.legacy_params()
    trace = run_kernel(
        seed=seed,
        num_sites=int(params.get("num_sites", 6)),
        sessions_per_site=int(params.get("sessions_per_site", 3)),
        space_size=int(params.get("space_size", 12)),
        horizon=float(params.get("horizon", 240.0)),
    )
    return ScenarioRun(spec=spec, seed=seed, trace=trace,
                       sessions_created=(
                           int(params.get("num_sites", 6))
                           * int(params.get("sessions_per_site", 3))
                       ))


def _run_clash(spec: ScenarioSpec, seed: int) -> ScenarioRun:
    from repro.experiments.sap_in_the_loop import (
        SapLoopConfig,
        run_sap_in_the_loop,
    )
    from repro.routing.scoping import ScopeMap
    from repro.topology.mbone import MboneParams, generate_mbone

    params = spec.legacy_params()
    topology = generate_mbone(MboneParams(
        total_nodes=int(params.get("total_nodes", 60)), seed=seed
    ))
    scope_map = ScopeMap.from_topology(topology)
    config = SapLoopConfig(
        num_directories=int(params.get("num_directories", 8)),
        sessions_per_directory=int(
            params.get("sessions_per_directory", 3)
        ),
        space_size=int(params.get("space_size", 64)),
        loss=float(params.get("loss", 0.02)),
        strategy=str(params.get("strategy", "backoff")),
        inter_arrival=float(params.get("inter_arrival", 5.0)),
        settle_time=float(params.get("settle_time", 300.0)),
        seed=seed,
    )
    result = run_sap_in_the_loop(topology, scope_map, config)
    sessions = config.num_directories * config.sessions_per_directory
    return ScenarioRun(spec=spec, seed=seed,
                       trace=clash_trace(_header(spec, seed), result),
                       sessions_created=sessions)


def _run_steady(spec: ScenarioSpec, seed: int,
                max_events: int) -> ScenarioRun:
    from repro.obs.scenarios import build_steady

    params = spec.legacy_params()
    horizon = float(params.get("horizon", 600.0))
    scheduler, directories = build_steady(
        seed, None,
        num_sites=int(params.get("num_sites", 8)),
        space_size=int(params.get("space_size", 16)),
        sessions_per_site=int(params.get("sessions_per_site", 6)),
        horizon=horizon,
    )
    scheduler.run(until=horizon, max_events=max_events)
    trace = _mesh_trace(_header(spec, seed), directories, [],
                        scheduler=scheduler)
    sessions = (int(params.get("num_sites", 8))
                * int(params.get("sessions_per_site", 6)))
    return ScenarioRun(spec=spec, seed=seed, trace=trace,
                       events_run=scheduler.events_run,
                       sessions_created=sessions)


def _run_chaos(spec: ScenarioSpec, seed: int) -> ScenarioRun:
    from repro.fleet.runner import run_sweep
    from repro.fleet.sweeps import build_sweep

    params = spec.legacy_params()
    sweep = build_sweep("chaos", seed=seed,
                        shards=int(params.get("shards", 4)))
    result = run_sweep(sweep, jobs=int(params.get("jobs", 1)))
    lines = [_header(spec, seed), result.aggregate_json()]
    # The chaos drill trips FLT501 by design; the diagnostics are the
    # drill's product, so they land in the trace rather than failing
    # the scenario (messages excluded: codes and shards are the
    # deterministic part).
    lines.extend(
        f"{issue.code} [{issue.rule}] shard={issue.shard}"
        for issue in result.issues
    )
    return ScenarioRun(spec=spec, seed=seed,
                       trace="\n".join(lines) + "\n")
