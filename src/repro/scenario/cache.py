"""On-disk run cache: ``(spec digest, seed, budget) -> outcome``.

The determinism contract makes scenario runs memoizable: a run is a
pure function of ``(spec, seed, max_events)``, so its violation codes
and trace hash can be reused across fuzz invocations — which matters
because the shrinker re-runs many near-identical candidates and the
smoke fuzz in ``check.sh`` repeats the same early corpus every time.

The filename lives in :data:`repro.lint.registry.CACHE_FILES` (and so
in ``.gitignore``), like every other tool cache.  A signature covering
the SCN rule table and the engine format invalidates everything when
either changes.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.lint.registry import CACHE_FILES
from repro.scenario.rules import SCENARIO_RUNTIME_CODES

#: Bumped whenever the engine or the on-disk schema changes shape.
CACHE_FORMAT = 1

DEFAULT_CACHE_FILE = CACHE_FILES["scenario"]


def runs_signature() -> str:
    """Identity of the SCN rule table and engine format."""
    payload = repr((CACHE_FORMAT,
                    sorted(SCENARIO_RUNTIME_CODES.items())))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_key(digest: str, seed: int, max_events: int) -> str:
    """The cache key for one ``(spec, seed, budget)`` cell."""
    return f"{digest}:{seed}:{max_events}"


class RunCache:
    """A tolerant JSON run cache.

    Missing, corrupt or signature-mismatched files load as empty; a
    failed save is silently skipped (the cache is an accelerator, not
    a dependency).
    """

    def __init__(self, path: str = DEFAULT_CACHE_FILE) -> None:
        self.path = path
        self.signature = runs_signature()
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("signature") != self.signature:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = {
                str(key): value for key, value in entries.items()
                if isinstance(value, dict)
            }

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        hit = self.entries.get(key)
        if hit is None:
            self.misses += 1
        else:
            self.hits += 1
        return hit

    def put(self, key: str, value: Dict[str, Any]) -> None:
        self.entries[key] = value

    def save(self) -> bool:
        """Atomic write (tmp + rename); False if the write failed."""
        payload = {"signature": self.signature, "entries": self.entries}
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            return False
        return True
