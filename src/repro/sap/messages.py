"""SAP packets (Session Announcement Protocol, RFC 2974-style).

A reduced binary encoding sufficient for the simulations and tests:

====== ======== ==========================================
offset size     field
====== ======== ==========================================
0      1        flags: version (3 bits) | type bit | C bit
1      1        reserved / auth length (always 0 here)
2      2        message id hash (big endian)
4      4        originating source (node id, big endian)
8      ...      UTF-8 SDP payload (zlib-compressed if C set)
====== ======== ==========================================

As in real SAP, the compression bit lets large descriptions ride in
one packet; :meth:`SapMessage.encode` takes ``compress=True`` and
:meth:`SapMessage.decode` handles both forms transparently.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

#: SAP protocol version we emit.
SAP_VERSION = 1

_HEADER = struct.Struct(">BBHI")


class SapMessageType(enum.Enum):
    """Announcement or deletion."""

    ANNOUNCE = 0
    DELETE = 1


@dataclass(frozen=True)
class SapMessage:
    """One SAP packet.

    Attributes:
        msg_type: announcement or deletion.
        origin: originating node id.
        msg_id_hash: 16-bit hash identifying this version of the
            announcement (changes whenever the payload changes).
        payload: SDP-lite text.
    """

    msg_type: SapMessageType
    origin: int
    msg_id_hash: int
    payload: str

    def __post_init__(self) -> None:
        if not 0 <= self.msg_id_hash < 2 ** 16:
            raise ValueError(f"msg_id_hash {self.msg_id_hash} not 16-bit")
        if self.origin < 0:
            raise ValueError(f"negative origin {self.origin}")

    @classmethod
    def announce(cls, origin: int, payload: str) -> "SapMessage":
        """Build an announcement; the id hash is derived from payload."""
        return cls(SapMessageType.ANNOUNCE, origin,
                   payload_hash(payload), payload)

    @classmethod
    def delete(cls, origin: int, payload: str) -> "SapMessage":
        """Build a deletion for a previously announced payload."""
        return cls(SapMessageType.DELETE, origin,
                   payload_hash(payload), payload)

    def encode(self, compress: bool = False) -> bytes:
        """Serialise to wire format.

        Args:
            compress: set the C bit and zlib-compress the payload.
        """
        flags = (SAP_VERSION << 5) | (self.msg_type.value << 2)
        body = self.payload.encode("utf-8")
        if compress:
            flags |= 0x2  # the C bit
            body = zlib.compress(body)
        header = _HEADER.pack(flags, 0, self.msg_id_hash,
                              self.origin & 0xFFFFFFFF)
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "SapMessage":
        """Parse wire format (compressed or plain).

        Raises:
            ValueError: on truncated, wrong-version or corrupt packets.
        """
        if len(data) < _HEADER.size:
            raise ValueError(f"SAP packet too short: {len(data)} bytes")
        flags, __, msg_id_hash, origin = _HEADER.unpack_from(data)
        version = flags >> 5
        if version != SAP_VERSION:
            raise ValueError(f"unsupported SAP version {version}")
        msg_type = SapMessageType((flags >> 2) & 0x1)
        body = data[_HEADER.size:]
        if flags & 0x2:
            try:
                body = zlib.decompress(body)
            except zlib.error as exc:
                raise ValueError(f"bad compressed payload: {exc}")
        try:
            payload = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValueError(f"payload is not UTF-8: {exc}")
        return cls(msg_type, origin, msg_id_hash, payload)

    def key(self) -> tuple:
        """Cache identity: (origin, msg id hash)."""
        return (self.origin, self.msg_id_hash)


def payload_hash(payload: str) -> int:
    """Deterministic 16-bit hash of an announcement payload."""
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFF
