"""Periodic announcement strategies and the announcer loop.

The paper's conclusions (§4) place two requirements on the announcing
side: the rate must be *non-uniform* (start fast — say a 5 second
interval — and exponentially back off to a background rate) to keep
the mean propagation delay low; and all announcements of one scope
must share a channel whose bandwidth is bounded, so the steady-state
interval has to scale with the number of sessions being announced
(as real SAP does).
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.analysis.announcement import ExponentialBackoffSchedule
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.rng import derived_stream
from repro.units.types import Duration, SimTime


class AnnouncementStrategy(abc.ABC):
    """Decides the gap before the next re-announcement."""

    @abc.abstractmethod
    def next_interval(self, announcements_sent: int,
                      sessions_known: int) -> Duration:
        """Seconds until the next announcement.

        Args:
            announcements_sent: how many announcements this announcer
                has already sent (>= 1 when first consulted).
            sessions_known: sessions currently visible on the channel
                (for bandwidth-limited strategies).
        """


class FixedIntervalStrategy(AnnouncementStrategy):
    """Constant re-announcement interval (sdr's classic 10 minutes)."""

    def __init__(self, interval: Duration = 600.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.interval = interval

    def next_interval(self, announcements_sent: int,
                      sessions_known: int) -> Duration:
        return self.interval


class ExponentialBackoffStrategy(AnnouncementStrategy):
    """Start fast, back off exponentially to a background rate (§4)."""

    def __init__(self, schedule: Optional[ExponentialBackoffSchedule]
                 = None) -> None:
        self.schedule = schedule or ExponentialBackoffSchedule()

    def next_interval(self, announcements_sent: int,
                      sessions_known: int) -> Duration:
        gaps = self.schedule.intervals(max(1, announcements_sent))
        return gaps[-1]


class BandwidthLimitedStrategy(AnnouncementStrategy):
    """SAP-style: the shared channel has a bandwidth budget.

    With ``sessions_known`` sessions announcing packets of
    ``packet_bytes`` on a channel of ``bandwidth_bps``, each session
    can re-announce at most every
    ``sessions_known * packet_bytes * 8 / bandwidth_bps`` seconds —
    this is why "the inter-announcement interval would become too
    long" as the Mbone scales (§4).
    """

    def __init__(self, bandwidth_bps: float = 4000.0,
                 packet_bytes: int = 512,
                 min_interval: Duration = 5.0) -> None:
        if bandwidth_bps <= 0 or packet_bytes <= 0 or min_interval <= 0:
            raise ValueError("bandwidth, packet size and minimum "
                             "interval must be positive")
        self.bandwidth_bps = bandwidth_bps
        self.packet_bytes = packet_bytes
        self.min_interval = min_interval

    def next_interval(self, announcements_sent: int,
                      sessions_known: int) -> Duration:
        fair_share = (max(1, sessions_known) * self.packet_bytes * 8.0
                      / self.bandwidth_bps)
        return max(self.min_interval, fair_share)


class Announcer:
    """Drives one session's announcement loop on the event scheduler.

    Args:
        scheduler: the simulation's event scheduler.
        send: callback performing the actual multicast send.
        strategy: interval policy.
        sessions_known: callback returning the current channel
            population (for bandwidth-limited strategies).
        rng: for the +/-jitter applied to each interval.
        jitter_fraction: uniform jitter as a fraction of the interval,
            de-synchronising announcers.
    """

    def __init__(self, scheduler: EventScheduler, send: Callable[[], None],
                 strategy: AnnouncementStrategy,
                 sessions_known: Callable[[], int] = lambda: 1,
                 rng: Optional[np.random.Generator] = None,
                 jitter_fraction: float = 0.1) -> None:
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError(f"jitter_fraction outside [0, 1): "
                             f"{jitter_fraction}")
        self.scheduler = scheduler
        self.send = send
        self.strategy = strategy
        self.sessions_known = sessions_known
        self.rng = rng if rng is not None else derived_stream(
            "sap.announcer"
        )
        self.jitter_fraction = jitter_fraction
        self.announcements_sent = 0
        self.started_at: Optional[SimTime] = None
        self._pending: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Announce now and keep re-announcing until stopped."""
        if self._running:
            return
        self._running = True
        self.started_at = self.scheduler.now
        self._fire()

    def stop(self) -> None:
        """Stop the loop; no further announcements are sent."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def announce_now(self) -> None:
        """Send an extra immediate announcement (clash defence)."""
        if self._running:
            self.send()
            self.announcements_sent += 1

    def _fire(self) -> None:
        if not self._running:
            return
        self.send()
        self.announcements_sent += 1
        interval = self.strategy.next_interval(
            self.announcements_sent, self.sessions_known()
        )
        if self.jitter_fraction:
            low = 1.0 - self.jitter_fraction
            high = 1.0 + self.jitter_fraction
            interval *= float(self.rng.uniform(low, high))
        self._pending = self.scheduler.schedule(interval, self._fire)
