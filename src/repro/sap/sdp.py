"""SDP-lite: the session description payload sdr announces.

A faithful-but-reduced subset of SDP as used by the Mbone session
directory: version, origin, name, optional info, one timing line, a
connection line carrying the multicast address and TTL scope, optional
attributes, and one or more media lines.

Example::

    v=0
    o=mjh 3472 1 IN IP4 224.2.130.9
    s=ISI seminar
    i=Weekly systems seminar
    t=3086100000 3086107200
    c=IN IP4 224.2.130.9/127
    a=tool:sdr-repro
    m=audio 49170 RTP/AVP 0
    m=video 51372 RTP/AVP 31
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class MediaStream:
    """One ``m=`` line: media type, transport port, protocol, format."""

    media: str
    port: int
    proto: str = "RTP/AVP"
    fmt: str = "0"

    def __post_init__(self) -> None:
        if not self.media:
            raise ValueError("media type must be non-empty")
        if not 0 < self.port < 65536:
            raise ValueError(f"port {self.port} outside (0, 65536)")

    def format_line(self) -> str:
        return f"m={self.media} {self.port} {self.proto} {self.fmt}"


@dataclass
class SessionDescription:
    """A parsed/parseable SDP-lite description.

    Attributes:
        name: the ``s=`` session name.
        username: originator's username (``o=`` field 1).
        session_id: originator's session id (``o=`` field 2).
        version: description version, bumped on modification.
        origin_address: the originator's address string.
        connection_address: the session's multicast address.
        ttl: the session scope TTL (from ``c=.../<ttl>``).
        start: session start time (NTP-ish integer seconds).
        stop: session stop time (0 = unbounded).
        info: optional free-text ``i=`` line.
        attributes: ``a=`` lines without the prefix.
        media: the media streams.
    """

    name: str
    username: str = "-"
    session_id: int = 0
    version: int = 1
    origin_address: str = "127.0.0.1"
    connection_address: str = "224.2.128.1"
    ttl: int = 127
    start: int = 0
    stop: int = 0
    info: Optional[str] = None
    attributes: List[str] = field(default_factory=list)
    media: List[MediaStream] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("session name must be non-empty")
        if not 1 <= self.ttl <= 255:
            raise ValueError(f"ttl {self.ttl} outside [1, 255]")

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def format(self) -> str:
        """Serialise to SDP-lite text."""
        lines = [
            "v=0",
            f"o={self.username} {self.session_id} {self.version} "
            f"IN IP4 {self.origin_address}",
            f"s={self.name}",
        ]
        if self.info:
            lines.append(f"i={self.info}")
        lines.append(f"t={self.start} {self.stop}")
        lines.append(f"c=IN IP4 {self.connection_address}/{self.ttl}")
        lines.extend(f"a={attr}" for attr in self.attributes)
        lines.extend(stream.format_line() for stream in self.media)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "SessionDescription":
        """Parse SDP-lite text.

        Raises:
            ValueError: on structurally invalid input.
        """
        fields = {"attributes": [], "media": []}
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            if len(line) < 2 or line[1] != "=":
                raise ValueError(f"malformed SDP line: {line!r}")
            key, value = line[0], line[2:]
            if key == "v":
                if value != "0":
                    raise ValueError(f"unsupported SDP version {value!r}")
            elif key == "o":
                cls._parse_origin(value, fields)
            elif key == "s":
                fields["name"] = value
            elif key == "i":
                fields["info"] = value
            elif key == "t":
                cls._parse_timing(value, fields)
            elif key == "c":
                cls._parse_connection(value, fields)
            elif key == "a":
                fields["attributes"].append(value)
            elif key == "m":
                fields["media"].append(cls._parse_media(value))
            else:
                # Unknown lines are ignored, as SDP parsers must.
                continue
        if "name" not in fields:
            raise ValueError("missing s= line")
        return cls(**fields)

    @staticmethod
    def _parse_origin(value: str, fields: dict) -> None:
        parts = value.split()
        if len(parts) != 6 or parts[3] != "IN" or parts[4] != "IP4":
            raise ValueError(f"malformed o= line: {value!r}")
        fields["username"] = parts[0]
        fields["session_id"] = int(parts[1])
        fields["version"] = int(parts[2])
        fields["origin_address"] = parts[5]

    @staticmethod
    def _parse_timing(value: str, fields: dict) -> None:
        parts = value.split()
        if len(parts) != 2:
            raise ValueError(f"malformed t= line: {value!r}")
        fields["start"] = int(parts[0])
        fields["stop"] = int(parts[1])

    @staticmethod
    def _parse_connection(value: str, fields: dict) -> None:
        parts = value.split()
        if len(parts) != 3 or parts[0] != "IN" or parts[1] != "IP4":
            raise ValueError(f"malformed c= line: {value!r}")
        if "/" in parts[2]:
            address, ttl_text = parts[2].rsplit("/", 1)
            fields["connection_address"] = address
            fields["ttl"] = int(ttl_text)
        else:
            fields["connection_address"] = parts[2]

    @staticmethod
    def _parse_media(value: str) -> MediaStream:
        parts = value.split()
        if len(parts) < 4:
            raise ValueError(f"malformed m= line: {value!r}")
        return MediaStream(media=parts[0], port=int(parts[1]),
                           proto=parts[2], fmt=" ".join(parts[3:]))

    def origin_key(self) -> Tuple[str, int]:
        """(username, session_id): the announcement's identity."""
        return (self.username, self.session_id)
