"""SAP announcement authentication.

The paper notes (§4, footnote 8) that address-usage announcement
schemes are "open to denial of service attacks" — and the clash
protocol itself is a lever: an attacker who can forge an announcement
with a victim's group address can make the victim's directory retreat
to a new address, disrupting an established session.  Real SAP
(RFC 2974) carries an authentication header for exactly this reason.

This module implements a shared-key authenticator (HMAC-SHA256 over
the SAP payload and origin) and a small envelope format so directories
can reject forged or tampered announcements.  Key distribution is out
of scope here, as it was for SAP.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Optional

from repro.sap.messages import SapMessage

#: Truncated MAC length carried on the wire (bytes).
MAC_LENGTH = 16

_ENVELOPE = struct.Struct(">H")  # MAC length prefix


class SapAuthenticator:
    """Signs and verifies SAP messages with a shared key.

    Args:
        key: the shared secret.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("authentication key must be non-empty")
        self.key = bytes(key)

    # ------------------------------------------------------------------
    def _mac(self, message: SapMessage) -> bytes:
        material = message.encode()
        digest = hmac.new(self.key, material, hashlib.sha256).digest()
        return digest[:MAC_LENGTH]

    def seal(self, message: SapMessage) -> bytes:
        """Wire bytes: MAC-length prefix, MAC, then the SAP packet."""
        mac = self._mac(message)
        return _ENVELOPE.pack(len(mac)) + mac + message.encode()

    def open(self, data: bytes) -> SapMessage:
        """Verify and unwrap sealed bytes.

        Raises:
            AuthenticationError: when the MAC is missing or wrong.
            ValueError: when the inner SAP packet is malformed.
        """
        if len(data) < _ENVELOPE.size:
            raise AuthenticationError("envelope too short")
        (mac_length,) = _ENVELOPE.unpack_from(data)
        if mac_length != MAC_LENGTH:
            raise AuthenticationError(
                f"unexpected MAC length {mac_length}"
            )
        if len(data) < _ENVELOPE.size + mac_length:
            raise AuthenticationError("truncated MAC")
        mac = data[_ENVELOPE.size:_ENVELOPE.size + mac_length]
        body = data[_ENVELOPE.size + mac_length:]
        message = SapMessage.decode(body)
        if not hmac.compare_digest(mac, self._mac(message)):
            raise AuthenticationError("MAC verification failed")
        return message

    def verify(self, data: bytes) -> Optional[SapMessage]:
        """Like :meth:`open` but returns None instead of raising."""
        try:
            return self.open(data)
        except (AuthenticationError, ValueError):
            return None


class AuthenticationError(Exception):
    """A sealed SAP message failed verification."""
