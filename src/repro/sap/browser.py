"""Session browsing — the user-facing face of sdr.

A session directory's purpose (§1) is letting "users discover the
existence of multicast sessions" and "find sufficient information to
allow them to join".  The :class:`SessionBrowser` wraps a directory's
cache with the queries the sdr UI offered: what is on now, what is
coming up, filter by scope or media type, free-text search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sap.directory import SessionDirectory
from repro.sap.sdp import SessionDescription


@dataclass(frozen=True)
class BrowserEntry:
    """One listing row."""

    description: SessionDescription
    first_heard: float
    last_heard: float
    own: bool

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def ttl(self) -> int:
        return self.description.ttl

    def is_active_at(self, now: float) -> bool:
        """True if the session's t= window covers ``now``.

        ``start == 0`` means "already started"; ``stop == 0`` means
        unbounded, both as in SDP.
        """
        started = self.description.start == 0 or \
            self.description.start <= now
        not_over = self.description.stop == 0 or \
            now < self.description.stop
        return started and not_over

    def is_upcoming_at(self, now: float) -> bool:
        return self.description.start > now


class SessionBrowser:
    """Query view over one directory's known sessions."""

    def __init__(self, directory: SessionDirectory) -> None:
        self.directory = directory

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def entries(self) -> List[BrowserEntry]:
        """Every known session (cached + own), most recent first."""
        now = self.directory.scheduler.now
        rows: List[BrowserEntry] = []
        for entry in self.directory.cache.entries():
            if entry.description is None:
                continue
            rows.append(BrowserEntry(
                description=entry.description,
                first_heard=entry.first_heard,
                last_heard=entry.last_heard,
                own=False,
            ))
        for own in self.directory.own_sessions():
            rows.append(BrowserEntry(
                description=own.description,
                first_heard=own.first_announced,
                last_heard=now,
                own=True,
            ))
        rows.sort(key=lambda row: row.last_heard, reverse=True)
        return rows

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def active(self, now: Optional[float] = None) -> List[BrowserEntry]:
        """Sessions on the air right now."""
        when = self.directory.scheduler.now if now is None else now
        return [row for row in self.entries() if row.is_active_at(when)]

    def upcoming(self, now: Optional[float] = None) -> List[BrowserEntry]:
        """Sessions advertised ahead of their start time (§2.3's
        "mean advance announcement time is 2 hours")."""
        when = self.directory.scheduler.now if now is None else now
        return [row for row in self.entries()
                if row.is_upcoming_at(when)]

    def by_scope(self, max_ttl: int) -> List[BrowserEntry]:
        """Sessions whose scope TTL is at most ``max_ttl``."""
        if not 1 <= max_ttl <= 255:
            raise ValueError(f"max_ttl {max_ttl} outside [1, 255]")
        return [row for row in self.entries() if row.ttl <= max_ttl]

    def with_media(self, media: str) -> List[BrowserEntry]:
        """Sessions carrying a given media type ("audio", "video"...)."""
        return [
            row for row in self.entries()
            if any(stream.media == media
                   for stream in row.description.media)
        ]

    def search(self, text: str) -> List[BrowserEntry]:
        """Case-insensitive substring search over name and info."""
        needle = text.lower()
        out = []
        for row in self.entries():
            haystack = row.description.name.lower()
            if row.description.info:
                haystack += " " + row.description.info.lower()
            if needle in haystack:
                out.append(row)
        return out

    def __len__(self) -> int:
        return len(self.entries())
