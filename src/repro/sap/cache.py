"""The announce/listen session cache.

"Session directories use an announce/listen approach to build up a
complete list of these advertised sessions" (§2.1).  The cache holds
every announcement heard, expires entries that stop being refreshed,
and exposes the (address, ttl) view the allocator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.allocator import VisibleSet
from repro.sap.messages import SapMessage, SapMessageType
from repro.sap.sdp import SessionDescription
from repro.units.types import Duration, SimTime, SlotIndex, Ttl

#: Default: an entry missing this many seconds of announcements dies.
DEFAULT_TIMEOUT = 3600.0


@dataclass
class CacheEntry:
    """One cached announcement.

    Attributes:
        message: the most recent SAP message.
        description: parsed SDP (None if unparseable).
        address_index: group address as a space index, filled by the
            directory when it can map the address.
        first_heard: when the announcement was first received.
        last_heard: most recent reception.
        times_heard: number of receptions.
    """

    message: SapMessage
    description: Optional[SessionDescription]
    address_index: Optional[SlotIndex] = None
    first_heard: SimTime = 0.0
    last_heard: SimTime = 0.0
    times_heard: int = 1

    @property
    def ttl(self) -> Ttl:
        return self.description.ttl if self.description else 255


class SessionCache:
    """Announcement cache keyed by (origin, message id hash)."""

    def __init__(self, timeout: Duration = DEFAULT_TIMEOUT) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive: {timeout}")
        self.timeout = timeout
        self._entries: Dict[Tuple[int, int], CacheEntry] = {}
        #: Optional profiling probe (see :mod:`repro.obs`).  None in
        #: normal operation; one attribute check per observe() when
        #: observability is off.
        self._obs = None

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, message: SapMessage, now: SimTime,
                address_index: Optional[SlotIndex] = None
                ) -> Optional[CacheEntry]:
        """Record a received SAP message.

        Deletions remove the matching entry.  A *modified*
        announcement — same origin node and SDP (username, session id)
        but a higher version — supersedes the stale entry, as sdr's
        cache did; without this, an address change (e.g. a clash
        retreat) would leave the old address looking occupied until
        timeout.  Returns the affected entry (None for deletions and
        unparseable announcements).
        """
        # Observation outcomes are inlined slot increments against the
        # probe's shared handle table — observe() runs once per
        # delivered announcement, the hottest SAP path.
        obs = self._obs
        if message.msg_type is SapMessageType.DELETE:
            self._entries.pop(message.key(), None)
            if obs is not None:
                obs.slots[obs.h_delete] += 1.0
            return None
        entry = self._entries.get(message.key())
        if entry is not None:
            entry.last_heard = now
            entry.times_heard += 1
            if obs is not None:
                obs.slots[obs.h_hit] += 1.0
            return entry
        try:
            description = SessionDescription.parse(message.payload)
        except ValueError:
            if obs is not None:
                obs.slots[obs.h_invalid] += 1.0
            return None
        if obs is not None:
            obs.slots[obs.h_miss] += 1.0
        self._supersede(message.origin, description)
        entry = CacheEntry(
            message=message,
            description=description,
            address_index=address_index,
            first_heard=now,
            last_heard=now,
        )
        self._entries[message.key()] = entry
        return entry

    def _supersede(self, origin: int,
                   description: SessionDescription) -> None:
        """Drop older versions of the same logical session."""
        stale = [
            key for key, entry in self._entries.items()
            if key[0] == origin
            and entry.description is not None
            and entry.description.origin_key() == description.origin_key()
            and entry.description.version < description.version
        ]
        for key in stale:
            del self._entries[key]

    def expire(self, now: SimTime) -> int:
        """Drop entries not refreshed within the timeout; returns count."""
        stale = [key for key, entry in self._entries.items()
                 if now - entry.last_heard > self.timeout]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def entries(self) -> List[CacheEntry]:
        return list(self._entries.values())

    def lookup(self, origin: int, msg_id_hash: int) -> Optional[CacheEntry]:
        return self._entries.get((origin, msg_id_hash))

    def entries_for_address(self,
                            address_index: SlotIndex) -> List[CacheEntry]:
        """Cached announcements using a given group address."""
        return [entry for entry in self._entries.values()
                if entry.address_index == address_index]

    # ------------------------------------------------------------------
    # Persistence (proxy caches surviving restarts)
    # ------------------------------------------------------------------
    def export_text(self) -> str:
        """Serialise the cache to a text bundle.

        Format: a header line, then per entry a metadata line, the SDP
        payload, and an ``end`` terminator.  Used by proxy cache
        servers to persist state across restarts.
        """
        lines = ["# repro-sap-cache 1"]
        for entry in self._entries.values():
            address = ("-" if entry.address_index is None
                       else str(entry.address_index))
            lines.append(
                f"entry origin={entry.message.origin} "
                f"first={entry.first_heard!r} "
                f"last={entry.last_heard!r} "
                f"heard={entry.times_heard} "
                f"address={address}"
            )
            lines.append(entry.message.payload.rstrip("\n"))
            lines.append("end")
        return "\n".join(lines) + "\n"

    def import_text(self, text: str) -> int:
        """Merge a bundle produced by :meth:`export_text`.

        Existing entries win over imported ones with the same key.
        Returns the number of entries added.

        Raises:
            ValueError: on malformed bundles.
        """
        lines = text.splitlines()
        if not lines or lines[0].strip() != "# repro-sap-cache 1":
            raise ValueError("missing cache bundle header")
        added = 0
        index = 1
        while index < len(lines):
            line = lines[index].strip()
            index += 1
            if not line:
                continue
            if not line.startswith("entry "):
                raise ValueError(f"expected entry line, got {line!r}")
            fields = dict(part.split("=", 1)
                          for part in line.split()[1:])
            payload_lines = []
            while index < len(lines) and lines[index].strip() != "end":
                payload_lines.append(lines[index])
                index += 1
            if index >= len(lines):
                raise ValueError("unterminated cache entry")
            index += 1  # past "end"
            payload = "\n".join(payload_lines) + "\n"
            message = SapMessage.announce(int(fields["origin"]), payload)
            if message.key() in self._entries:
                continue
            try:
                description = SessionDescription.parse(payload)
            except ValueError:
                continue
            address = (None if fields.get("address", "-") == "-"
                       else int(fields["address"]))
            self._entries[message.key()] = CacheEntry(
                message=message,
                description=description,
                address_index=address,
                first_heard=float(fields["first"]),
                last_heard=float(fields["last"]),
                times_heard=int(fields.get("heard", 1)),
            )
            added += 1
        return added

    def visible_set(self) -> VisibleSet:
        """The allocator's view: (address, ttl) of cached sessions.

        Entries without a mapped address index are skipped.
        """
        addresses = []
        ttls = []
        for entry in self._entries.values():
            if entry.address_index is None:
                continue
            addresses.append(entry.address_index)
            ttls.append(entry.ttl)
        return VisibleSet(np.asarray(addresses, dtype=np.int64),
                          np.asarray(ttls, dtype=np.int64))
