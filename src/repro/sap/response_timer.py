"""Suppression delay distributions for the request-response protocol.

"A member that receives a request delays its response by a value
chosen randomly from the uniform interval [D1:D2], and cancels its
response if it sees another receiver respond within this delay period"
(§3).  §3.1 replaces the uniform interval with an exponential one —
the key result behind figs. 18 and 19.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.analysis.response_bounds import (
    exponential_delay_array,
    exponential_delay_sample,
)
from repro.sim.rng import derived_stream


class ResponseDelayTimer(abc.ABC):
    """Samples the random delay before sending a suppressed response."""

    def __init__(self, d1: float, d2: float,
                 rng: Optional[np.random.Generator] = None) -> None:
        if d1 < 0 or d2 < d1:
            raise ValueError(f"need 0 <= D1 <= D2, got {d1}, {d2}")
        self.d1 = d1
        self.d2 = d2
        self.rng = rng if rng is not None else derived_stream(
            "sap.response_timer"
        )

    @abc.abstractmethod
    def sample(self) -> float:
        """One random delay in [D1, D2]."""

    def sample_many(self, count: int) -> np.ndarray:
        """``count`` independent delays (vectorised where possible)."""
        return np.array([self.sample() for __ in range(count)])


class UniformDelayTimer(ResponseDelayTimer):
    """Uniform random delay over [D1, D2]."""

    def sample(self) -> float:
        return float(self.rng.uniform(self.d1, self.d2))

    def sample_many(self, count: int) -> np.ndarray:
        return self.rng.uniform(self.d1, self.d2, size=count)


class ExponentialDelayTimer(ResponseDelayTimer):
    """Exponential random delay (paper §3.1).

    ``D = D1 + r * log2(x * (2^d - 1) + 1)`` with ``d = (D2 - D1)/r``;
    ``r`` approximates the maximum RTT.  "In practice, a dependence on
    an accurate estimate of RTT is unnecessary" — any ballpark works.
    """

    def __init__(self, d1: float, d2: float, rtt: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(d1, d2, rng)
        if rtt <= 0:
            raise ValueError(f"rtt must be positive: {rtt}")
        self.rtt = rtt

    def sample(self) -> float:
        x = float(self.rng.random())
        return exponential_delay_sample(x, self.d1, self.d2, self.rtt)

    def sample_many(self, count: int) -> np.ndarray:
        xs = self.rng.random(count)
        return exponential_delay_array(xs, self.d1, self.d2, self.rtt)
