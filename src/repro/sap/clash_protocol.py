"""The three-phase clash detection and correction protocol (paper §3).

1. **Defend**: a site whose *long-announced* session clashes with a
   newly heard announcement immediately re-sends its own announcement
   ("this will typically not occur unless a network partition has been
   resolved recently").
2. **Retreat**: a site that *just* announced a session and sees a
   clash within a small window assumes it lost the race (propagation
   delay) and immediately re-announces with a modified address.
3. **Third-party defence**: any other site that sees a new
   announcement clash with a *cached* session waits a random delay; if
   neither the original announcer defends nor the newcomer retreats in
   that time, it re-announces the cached session on the originator's
   behalf.  The random delay plus suppression-on-hearing-a-response is
   the request-response protocol analysed in §3/§3.1.

"This approach means that existing sessions will not be disrupted by
new sessions."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.sap.cache import CacheEntry
from repro.sap.response_timer import ExponentialDelayTimer, ResponseDelayTimer
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.rng import derived_stream


def default_timer_factory(rng: np.random.Generator) -> ResponseDelayTimer:
    """The paper's recommendation: exponential delay, modest D2."""
    return ExponentialDelayTimer(d1=0.5, d2=6.4, rtt=0.2, rng=rng)


@dataclass
class ClashPolicy:
    """Tunables for the three-phase behaviour.

    Attributes:
        recent_window: seconds after its first announcement during
            which a session is "new" and retreats on clash (phase 2).
        enable_third_party: whether phase 3 runs at this site.
        timer_factory: builds the random-delay timer used by phase 3.
        defend_interval: minimum gap between immediate phase-1
            re-announcements against the same clashing announcement
            (prevents defence storms when the peer keeps announcing).
    """

    recent_window: float = 30.0
    enable_third_party: bool = True
    timer_factory: Callable[[np.random.Generator], ResponseDelayTimer] = (
        default_timer_factory
    )
    defend_interval: float = 1.0


@dataclass
class PendingDefence:
    """A scheduled third-party defence awaiting its timer."""

    old_key: Tuple[int, int]
    new_key: Tuple[int, int]
    old_last_heard: float
    handle: Optional[EventHandle]


class ClashHandler:
    """Per-directory clash state machine.

    The owning :class:`~repro.sap.directory.SessionDirectory` calls
    :meth:`on_announcement` for every received announcement; the
    handler calls back into the directory to defend, retreat, or proxy
    a defence.
    """

    def __init__(self, directory, policy: Optional[ClashPolicy] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.directory = directory
        self.policy = policy or ClashPolicy()
        self.rng = rng if rng is not None else derived_stream(
            "sap.clash_protocol"
        )
        self.timer = self.policy.timer_factory(self.rng)
        self._pending: Dict[Tuple[Tuple[int, int], Tuple[int, int]],
                            PendingDefence] = {}
        self._last_defence: Dict[Tuple[int, Tuple[int, int]], float] = {}
        self.clashes_seen = 0
        self.defences_sent = 0
        self.retreats = 0
        #: Optional profiling probe (see :mod:`repro.obs`).  None in
        #: normal operation; one attribute check per protocol action
        #: when observability is off.
        self._obs = None

    @property
    def scheduler(self) -> EventScheduler:
        return self.directory.scheduler

    # ------------------------------------------------------------------
    def on_announcement(self, entry: CacheEntry) -> None:
        """React to a newly received announcement ``entry``."""
        if entry.address_index is None:
            return
        self._check_own_sessions(entry)
        if self.policy.enable_third_party:
            self._check_third_party(entry)

    def _is_established(self, age: float) -> bool:
        """Phase-1 predicate: does a session of this age stand its
        ground?  A session older than the recent window is established
        and defends; a younger one is a newcomer and retreats."""
        return age > self.policy.recent_window

    def _check_own_sessions(self, entry: CacheEntry) -> None:
        now = self.scheduler.now
        for own in self.directory.own_sessions():
            if own.session.address != entry.address_index:
                continue
            own_key = own.message_key()
            if own_key == entry.message.key():
                continue
            self.clashes_seen += 1
            obs = self._obs
            if obs is not None:
                obs.slots[obs.h_clash] += 1.0
            age = now - own.first_announced
            other_age = now - entry.first_heard
            if self._is_established(age):
                # Phase 1: defend an established session immediately
                # (rate-limited so a persistent peer cannot provoke a
                # defence storm).
                self._defend(own, entry, now)
            elif (other_age <= self.policy.recent_window
                  and own_key < entry.message.key()):
                # Both sessions are new — a simultaneous-allocation
                # race.  A deterministic tie-break makes exactly one
                # side move: the lower (origin, hash) key stands its
                # ground, the higher one retreats.
                self._defend(own, entry, now)
            else:
                # Phase 2: we are the newcomer (or lost the tie-break);
                # change address.
                self.retreats += 1
                if obs is not None:
                    obs.slots[obs.h_retreat] += 1.0
                self.directory.retreat(own)

    def _defend(self, own, entry: CacheEntry, now: float) -> None:
        key = (own.session.session_id, entry.message.key())
        last = self._last_defence.get(key)
        if last is not None and now - last < self.policy.defend_interval:
            return
        self._last_defence[key] = now
        obs = self._obs
        if obs is not None:
            obs.slots[obs.h_defence] += 1.0
        self.directory.defend(own)

    def _check_third_party(self, entry: CacheEntry) -> None:
        """Phase 3: defend older cached sessions against a newcomer."""
        cache = self.directory.cache
        for old in cache.entries_for_address(entry.address_index):
            if old.message.key() == entry.message.key():
                continue
            if old.first_heard >= entry.first_heard:
                continue  # defend the older entry, not the newer one
            if self.directory.owns(old.message.key()):
                continue  # phases 1/2 already handled it
            self.clashes_seen += 1
            obs = self._obs
            if obs is not None:
                obs.slots[obs.h_clash] += 1.0
            self._schedule_defence(old, entry)

    def _schedule_defence(self, old: CacheEntry, new: CacheEntry) -> None:
        key = (old.message.key(), new.message.key())
        if key in self._pending:
            return
        delay = self.timer.sample()
        pending = PendingDefence(
            old_key=old.message.key(),
            new_key=new.message.key(),
            old_last_heard=old.last_heard,
            handle=None,  # filled below
        )
        pending.handle = self.scheduler.schedule(
            delay, lambda: self._fire_defence(key)
        )
        self._pending[key] = pending

    def _fire_defence(self, key) -> None:
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        cache = self.directory.cache
        old = cache.lookup(*pending.old_key)
        new = cache.lookup(*pending.new_key)
        if old is None or new is None:
            return  # one side withdrew; clash resolved
        if old.last_heard > pending.old_last_heard:
            # Someone (originator or another third party) already
            # re-announced the old session: we are suppressed.
            obs = self._obs
            if obs is not None:
                obs.slots[obs.h_suppressed] += 1.0
            return
        self.defences_sent += 1
        obs = self._obs
        if obs is not None:
            obs.slots[obs.h_proxy] += 1.0
        self.directory.proxy_defend(old)

    def cancel_all(self) -> int:
        """Cancel every pending defence (returns how many)."""
        count = 0
        for pending in self._pending.values():
            pending.handle.cancel()
            count += 1
        self._pending.clear()
        return count
