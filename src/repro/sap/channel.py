"""The shared announcement channel and its bandwidth budget (§4).

"The same announcement channel must be used by all announcements of
the same scope... as the MBone scales... the amount of bandwidth
dedicated to announcements would have to increase significantly or the
inter-announcement interval would become too long to give any kind of
assurance of reliability."

An :class:`AnnouncementChannel` models one scope's SAP group: it
tracks the sessions announced into it and derives the per-session
re-announcement interval from the channel's bandwidth budget (real SAP
uses the same rule: interval = max(300, 8 * ads * ad_size / limit)).
It exposes the numbers behind §4's scaling argument: given a channel
budget and a session population, what announcement interval — and
hence what eq.-1 invisibility — results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.announcement import invisible_fraction

#: Classic SAP channel budget.
DEFAULT_BANDWIDTH_BPS = 4000.0
#: Classic SAP floor on the announcement interval (RFC 2974 uses 300 s).
DEFAULT_MIN_INTERVAL = 300.0


@dataclass
class ChannelStats:
    """Derived figures for a channel population."""

    sessions: int
    interval: float
    announcements_per_second: float
    invisible_fraction: float


class AnnouncementChannel:
    """One scope's announcement group with a bandwidth budget.

    Args:
        bandwidth_bps: total announcement bandwidth for the scope.
        min_interval: floor on the per-session interval.
        mean_payload_bytes: average announcement size.
    """

    def __init__(self, bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                 min_interval: float = DEFAULT_MIN_INTERVAL,
                 mean_payload_bytes: int = 512) -> None:
        if bandwidth_bps <= 0 or min_interval <= 0:
            raise ValueError("bandwidth and min interval must be positive")
        if mean_payload_bytes <= 0:
            raise ValueError("payload size must be positive")
        self.bandwidth_bps = bandwidth_bps
        self.min_interval = min_interval
        self.mean_payload_bytes = mean_payload_bytes
        self._sizes: Dict[object, int] = {}

    # ------------------------------------------------------------------
    # Population tracking
    # ------------------------------------------------------------------
    def register(self, key: object, payload_bytes: Optional[int] = None
                 ) -> None:
        """Add (or update) a session announced on this channel."""
        self._sizes[key] = (payload_bytes if payload_bytes is not None
                            else self.mean_payload_bytes)

    def unregister(self, key: object) -> None:
        """Remove a withdrawn session.  Idempotent."""
        self._sizes.pop(key, None)

    @property
    def session_count(self) -> int:
        return len(self._sizes)

    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    # ------------------------------------------------------------------
    # The SAP interval rule and its consequences
    # ------------------------------------------------------------------
    def interval(self) -> float:
        """Per-session re-announcement interval under the budget.

        SAP's rule: each announcer sends its ads once per interval and
        the whole population must fit in the bandwidth budget.
        """
        bits = self.total_bytes() * 8.0
        if bits == 0:
            return self.min_interval
        return max(self.min_interval, bits / self.bandwidth_bps)

    def stats(self, e2e_delay: float = 0.2, loss: float = 0.02,
              advertised_time: float = 4 * 3600.0) -> ChannelStats:
        """Interval plus the eq.-1 invisibility it implies."""
        interval = self.interval()
        # Mean discovery delay with geometric retransmission.
        delay = e2e_delay + interval * loss / (1.0 - loss)
        return ChannelStats(
            sessions=self.session_count,
            interval=interval,
            announcements_per_second=(
                self.session_count / interval if interval else 0.0
            ),
            invisible_fraction=invisible_fraction(delay, advertised_time),
        )

    @classmethod
    def interval_for_population(cls, sessions: int,
                                bandwidth_bps: float =
                                DEFAULT_BANDWIDTH_BPS,
                                payload_bytes: int = 512,
                                min_interval: float =
                                DEFAULT_MIN_INTERVAL) -> float:
        """Closed-form version for sweeps (§4 scaling argument)."""
        channel = cls(bandwidth_bps, min_interval, payload_bytes)
        for key in range(sessions):
            channel.register(key)
        return channel.interval()
