"""The per-site session directory (the paper's sdr).

A :class:`SessionDirectory` runs at one node.  It announces the
sessions created locally, listens for everyone else's announcements,
feeds the resulting view to its address allocator, and runs the
three-phase clash protocol.

"Since the early days of the Mbone, session directories have been used
to perform both session advertisement and multicast address
allocation" (§1) — this class is exactly that dual-purpose machine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.address_space import MulticastAddressSpace
from repro.core.allocator import Allocator, VisibleSet
from repro.core.session import Session
from repro.sap.announcer import (
    Announcer,
    AnnouncementStrategy,
    FixedIntervalStrategy,
)
from repro.sap.cache import SessionCache
from repro.sap.clash_protocol import ClashHandler, ClashPolicy
from repro.sap.messages import SapMessage, SapMessageType
from repro.sap.sdp import MediaStream, SessionDescription
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.network import NetworkModel, Packet

#: Conventional "group" carried in simulated SAP packets; the network
#: model routes on (source, ttl), so this is informational only.
SAP_GROUP = 0


@dataclass
class OwnSession:
    """A locally created session and its announcement state."""

    session: Session
    description: SessionDescription
    announcer: Announcer
    first_announced: float
    expiry_handle: Optional[EventHandle] = None

    def message_key(self) -> Tuple[int, int]:
        """The cache key our current announcement would have."""
        message = SapMessage.announce(self.session.source,
                                      self.description.format())
        return message.key()


class SessionDirectory:
    """One site's sdr instance.

    Args:
        node: the node this directory runs at.
        scheduler: simulation event scheduler.
        network: multicast delivery substrate.
        allocator: the address allocation algorithm to use.
        address_space: maps allocator indices to real group addresses.
        strategy_factory: builds the announcement strategy per session.
        clash_policy: three-phase protocol tunables; defaults applied
            when omitted.
        enable_clash_protocol: set False to disable clash handling.
        username: SDP origin username.
        rng: numpy Generator for timers and jitter.
    """

    def __init__(
        self,
        node: int,
        scheduler: EventScheduler,
        network: NetworkModel,
        allocator: Allocator,
        address_space: MulticastAddressSpace,
        strategy_factory: Callable[[], AnnouncementStrategy] = (
            FixedIntervalStrategy
        ),
        clash_policy: Optional[ClashPolicy] = None,
        enable_clash_protocol: bool = True,
        username: str = "user",
        cache: Optional[SessionCache] = None,
        rng: Optional[np.random.Generator] = None,
        authenticator=None,
    ) -> None:
        self.node = node
        self.scheduler = scheduler
        self.network = network
        self.allocator = allocator
        self.address_space = address_space
        self.strategy_factory = strategy_factory
        self.username = username
        self.cache = cache if cache is not None else SessionCache()
        self.rng = rng if rng is not None else np.random.default_rng(node)
        self._own: Dict[Tuple[int, int], OwnSession] = {}
        self._session_ids = itertools.count(1)
        #: Optional shadow-state observer (see :mod:`repro.sanitize`).
        #: None in normal operation; one attribute check per session
        #: create/delete/retreat when sanitizers are off.
        self._sanitizer = None
        #: Optional misbehaviour policy (see
        #: :mod:`repro.scenario.personas`).  None in normal
        #: operation — the honest path is byte-identical with no
        #: persona attached; the scenario engine installs adversaries
        #: here (never-listens, always-defends, ttl-liar, ...).
        self._persona = None
        self.clash_handler: Optional[ClashHandler] = None
        if enable_clash_protocol:
            policy = clash_policy if clash_policy is not None else (
                ClashPolicy()
            )
            self.clash_handler = ClashHandler(self, policy, self.rng)
        self.authenticator = authenticator
        self.address_changes = 0
        self.announcements_received = 0
        self.auth_failures = 0
        network.listen(node, self._on_packet)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def create_session(self, name: str, ttl: int,
                       media: Optional[Sequence[MediaStream]] = None,
                       info: Optional[str] = None,
                       lifetime: Optional[float] = None,
                       start: int = 0, stop: int = 0) -> Session:
        """Allocate an address, build the description, start announcing.

        Args:
            name: session name (the SDP ``s=`` line).
            ttl: scope TTL.
            media: media streams (default: one audio stream).
            info: optional free-text description.
            lifetime: if set, the session is withdrawn automatically
                after this many simulated seconds.
            start: SDP ``t=`` start time (0 = already started).
            stop: SDP ``t=`` stop time (0 = unbounded).

        Returns the created :class:`~repro.core.session.Session`.
        """
        visible = self._allocation_view()
        result = self.allocator.allocate(ttl, visible)
        session = Session(
            address=result.address,
            ttl=ttl,
            source=self.node,
            created_at=self.scheduler.now,
            lifetime=lifetime,
        )
        description = SessionDescription(
            name=name,
            username=self.username,
            session_id=int(next(self._session_ids)),
            version=1,
            origin_address=f"10.0.{self.node // 256}.{self.node % 256}",
            connection_address=self.address_space.index_to_ip(
                session.address
            ),
            ttl=ttl,
            info=info,
            start=start,
            stop=stop,
            media=list(media) if media else [MediaStream("audio", 49170)],
        )
        session.description = description
        own = OwnSession(
            session=session,
            description=description,
            announcer=self._make_announcer(session, description),
            first_announced=self.scheduler.now,
        )
        self._own[(self.node, description.session_id)] = own
        if self._sanitizer is not None:
            self._sanitizer.on_session_created(self, own)
        own.announcer.start()
        if lifetime is not None:
            own.expiry_handle = self.scheduler.schedule(
                lifetime, lambda: self._expire_own(session)
            )
        return session

    def _expire_own(self, session: Session) -> None:
        """Withdraw an expired session (no-op if already withdrawn)."""
        try:
            self.delete_session(session)
        except KeyError:
            pass

    def delete_session(self, session: Session) -> None:
        """Withdraw a session: stop announcing, send a SAP deletion.

        Raises:
            KeyError: if the session was not created here.
        """
        own = self._find_own(session)
        own.announcer.stop()
        if own.expiry_handle is not None:
            own.expiry_handle.cancel()
            own.expiry_handle = None
        if self._sanitizer is not None:
            self._sanitizer.on_session_withdrawn(self, own)
        message = SapMessage.delete(self.node, own.description.format())
        self._multicast(message, session.ttl)
        del self._own[(self.node, own.description.session_id)]

    def own_sessions(self) -> List[OwnSession]:
        """Sessions created at this site, with announcement state."""
        return list(self._own.values())

    def owns(self, message_key: Tuple[int, int]) -> bool:
        """True if a cache key corresponds to one of our sessions."""
        return any(own.message_key() == message_key
                   for own in self._own.values())

    def known_sessions(self) -> List[SessionDescription]:
        """Descriptions visible at this site (cache + our own)."""
        out = [entry.description for entry in self.cache.entries()
               if entry.description is not None]
        out.extend(own.description for own in self._own.values())
        return out

    def expire_cache(self) -> int:
        """Expire stale cache entries; returns how many were dropped."""
        return self.cache.expire(self.scheduler.now)

    # ------------------------------------------------------------------
    # Clash-protocol callbacks (invoked by the ClashHandler)
    # ------------------------------------------------------------------
    def defend(self, own: OwnSession) -> None:
        """Phase 1: immediately re-announce an established session."""
        own.announcer.announce_now()

    def retreat(self, own: OwnSession) -> None:
        """Phase 2: move a just-announced session to a new address."""
        if (self._persona is not None
                and self._persona.overrides_retreat(self, own)):
            # An always-defends adversary holds its claim where the
            # protocol says a newcomer must yield.
            self.defend(own)
            return
        visible = self._allocation_view()
        result = self.allocator.allocate(own.session.ttl, visible)
        old_address = own.session.address
        own.session.address = result.address
        own.description.connection_address = (
            self.address_space.index_to_ip(result.address)
        )
        own.description.version += 1
        self.address_changes += 1
        if self._sanitizer is not None:
            self._sanitizer.on_session_moved(self, own, old_address)
        own.announcer.announce_now()

    def proxy_defend(self, entry) -> None:
        """Phase 3: re-announce a cached session for its originator."""
        message = SapMessage(
            SapMessageType.ANNOUNCE,
            entry.message.origin,
            entry.message.msg_id_hash,
            entry.message.payload,
        )
        ttl = entry.ttl
        self._multicast(message, ttl)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _allocation_view(self) -> VisibleSet:
        """Cache contents plus our own live sessions."""
        cached = self.cache.visible_set()
        own_addresses = [own.session.address for own in self._own.values()]
        own_ttls = [own.session.ttl for own in self._own.values()]
        if not own_addresses:
            return cached
        addresses = np.concatenate([
            cached.addresses, np.asarray(own_addresses, dtype=np.int64)
        ])
        ttls = np.concatenate([
            cached.ttls, np.asarray(own_ttls, dtype=np.int64)
        ])
        return VisibleSet(addresses, ttls)

    def _make_announcer(self, session: Session,
                        description: SessionDescription) -> Announcer:
        def send() -> None:
            message = SapMessage.announce(self.node, description.format())
            self._multicast(message, session.ttl)

        return Announcer(
            scheduler=self.scheduler,
            send=send,
            strategy=self.strategy_factory(),
            sessions_known=lambda: len(self.cache) + len(self._own),
            rng=self.rng,
        )

    def _multicast(self, message: SapMessage, ttl: int) -> None:
        if self._persona is not None:
            ttl = self._persona.announce_ttl(self, ttl)
        if self.authenticator is not None:
            payload = self.authenticator.seal(message)
        else:
            payload = message.encode()
        packet = Packet(source=self.node, group=SAP_GROUP, ttl=ttl,
                        payload=payload)
        self.network.send(packet)

    def _on_packet(self, receiver: int, packet: Packet) -> None:
        if (self._persona is not None
                and self._persona.drops_packet(self, packet)):
            return
        if self.authenticator is not None:
            message = self.authenticator.verify(packet.payload)
            if message is None:
                self.auth_failures += 1
                return
        else:
            try:
                message = SapMessage.decode(packet.payload)
            except ValueError:
                return
        if self._drop_self_origin(message):
            return
        self.announcements_received += 1
        address_index = self._address_index_of(message)
        entry = self.cache.observe(message, self.scheduler.now,
                                   address_index=address_index)
        if entry is not None and entry.address_index is None:
            entry.address_index = address_index
        if entry is not None and self.clash_handler is not None:
            self.clash_handler.on_announcement(entry)

    def _drop_self_origin(self, message: SapMessage) -> bool:
        """Drop our own announcements echoed back to us.

        A third-party proxy defence (§3 phase 3) re-sends our message
        verbatim.  Real sdr ignores these; caching them would let this
        site later proxy-defend its *own withdrawn* session,
        resurrecting a session it knows is dead.
        """
        return message.origin == self.node

    def _address_index_of(self, message: SapMessage) -> Optional[int]:
        if message.msg_type is not SapMessageType.ANNOUNCE:
            return None
        try:
            description = SessionDescription.parse(message.payload)
            return self.address_space.ip_to_index(
                description.connection_address
            )
        except ValueError:
            return None

    def _find_own(self, session: Session) -> OwnSession:
        for own in self._own.values():
            if own.session is session:
                return own
        raise KeyError(f"session {session.key()} was not created here")

    def __repr__(self) -> str:
        return (f"SessionDirectory(node={self.node}, "
                f"own={len(self._own)}, cached={len(self.cache)})")
