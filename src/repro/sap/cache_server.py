"""Proxy cache servers (§2.3).

"Combined with local caching servers so that new session directory
instances get a complete current picture" — the paper's mechanism for
giving a freshly started sdr an immediate, complete view instead of
waiting one full announcement period per session.

A :class:`ProxyCacheServer` is a long-running listener that keeps a
full cache for its site and, on request, replays every cached
announcement to a newly started directory over the local network
(modelled as an immediate cache hand-off, since the transfer is a
LAN-local unicast burst).  It can optionally also *re-announce*
cached entries at a slow trickle on the originators' behalf, which
shortens discovery for everyone behind a lossy link.
"""

from __future__ import annotations

from typing import Optional


from repro.sap.cache import SessionCache
from repro.sap.directory import SessionDirectory
from repro.sap.messages import SapMessage, SapMessageType
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.network import NetworkModel, Packet


class ProxyCacheServer:
    """A site-local cache that warm-starts new directories.

    Args:
        node: the node the server runs at.
        scheduler: simulation scheduler.
        network: multicast substrate (the server listens like any
            directory).
        cache: optionally share an existing cache instance.
        trickle_interval: if set, re-announce one cached entry every
            this many seconds (round robin), on the originator's
            behalf.
    """

    def __init__(self, node: int, scheduler: EventScheduler,
                 network: NetworkModel,
                 cache: Optional[SessionCache] = None,
                 trickle_interval: Optional[float] = None) -> None:
        self.node = node
        self.scheduler = scheduler
        self.network = network
        self.cache = cache if cache is not None else SessionCache()
        self.trickle_interval = trickle_interval
        self.syncs_served = 0
        self.trickles_sent = 0
        self._trickle_handle: Optional[EventHandle] = None
        self._trickle_cursor = 0
        network.listen(node, self._on_packet)
        if trickle_interval is not None:
            if trickle_interval <= 0:
                raise ValueError("trickle_interval must be positive")
            self._schedule_trickle()

    # ------------------------------------------------------------------
    # Listening
    # ------------------------------------------------------------------
    def _on_packet(self, receiver: int, packet: Packet) -> None:
        try:
            message = SapMessage.decode(packet.payload)
        except ValueError:
            return
        self.cache.observe(message, self.scheduler.now)

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def sync_directory(self, directory: SessionDirectory) -> int:
        """Hand the full cache to a (site-local) directory.

        Returns the number of entries transferred.  Models the LAN
        unicast burst a real sdr cache server performs at startup.
        """
        transferred = 0
        for entry in self.cache.entries():
            fake_packet = Packet(
                source=entry.message.origin,
                group=0,
                ttl=entry.ttl,
                payload=entry.message.encode(),
            )
            directory._on_packet(directory.node, fake_packet)
            transferred += 1
        self.syncs_served += 1
        return transferred

    # ------------------------------------------------------------------
    # Trickle re-announcement
    # ------------------------------------------------------------------
    def _schedule_trickle(self) -> None:
        self._trickle_handle = self.scheduler.schedule(
            self.trickle_interval, self._trickle
        )

    def _trickle(self) -> None:
        entries = self.cache.entries()
        if entries:
            entry = entries[self._trickle_cursor % len(entries)]
            self._trickle_cursor += 1
            message = SapMessage(
                SapMessageType.ANNOUNCE,
                entry.message.origin,
                entry.message.msg_id_hash,
                entry.message.payload,
            )
            self.network.send(Packet(
                source=self.node, group=0, ttl=entry.ttl,
                payload=message.encode(),
            ))
            self.trickles_sent += 1
        self._schedule_trickle()

    def stop(self) -> None:
        """Stop the trickle loop (listening continues)."""
        if self._trickle_handle is not None:
            self._trickle_handle.cancel()
            self._trickle_handle = None

    def __repr__(self) -> str:
        return (f"ProxyCacheServer(node={self.node}, "
                f"cached={len(self.cache)}, syncs={self.syncs_served})")
