"""MZAP-lite: multicast scope zone announcements.

The paper's §1 treats administrative scope zones as configured state;
in practice zones need to *announce themselves* so applications learn
which scopes exist at their site, and so misconfigured (leaky) zone
boundaries can be detected — the job later standardised as MZAP
(RFC 2776).  This module implements the reduced protocol our
simulations need:

* each zone has one or more **Zone Announcement Producers** inside it
  that periodically multicast a Zone Announcement Message (ZAM),
  scoped to the zone's own range;
* listeners collect ZAMs to build their local scope list (which feeds
  the admin-scoped allocator);
* a ZAM heard by a listener *outside* the producer's zone means a
  boundary router is leaking — the key misconfiguration MZAP exists
  to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


from repro.routing.admin_scoping import AdminScopeMap, ScopeZone
from repro.sim.events import EventHandle, EventScheduler

#: Default ZAM period (RFC 2776 uses 15-60 s ranges; we keep it short
#: for simulation economy).
DEFAULT_ZAM_INTERVAL = 60.0


@dataclass(frozen=True)
class ZoneAnnouncement:
    """One ZAM.

    Attributes:
        zone_name: the textual scope name.
        range_lo: first address index of the scoped range.
        range_hi: one past the last address index.
        producer: node id of the announcing producer.
    """

    zone_name: str
    range_lo: int
    range_hi: int
    producer: int


class ZamTransport:
    """Delivery of ZAMs under admin-scope rules (plus injected leaks).

    A faithful transport would ride the packet network; for the zone
    bookkeeping experiments the scoped delivery rule of
    :class:`AdminScopeMap` is the behaviour under test, so we apply it
    directly — and allow *leaks* to be injected to model a
    misconfigured boundary router.
    """

    def __init__(self, scope_map: AdminScopeMap,
                 scheduler: EventScheduler,
                 delay: float = 0.05) -> None:
        self.scope_map = scope_map
        self.scheduler = scheduler
        self.delay = delay
        self._listeners: Dict[int, List["ZoneListener"]] = {}
        self._leaky_zones: Set[str] = set()

    def listen(self, node: int, listener: "ZoneListener") -> None:
        self._listeners.setdefault(node, []).append(listener)

    def inject_leak(self, zone_name: str) -> None:
        """Make ``zone_name``'s boundary leak ZAMs to everyone."""
        self._leaky_zones.add(zone_name)

    def repair_leak(self, zone_name: str) -> None:
        self._leaky_zones.discard(zone_name)

    def send(self, announcement: ZoneAnnouncement) -> None:
        leaking = announcement.zone_name in self._leaky_zones
        reach = self.scope_map.reachable(announcement.producer,
                                         announcement.range_lo)
        for node in self._listeners:
            if node == announcement.producer:
                continue
            if not leaking and not reach[node]:
                continue
            # Fire-and-forget is safe here: _deliver looks the node's
            # listeners up at *fire* time, so a listener removed while
            # the ZAM is in flight simply misses it — no stale callback
            # a stored handle would need to cancel.
            self.scheduler.schedule(  # simlint: disable=discarded-handle
                self.delay,
                lambda n=node: self._deliver(n, announcement),
            )

    def _deliver(self, node: int, announcement: ZoneAnnouncement) -> None:
        for listener in list(self._listeners.get(node, ())):
            listener.receive(node, announcement)


class ZoneAnnouncer:
    """A Zone Announcement Producer for one zone."""

    def __init__(self, zone: ScopeZone, producer: int,
                 transport: ZamTransport,
                 interval: float = DEFAULT_ZAM_INTERVAL) -> None:
        if producer not in zone.members:
            raise ValueError(
                f"producer {producer} is outside zone {zone.name!r}"
            )
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.zone = zone
        self.producer = producer
        self.transport = transport
        self.interval = interval
        self.announcements_sent = 0
        self._pending: Optional[EventHandle] = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._fire()

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _fire(self) -> None:
        if not self._running:
            return
        self.transport.send(ZoneAnnouncement(
            zone_name=self.zone.name,
            range_lo=self.zone.range_lo,
            range_hi=self.zone.range_hi,
            producer=self.producer,
        ))
        self.announcements_sent += 1
        self._pending = self.transport.scheduler.schedule(
            self.interval, self._fire
        )


@dataclass
class LearnedZone:
    """A listener's knowledge of one zone."""

    announcement: ZoneAnnouncement
    first_heard: float
    last_heard: float
    times_heard: int = 1


class ZoneListener:
    """Collects ZAMs at one node; flags boundary leaks.

    A leak is a ZAM for a zone this node is *not* a member of, heard
    on a scoped range the node *does* have a zone for (or any scoped
    range at all when strict) — i.e. the packet crossed a boundary it
    should not have.
    """

    def __init__(self, node: int, scope_map: AdminScopeMap,
                 transport: ZamTransport) -> None:
        self.node = node
        self.scope_map = scope_map
        self.transport = transport
        self.learned: Dict[Tuple[str, int], LearnedZone] = {}
        self.leaks_detected: List[ZoneAnnouncement] = []
        transport.listen(node, self)

    def receive(self, node: int, announcement: ZoneAnnouncement) -> None:
        now = self.transport.scheduler.now
        key = (announcement.zone_name, announcement.producer)
        entry = self.learned.get(key)
        if entry is None:
            self.learned[key] = LearnedZone(announcement, now, now)
        else:
            entry.last_heard = now
            entry.times_heard += 1
        if not self._member_of(announcement):
            self.leaks_detected.append(announcement)

    def _member_of(self, announcement: ZoneAnnouncement) -> bool:
        for zone in self.scope_map.zones_of(self.node):
            if (zone.name == announcement.zone_name
                    and zone.range_lo == announcement.range_lo):
                return True
        return False

    def known_zone_names(self) -> List[str]:
        return sorted({key[0] for key in self.learned})

    def scoped_ranges(self) -> List[Tuple[int, int]]:
        """The (lo, hi) ranges this node should treat as scoped."""
        return sorted({
            (entry.announcement.range_lo, entry.announcement.range_hi)
            for entry in self.learned.values()
            if self._member_of(entry.announcement)
        })
