"""Session directory substrate: SAP/SDP and the clash protocol.

Models the sdr tool's machinery (paper §1, §3, §4):

* :mod:`repro.sap.sdp` — an SDP-lite session description format;
* :mod:`repro.sap.messages` — SAP announcement/deletion packets;
* :mod:`repro.sap.cache` — the announce/listen session cache;
* :mod:`repro.sap.announcer` — periodic re-announcement strategies
  (fixed interval, bandwidth-limited, exponential back-off);
* :mod:`repro.sap.response_timer` — uniform/exponential suppression
  delays for the request-response protocol;
* :mod:`repro.sap.clash_protocol` — the three-phase clash detection
  and correction behaviour;
* :mod:`repro.sap.directory` — the per-site session directory tying
  it all together over the simulated network.
"""

from repro.sap.announcer import (
    Announcer,
    BandwidthLimitedStrategy,
    ExponentialBackoffStrategy,
    FixedIntervalStrategy,
)
from repro.sap.auth import AuthenticationError, SapAuthenticator
from repro.sap.browser import BrowserEntry, SessionBrowser
from repro.sap.cache import CacheEntry, SessionCache
from repro.sap.cache_server import ProxyCacheServer
from repro.sap.channel import AnnouncementChannel
from repro.sap.clash_protocol import ClashPolicy
from repro.sap.mzap import (
    ZamTransport,
    ZoneAnnouncement,
    ZoneAnnouncer,
    ZoneListener,
)
from repro.sap.directory import SessionDirectory
from repro.sap.messages import SapMessage, SapMessageType
from repro.sap.response_timer import (
    ExponentialDelayTimer,
    UniformDelayTimer,
)
from repro.sap.sdp import MediaStream, SessionDescription

__all__ = [
    "AnnouncementChannel",
    "Announcer",
    "AuthenticationError",
    "SapAuthenticator",
    "BandwidthLimitedStrategy",
    "BrowserEntry",
    "CacheEntry",
    "ProxyCacheServer",
    "SessionBrowser",
    "ZamTransport",
    "ZoneAnnouncement",
    "ZoneAnnouncer",
    "ZoneListener",
    "ClashPolicy",
    "ExponentialBackoffStrategy",
    "ExponentialDelayTimer",
    "FixedIntervalStrategy",
    "MediaStream",
    "SapMessage",
    "SapMessageType",
    "SessionCache",
    "SessionDescription",
    "SessionDirectory",
    "UniformDelayTimer",
]
