"""The birthday problem applied to random address allocation (fig. 4).

"Using a purely random allocation mechanism within a scope band would
lead to an expected address clash when approximately the square root of
the number of available addresses in the scope band are allocated."
Fig. 4 plots the clash probability for a space of 10 000 addresses.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

ArrayLike = Union[int, Sequence[int], np.ndarray]


def clash_probability(space_size: int, allocations: ArrayLike):
    """P(at least one clash) after ``allocations`` uniform random picks.

    Computed in the log domain so large spaces stay accurate:
    ``P = 1 - prod_{i=0}^{k-1} (1 - i/n)``.

    Args:
        space_size: number of addresses ``n``.
        allocations: one or many allocation counts ``k``.

    Returns:
        Float or float array matching the shape of ``allocations``.
    """
    if space_size <= 0:
        raise ValueError(f"space_size must be positive: {space_size}")
    ks = np.atleast_1d(np.asarray(allocations, dtype=np.int64))
    if (ks < 0).any():
        raise ValueError("allocation counts must be non-negative")
    max_k = int(ks.max()) if ks.size else 0
    # log(1 - i/n) for i = 0..max_k-1, cumulative.
    i = np.arange(max_k, dtype=np.float64)
    with np.errstate(divide="ignore"):
        log_terms = np.log1p(-np.minimum(i / space_size, 1.0))
    cumulative = np.concatenate([[0.0], np.cumsum(log_terms)])
    prob = 1.0 - np.exp(cumulative[ks])
    prob = np.where(ks > space_size, 1.0, prob)
    if np.isscalar(allocations) or np.asarray(allocations).ndim == 0:
        return float(prob[0])
    return prob


def allocations_for_clash_probability(space_size: int,
                                      probability: float = 0.5) -> int:
    """Smallest k with ``clash_probability(n, k) >= probability``."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1): {probability}")
    lo, hi = 1, space_size + 1
    while lo < hi:
        mid = (lo + hi) // 2
        if clash_probability(space_size, mid) >= probability:
            hi = mid
        else:
            lo = mid + 1
    return lo


def expected_allocations_before_clash(space_size: int) -> float:
    """Expected allocations until the first clash.

    The classic asymptotic ``sqrt(pi*n/2) + 2/3`` — the O(sqrt n)
    scaling the paper cites for algorithms R and IR.
    """
    if space_size <= 0:
        raise ValueError(f"space_size must be positive: {space_size}")
    return math.sqrt(math.pi * space_size / 2.0) + 2.0 / 3.0
