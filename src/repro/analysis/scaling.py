"""Capacity arithmetic for the §4.1 hierarchical proposal.

The conclusion's quantitative claims:

* "even a good session announcement mechanism with a perfect version
  of IPRMA cannot expect to allocate an address space of 270 million
  addresses effectively.  It could probably allocate an address space
  of 65,536 addresses";
* "an address allocation scheme similar to the one described here can
  be used to allocate addresses from a space of up to 10,000
  addresses - the work in this paper implies that this is a reasonable
  bound on flat address space allocation";
* prefixes are allocated on long timescales, so prefix-level
  invisibility is tiny and the prefix layer packs nearly perfectly.

This module turns those claims into a calculator: given the flat-band
bound, an invisibility fraction per layer and the total space, how
many concurrent sessions can the flat scheme vs the two-level scheme
sustain at the paper's clash-probability-0.5 criterion?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.clash_model import allocations_before_half

#: The paper's flat-allocation bound (§4.1).
FLAT_BAND_BOUND = 10_000
#: Total IPv4 multicast addresses.
IPV4_MULTICAST = 2 ** 28


@dataclass(frozen=True)
class HierarchyCapacity:
    """Capacity estimate for one configuration."""

    total_space: int
    prefixes: int
    prefix_size: int
    prefixes_usable: int
    sessions_per_prefix: int
    total_sessions: int


def flat_capacity(space_size: int, i_fraction: float) -> int:
    """Concurrent sessions a flat allocator sustains at p(clash)=0.5.

    Applies the fig. 6 model directly to the whole space (one band).
    """
    if space_size <= 0:
        raise ValueError(f"space_size must be positive: {space_size}")
    return allocations_before_half(space_size, i_fraction)


def hierarchical_capacity(total_space: int = IPV4_MULTICAST,
                          prefix_size: int = FLAT_BAND_BOUND,
                          address_i_fraction: float = 0.00005,
                          prefix_i_fraction: float = 0.000001
                          ) -> HierarchyCapacity:
    """Capacity of the §4.1 two-level scheme.

    Args:
        total_space: the space the prefix layer manages.
        prefix_size: addresses per prefix (the paper's flat bound).
        address_i_fraction: invisibility at the address layer
            (regional announcements, back-off: the paper's 0.00005).
        prefix_i_fraction: invisibility at the prefix layer (long
            timescales over reliable routing exchanges: near zero).

    Returns:
        A :class:`HierarchyCapacity`; ``total_sessions`` is the
        headline number.
    """
    if prefix_size <= 0 or total_space < prefix_size:
        raise ValueError("need 0 < prefix_size <= total_space")
    prefixes = total_space // prefix_size
    # The prefix layer is itself an informed allocation problem over
    # `prefixes` slots; how many can be claimed before prefix clashes?
    prefixes_usable = allocations_before_half(prefixes,
                                              prefix_i_fraction)
    sessions_per_prefix = allocations_before_half(prefix_size,
                                                  address_i_fraction)
    return HierarchyCapacity(
        total_space=total_space,
        prefixes=prefixes,
        prefix_size=prefix_size,
        prefixes_usable=prefixes_usable,
        sessions_per_prefix=sessions_per_prefix,
        total_sessions=prefixes_usable * sessions_per_prefix,
    )


def improvement_factor(total_space: int = IPV4_MULTICAST,
                       flat_i_fraction: float = 0.001,
                       **hierarchy_kwargs) -> float:
    """How many times more sessions the hierarchy sustains than flat
    allocation over the same space."""
    flat = flat_capacity(total_space, flat_i_fraction)
    hierarchical = hierarchical_capacity(total_space,
                                         **hierarchy_kwargs)
    return hierarchical.total_sessions / max(1, flat)
