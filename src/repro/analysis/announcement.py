"""The §2.3 announcement delay/loss model.

The accuracy of an informed allocator's view depends on how quickly
session announcements propagate.  The paper's baseline numbers: mean
session length 2 hours, mean advance announcement 2 hours (so sessions
are advertised ~4 hours), mean end-to-end Mbone delay 200 ms, mean loss
2%, re-announcement every 10 minutes — giving a mean effective delay of
about 12 seconds and ~0.1% of sessions invisible at any time.

The fix proposed in §2.3/§4: announce at a *non-uniform* rate, starting
fast (5 s) and exponentially backing off to a background rate; with 2%
loss this cuts the mean discovery delay to ~0.3 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Paper baseline: mean Mbone end-to-end delay.
DEFAULT_E2E_DELAY = 0.2
#: Paper baseline: mean packet loss.
DEFAULT_LOSS = 0.02
#: Paper baseline: fixed re-announcement interval (10 minutes).
DEFAULT_INTERVAL = 600.0
#: Paper baseline: mean time a session is advertised (4 hours).
DEFAULT_ADVERTISED_TIME = 4 * 3600.0


def mean_announcement_delay(loss: float = DEFAULT_LOSS,
                            e2e_delay: float = DEFAULT_E2E_DELAY,
                            interval: float = DEFAULT_INTERVAL) -> float:
    """Mean delay until a site first receives an announcement.

    Geometric retransmission: a lost announcement is next heard one
    re-announcement interval later, so::

        E[delay] = d + interval * p / (1 - p)

    The paper's two-term approximation ``(1-p)*d + p*interval`` gives
    the same ~12 s for the baseline parameters.
    """
    _validate_loss(loss)
    if e2e_delay < 0 or interval <= 0:
        raise ValueError("delay must be >= 0 and interval > 0")
    return e2e_delay + interval * loss / (1.0 - loss)


def paper_two_term_delay(loss: float = DEFAULT_LOSS,
                         e2e_delay: float = DEFAULT_E2E_DELAY,
                         interval: float = DEFAULT_INTERVAL) -> float:
    """The paper's own approximation: (1-p)*d + p*interval = 12 s."""
    _validate_loss(loss)
    return (1.0 - loss) * e2e_delay + loss * interval


def invisible_fraction(mean_delay: float,
                       advertised_time: float = DEFAULT_ADVERTISED_TIME
                       ) -> float:
    """Fraction of currently-advertised sessions invisible at a site.

    A session is invisible for ``mean_delay`` of its ``advertised_time``
    — "approximately 0.1% of sessions currently advertised are not
    visible at any time" with the baseline numbers.  This is the
    ``i/m`` fraction fed to eq. 1.
    """
    if mean_delay < 0 or advertised_time <= 0:
        raise ValueError("need mean_delay >= 0 and advertised_time > 0")
    return min(1.0, mean_delay / advertised_time)


@dataclass(frozen=True)
class ExponentialBackoffSchedule:
    """Announce fast at first, then back off exponentially.

    "Optimally, it should start from a high announcement rate (say a 5
    second interval) and exponentially back off the rate until a low
    background rate is reached." (§4)

    Attributes:
        initial_interval: first re-announcement gap in seconds.
        factor: multiplicative back-off per announcement.
        background_interval: cap; intervals never exceed this.
    """

    initial_interval: float = 5.0
    factor: float = 2.0
    background_interval: float = DEFAULT_INTERVAL

    def __post_init__(self) -> None:
        if self.initial_interval <= 0 or self.background_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1: {self.factor}")
        if self.initial_interval > self.background_interval:
            raise ValueError("initial interval exceeds background cap")

    def intervals(self, count: int) -> List[float]:
        """The first ``count`` re-announcement gaps."""
        out: List[float] = []
        gap = self.initial_interval
        for __ in range(count):
            out.append(min(gap, self.background_interval))
            gap *= self.factor
        return out

    def announcement_times(self, count: int) -> List[float]:
        """Absolute send times of the first ``count`` announcements."""
        times = [0.0]
        for gap in self.intervals(count - 1):
            times.append(times[-1] + gap)
        return times

    def mean_discovery_delay(self, loss: float = DEFAULT_LOSS,
                             e2e_delay: float = DEFAULT_E2E_DELAY,
                             max_attempts: int = 64) -> float:
        """Expected delay until the first announcement is received.

        Attempt ``k`` (0-based) is sent at ``t_k`` and received with
        probability ``(1-p)``; the expectation sums over the first
        successful attempt.  With the paper's 2% loss and a 5 s first
        retry this is ~0.3 s.
        """
        _validate_loss(loss)
        times = self.announcement_times(max_attempts)
        expectation = 0.0
        p_all_lost = 1.0
        for t in times:
            expectation += p_all_lost * (1.0 - loss) * (t + e2e_delay)
            p_all_lost *= loss
        # Remaining probability mass: keep retrying at the background
        # rate (geometric tail from the last attempt).
        tail_start = times[-1] + self.background_interval
        tail_mean = tail_start + (
            self.background_interval * loss / (1.0 - loss)
        ) + e2e_delay
        expectation += p_all_lost * tail_mean
        return expectation

    def i_fraction(self, loss: float = DEFAULT_LOSS,
                   e2e_delay: float = DEFAULT_E2E_DELAY,
                   advertised_time: float = DEFAULT_ADVERTISED_TIME
                   ) -> float:
        """The eq. 1 invisibility fraction this schedule achieves."""
        return invisible_fraction(
            self.mean_discovery_delay(loss, e2e_delay), advertised_time
        )


def _validate_loss(loss: float) -> None:
    if not 0.0 <= loss < 1.0:
        raise ValueError(f"loss must be in [0, 1): {loss}")
