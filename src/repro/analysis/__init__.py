"""Closed-form models from the paper.

* :mod:`repro.analysis.birthday` — the birthday-problem clash curve of
  fig. 4.
* :mod:`repro.analysis.clash_model` — eq. 1 and fig. 6: clash
  probability of a partially-informed allocator with invisibly
  allocated addresses.
* :mod:`repro.analysis.announcement` — the §2.3 arithmetic: mean
  announcement propagation delay under loss, invisible-session
  fraction, exponential back-off schedules.
* :mod:`repro.analysis.response_bounds` — eqs. 2 and 4: upper bounds on
  the number of responders in the multicast request-response protocol
  for uniform and exponential random delays (figs. 14 and 18).
"""

from repro.analysis.announcement import (
    ExponentialBackoffSchedule,
    invisible_fraction,
    mean_announcement_delay,
)
from repro.analysis.birthday import (
    allocations_for_clash_probability,
    clash_probability,
    expected_allocations_before_clash,
)
from repro.analysis.clash_model import (
    allocations_before_half,
    no_clash_probability,
    single_allocation_no_clash,
)
from repro.analysis.response_bounds import (
    exponential_delay_sample,
    exponential_expected_responses,
    uniform_expected_responses,
)

__all__ = [
    "ExponentialBackoffSchedule",
    "allocations_before_half",
    "allocations_for_clash_probability",
    "clash_probability",
    "expected_allocations_before_clash",
    "exponential_delay_sample",
    "exponential_expected_responses",
    "invisible_fraction",
    "mean_announcement_delay",
    "no_clash_probability",
    "single_allocation_no_clash",
    "uniform_expected_responses",
]
