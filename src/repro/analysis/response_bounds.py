"""Equations 2 and 4: responder-count bounds (figs. 14 and 18).

Setting (paper §3): a clash report is multicast; each of ``n``
potential responders delays its response by a random amount and
cancels if it hears someone else respond first.  With maximum RTT
``R``, divide the delay interval [D1, D2] into ``d`` buckets of size
``R``.  A response in bucket ``b`` suppresses all later buckets but
nothing within its own bucket, so the expected number of responses is
the expected occupancy of the earliest non-empty bucket — an *upper*
bound on the real protocol (which also gets within-bucket suppression
and shorter RTTs).

Uniform delays (eq. 2): bucket probabilities are equal.  The paper's
double sum collapses (via ``sum_k k*C(n,k)*x^(n-k) = n*(x+1)^(n-1)``)
to::

    E(n, d) = n / d^n * sum_{m=1}^{d} m^(n-1)

Exponential delays (eq. 4): bucket ``b`` is twice as probable as
bucket ``b-1`` — equivalently uniform over ``2^d - 1`` sub-buckets,
bucket ``b`` owning ``2^(b-1)`` of them (fig. 17).  The double sum
collapses the same way to::

    E(n, d) = n / T^n * sum_{b=1}^{d} w_b * (T - w_b + 1)^(n-1)

with ``w_b = 2^(b-1)`` and ``T = 2^d - 1``.  As n grows this tends to
1/ln 2 ~= 1.4427 responses — "the small price we pay for using an
exponential".

Both collapsed forms are validated against the paper's explicit double
sums in the test suite.
"""

from __future__ import annotations

import math

import numpy as np

#: n -> infinity limit of the exponential bound (1 / ln 2).
EXPONENTIAL_LIMIT = 1.0 / math.log(2.0)


def uniform_expected_responses(n: int, d: int) -> float:
    """Eq. 2 (collapsed): expected responders, uniform delay buckets.

    Args:
        n: number of potential responders.
        d: number of delay buckets, ``(D2 - D1) / R``.
    """
    _validate(n, d)
    m = np.arange(1, d + 1, dtype=np.float64)
    # n * sum (m/d)^(n-1) / d, computed in the log domain.
    log_terms = (n - 1) * np.log(m / d) - math.log(d)
    return float(n * np.exp(log_terms).sum())


def uniform_double_sum(n: int, d: int) -> float:
    """Eq. 2 exactly as printed (for validating the collapsed form).

    O(n*d) term evaluation — use small n, d.
    """
    _validate(n, d)
    total = 0.0
    for b in range(1, d + 1):
        for k in range(1, n + 1):
            # P(min-occupied bucket is b with k packets):
            # C(n,k) * (d-b)^(n-k) / d^n
            if d - b == 0 and n - k > 0:
                continue
            log_p = (
                _log_choose(n, k)
                + (n - k) * (math.log(d - b) if d - b > 0 else 0.0)
                - n * math.log(d)
            )
            total += k * math.exp(log_p)
    return total


def exponential_expected_responses(n: int, d: int) -> float:
    """Eq. 4 (collapsed): expected responders, doubling delay buckets.

    Args:
        n: number of potential responders.
        d: number of buckets; bucket b has probability 2^(b-1)/(2^d-1).
    """
    _validate(n, d)
    ln2 = math.log(2.0)
    # ln T = ln(2^d - 1), stable for large d.
    log_t = d * ln2 + math.log1p(-math.pow(2.0, -d))
    total = 0.0
    for b in range(1, d + 1):
        log_w = (b - 1) * ln2
        # ln(T - w_b + 1) = ln T + log1p(-(w_b - 1)/T)
        frac = _pow2_ratio(b - 1, d)  # (2^(b-1) - 1) / (2^d - 1)
        log_rest = log_t + math.log1p(-frac)
        log_term = math.log(n) + log_w + (n - 1) * log_rest - n * log_t
        total += math.exp(log_term)
    return total


def exponential_double_sum(n: int, d: int) -> float:
    """Eq. 4 exactly as printed (for validating the collapsed form)."""
    _validate(n, d)
    if d > 50:
        raise ValueError("double sum form only for small d")
    t = 2 ** d - 1
    total = 0.0
    for b in range(1, d + 1):
        w = 2 ** (b - 1)
        # P(min bucket b, count k) = C(n,k) w^k after^(n-k) / t^n:
        # k packets in bucket b's w sub-buckets, the rest in buckets
        # strictly after b, which hold t - (2^b - 1) sub-buckets.
        after = t - (2 ** b - 1)
        for k in range(1, n + 1):
            if after == 0 and n - k > 0:
                continue
            log_p = (
                _log_choose(n, k)
                + k * math.log(w)
                + (n - k) * (math.log(after) if after > 0 else 0.0)
                - n * math.log(t)
            )
            total += k * math.exp(log_p)
    return total


def uniform_delay_sample(x: float, d1: float, d2: float) -> float:
    """Uniform response delay: D = D1 + x*(D2 - D1), x ~ U[0,1]."""
    _validate_interval(d1, d2)
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1]: {x}")
    return d1 + x * (d2 - d1)


def exponential_delay_sample(x: float, d1: float, d2: float,
                             rtt: float) -> float:
    """Exponential response delay (paper's continuous form).

    ``D = D1 + r * log2(x * (2^d - 1) + 1)`` with ``d = (D2 - D1)/r``;
    early delays are exponentially less likely than late ones, so the
    earliest non-empty "bucket" is lightly occupied.

    Args:
        x: uniform random number in [0, 1].
        d1: minimum delay D1.
        d2: maximum delay D2.
        rtt: the bucket width r (maximum round-trip time estimate).
    """
    _validate_interval(d1, d2)
    if rtt <= 0:
        raise ValueError(f"rtt must be positive: {rtt}")
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1]: {x}")
    d = (d2 - d1) / rtt
    # x*(2^d - 1) + 1 in the log domain: for large d, 2^d overflows a
    # float at ~1024; work with log2 directly.
    if d < 500:
        return d1 + rtt * math.log2(x * (2.0 ** d - 1.0) + 1.0)
    # log2(x * 2^d + (1 - x)) ~= d + log2(x) for x > 0.
    if x <= 0.0:
        return d1
    return d1 + rtt * (d + math.log2(x))


def exponential_delay_array(x: np.ndarray, d1: float, d2: float,
                            rtt: float) -> np.ndarray:
    """Vectorised :func:`exponential_delay_sample`."""
    _validate_interval(d1, d2)
    if rtt <= 0:
        raise ValueError(f"rtt must be positive: {rtt}")
    x = np.asarray(x, dtype=np.float64)
    d = (d2 - d1) / rtt
    if d < 500:
        return d1 + rtt * np.log2(x * (2.0 ** d - 1.0) + 1.0)
    out = np.full_like(x, d1)
    positive = x > 0
    out[positive] = d1 + rtt * (d + np.log2(x[positive]))
    return out


def _pow2_ratio(a: int, d: int) -> float:
    """(2^a - 1) / (2^d - 1) without overflow for large exponents."""
    if a <= 0:
        return 0.0
    if d < 1000:
        return (2.0 ** a - 1.0) / (2.0 ** d - 1.0)
    return 2.0 ** (a - d)


def _log_choose(n: int, k: int) -> float:
    return (math.lgamma(n + 1) - math.lgamma(k + 1)
            - math.lgamma(n - k + 1))


def _validate(n: int, d: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one responder, got n={n}")
    if d < 1:
        raise ValueError(f"need at least one bucket, got d={d}")


def _validate_interval(d1: float, d2: float) -> None:
    if d1 < 0 or d2 < d1:
        raise ValueError(f"need 0 <= D1 <= D2, got D1={d1}, D2={d2}")
