"""Equation 1 and figure 6: informed allocation with invisible sessions.

Within one perfectly-partitioned IPRMA band of ``n`` addresses holding
``m`` allocated sessions, of which ``i`` are *invisibly* allocated (the
allocator has not yet heard their announcements because of propagation
delay and loss), the probability that a single new allocation does not
clash is::

    c_m = (n - m) / (n + i - m)                                (paper)

— the allocator picks uniformly among the ``n - m + i`` addresses it
*believes* free, of which ``i`` are actually in use... more precisely
the paper counts ``n - m`` genuinely free addresses out of the
``n - (m - i)`` the allocator sees as free.  Over the mean lifetime of
a session (m allocations replaced), assuming m constant::

    p_m = ((n - m) / (n + i - m)) ** m                         (eq. 1)

Fig. 6 plots, against the band size ``n``, the largest ``m`` for which
``p_m >= 0.5`` for several invisibility fractions ``i = f * m``, along
with the bounds y = x (perfect information) and y = sqrt(x) (pure
random / birthday regime).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def single_allocation_no_clash(n: int, m: float, i: float) -> float:
    """``c_m``: probability one new allocation avoids all clashes."""
    _validate(n, m, i)
    if m >= n:
        return 0.0
    return (n - m) / (n + i - m)


def no_clash_probability(n: int, m: float, i: float) -> float:
    """``p_m`` of eq. 1: no clash during one mean session lifetime."""
    _validate(n, m, i)
    if m <= 0:
        return 1.0
    if m >= n:
        return 0.0
    # m * log(c) in the log domain for numeric headroom at large m.
    log_c = math.log(n - m) - math.log(n + i - m)
    return math.exp(m * log_c)


def allocations_before_half(n: int, i_fraction: float,
                            threshold: float = 0.5) -> int:
    """Largest ``m`` with ``p_m >= threshold`` when ``i = i_fraction*m``.

    This is one point of a fig. 6 curve.

    Args:
        n: addresses in the partition.
        i_fraction: invisible fraction ``f`` so that ``i = f * m``.
        threshold: clash-probability criterion (paper uses 0.5, i.e.
            no-clash probability >= 0.5).
    """
    if n <= 0:
        raise ValueError(f"n must be positive: {n}")
    if i_fraction < 0:
        raise ValueError(f"i_fraction must be >= 0: {i_fraction}")
    lo, hi = 0, n - 1
    # p_m decreases in m (fewer free addresses, more invisible ones),
    # so binary search finds the boundary.
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if no_clash_probability(n, mid, i_fraction * mid) >= threshold:
            lo = mid
        else:
            hi = mid - 1
    return lo


def iprma_concurrent_sessions(space_size: int = 65_536,
                              partitions: int = 8,
                              i_fraction: float = 0.001) -> int:
    """The §2.3 headline number.

    "With an address space of 65536 addresses partitioned into 8 equal
    regions, and even distribution of sessions ... across the TTL
    regions, IPRMA gives us a total of approximately 16496 concurrent
    sessions as seen from each site before the probability of a clash
    exceeds 0.5."
    """
    per_partition = allocations_before_half(space_size // partitions,
                                            i_fraction)
    return partitions * per_partition


def fig6_series(sizes: Sequence[int],
                i_fractions: Sequence[float] = (
                    0.01, 0.001, 0.0001, 0.00001,
                )) -> Dict[float, List[int]]:
    """The fig. 6 curves: m at p=0.5 for each size, per i fraction."""
    return {
        fraction: [allocations_before_half(size, fraction)
                   for size in sizes]
        for fraction in i_fractions
    }


def _validate(n: int, m: float, i: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive: {n}")
    if m < 0 or i < 0:
        raise ValueError(f"m and i must be >= 0: m={m}, i={i}")
