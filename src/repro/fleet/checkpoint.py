"""Crash-tolerant JSONL checkpoints for sweep execution.

Layout: line 1 is a **meta** row binding the file to one spec digest;
every later line is one shard-attempt **row** (``status`` ``ok`` or
``failed``).  Rows are appended and flushed as outcomes arrive, in
completion order — which under parallel execution is *not* shard
order; the merge step restores that.

Torn writes: a crash (SIGKILL, power loss, full disk) can leave a
partial final line, and nothing downstream may ever trust it.
:meth:`Checkpoint.load` scans complete, parseable lines only, counts
everything after the last good line as torn, and truncates the file
back to that point so appends resume cleanly.  A torn tail therefore
costs at most the re-execution of the shards whose rows it held —
never a corrupted aggregate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

#: Checkpoint schema version (bumped on incompatible row changes).
FORMAT_VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint on disk belongs to a different sweep spec."""


@dataclass
class LoadedCheckpoint:
    """What a (possibly repaired) checkpoint file contained.

    Attributes:
        completed: shard index -> payload of its first ``ok`` row.
        failures: every ``failed`` row, in file order.
        mismatched: shard indices with *conflicting* duplicate ``ok``
            payloads — evidence of a nondeterministic job (FLT502).
        torn_bytes: bytes discarded from the tail (0 = clean file).
        rows: complete rows read (including the meta row).
    """

    completed: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    mismatched: List[int] = field(default_factory=list)
    torn_bytes: int = 0
    rows: int = 0


def _scan(data: bytes) -> "tuple[List[dict], int]":
    """Parse complete well-formed lines; return (rows, good_end).

    ``good_end`` is the byte offset just past the last line that both
    ended in a newline and parsed as JSON; everything after it is a
    torn tail (a partial append, or garbage from a corrupted write).
    """
    rows: List[dict] = []
    good_end = 0
    start = 0
    while True:
        newline = data.find(b"\n", start)
        if newline < 0:
            break  # no terminator: the remainder (if any) is torn
        line = data[start:newline].strip()
        if line:
            try:
                row = json.loads(line)
            except ValueError:
                break  # undecodable: discard it and everything after
            if not isinstance(row, dict):
                break
            rows.append(row)
        good_end = newline + 1
        start = newline + 1
    return rows, good_end


class Checkpoint:
    """An append-only JSONL journal of shard outcomes for one sweep."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[TextIO] = None

    # ------------------------------------------------------------------
    # Reading / repair
    # ------------------------------------------------------------------
    def load(self,
             expected_digest: Optional[str] = None) -> LoadedCheckpoint:
        """Read the journal, truncating any torn tail in place.

        Args:
            expected_digest: when given, the meta row must carry this
                spec digest.

        Raises:
            CheckpointMismatch: wrong digest, or no meta row first.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return LoadedCheckpoint()
        rows, good_end = _scan(data)
        torn = len(data) - good_end
        if torn:
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
        loaded = LoadedCheckpoint(torn_bytes=torn, rows=len(rows))
        if not rows:
            return loaded
        meta = rows[0]
        if meta.get("kind") != "meta":
            raise CheckpointMismatch(
                f"{self.path}: first row is not a meta row; not a "
                f"fleet checkpoint"
            )
        if expected_digest is not None and \
                meta.get("digest") != expected_digest:
            raise CheckpointMismatch(
                f"{self.path}: checkpoint digest "
                f"{meta.get('digest')!r} does not match the sweep "
                f"spec ({expected_digest!r}); refusing to merge rows "
                f"from a different sweep"
            )
        mismatched = []
        for row in rows[1:]:
            if row.get("kind") != "row" or "shard" not in row:
                continue
            index = int(row["shard"])
            if row.get("status") == "ok":
                payload = row.get("payload")
                if index in loaded.completed:
                    if loaded.completed[index] != payload and \
                            index not in mismatched:
                        mismatched.append(index)
                else:
                    loaded.completed[index] = payload
            else:
                loaded.failures.append(row)
        loaded.mismatched = sorted(mismatched)
        return loaded

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start fresh: drop any previous journal for this path."""
        self.close()
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    def ensure_meta(self, sweep_id: str, job: str, seed: int,
                    digest: str) -> None:
        """Write the meta row if the file is new or empty."""
        try:
            empty = os.path.getsize(self.path) == 0
        except OSError:
            empty = True
        if empty:
            self.append({
                "kind": "meta",
                "version": FORMAT_VERSION,
                "sweep": sweep_id,
                "job": job,
                "seed": seed,
                "digest": digest,
            })

    def append(self, row: Dict[str, Any]) -> None:
        """Append one row and flush it to the OS immediately.

        One row = one line; the flush bounds what a crash can tear to
        the final line, which :meth:`load` repairs.
        """
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
