"""Named sweep builders: the fleet CLI's scenario catalog.

Each builder returns a :class:`~repro.fleet.spec.SweepSpec` whose
shard grid is enumerated in a fixed, documented order — the same
order the legacy serial loops used — so the merged rows line up with
the paper figures row for row.

``demo`` is the quick-start sweep (Monte-Carlo pi over the shard
streams), ``fig5`` / ``steady`` / ``saploop`` shard the paper
experiments, and ``chaos`` is a deliberately failing sweep used to
exercise the retry/annotation machinery end to end.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.fleet.spec import SweepSpec, make_shards

#: Builder registry, name -> builder(seed, **overrides).
SWEEP_NAMES: Tuple[str, ...] = (
    "demo", "fig5", "steady", "saploop", "chaos",
)

SWEEP_DESCRIPTIONS: Dict[str, str] = {
    "demo": "Monte-Carlo pi over the shard streams (quick start)",
    "fig5": "fig. 5 allocations-before-clash grid, one cell/shard",
    "steady": "figs. 12/13 steady-state capacity, one point/shard",
    "saploop": "SAP-in-the-loop (strategy, loss) grid, one cell/shard",
    "chaos": "deliberately failing shards (retry/annotation drill)",
}


def demo_sweep(seed: int = 1998, shards: int = 6,
               samples: int = 20_000,
               sleep: float = 0.0, **common: Any) -> SweepSpec:
    """Monte-Carlo pi: every payload is a pure function of its
    shard stream, so this is the seed-contract demo."""
    params: List[Dict[str, Any]] = []
    for __ in range(shards):
        cell: Dict[str, Any] = {"samples": samples}
        if sleep > 0.0:
            cell["sleep"] = sleep
        params.append(cell)
    return SweepSpec(sweep_id="demo", job="demo-pi", seed=seed,
                     shards=make_shards(params), **common)


def fig5_sweep(seed: int = 1998, nodes: int = 60,
               sizes: Sequence[int] = (100, 200),
               algorithms: Sequence[str] = ("random", "informed",
                                            "ipr7"),
               distributions: Sequence[str] = ("ds1", "ds4"),
               trials: int = 2,
               max_allocations: Optional[int] = 2_000,
               map_path: Optional[str] = None,
               **common: Any) -> SweepSpec:
    """The fig. 5 grid, one (algorithm, distribution, size) cell per
    shard, enumerated in the serial loop's algo->dist->size order.

    ``max_allocations=None`` removes the per-trial cap and makes the
    cells match the legacy serial ``fig5_run`` path exactly (that is
    what ``repro fig5 --jobs N`` passes).
    """
    params = []
    for algorithm in algorithms:
        for distribution in distributions:
            for size in sizes:
                cell: Dict[str, Any] = {
                    "algorithm": algorithm,
                    "distribution": distribution,
                    "space_size": int(size),
                    "trials": int(trials),
                    "seed": int(seed),
                    "nodes": int(nodes),
                    "topology_seed": int(seed),
                }
                if max_allocations is not None:
                    cell["max_allocations"] = int(max_allocations)
                if map_path:
                    cell["map"] = map_path
                params.append(cell)
    return SweepSpec(sweep_id="fig5", job="fig5-cell", seed=seed,
                     shards=make_shards(params), **common)


def steady_sweep(seed: int = 1998, nodes: int = 60,
                 sizes: Sequence[int] = (100, 200, 400),
                 algorithms: Sequence[str] = ("random", "informed"),
                 distribution: str = "ds4", trials: int = 4,
                 same_site: bool = False,
                 derive_seed: bool = True,
                 map_path: Optional[str] = None,
                 **common: Any) -> SweepSpec:
    """The figs. 12/13 grid, one (algorithm, size) point per shard,
    in the serial loop's algo->size order."""
    params = []
    for algorithm in algorithms:
        for size in sizes:
            cell: Dict[str, Any] = {
                "algorithm": algorithm,
                "space_size": int(size),
                "distribution": distribution,
                "trials": int(trials),
                "seed": int(seed),
                "nodes": int(nodes),
                "topology_seed": int(seed),
                "same_site": bool(same_site),
                "derive_seed": bool(derive_seed),
            }
            if map_path:
                cell["map"] = map_path
            params.append(cell)
    return SweepSpec(sweep_id="steady", job="steady-cell", seed=seed,
                     shards=make_shards(params), **common)


def saploop_sweep(seed: int = 1998, nodes: int = 40,
                  strategies: Sequence[str] = ("fixed", "backoff"),
                  losses: Sequence[float] = (0.0, 0.1),
                  sessions: int = 2, space_size: int = 48,
                  **common: Any) -> SweepSpec:
    """The SAP-in-the-loop (strategy, loss) grid; each cell's config
    seed is drawn from its fleet shard stream."""
    params = []
    for strategy in strategies:
        for loss in losses:
            params.append({
                "strategy": strategy,
                "loss": float(loss),
                "nodes": int(nodes),
                "topology_seed": int(seed),
                "sessions": int(sessions),
                "space_size": int(space_size),
            })
    return SweepSpec(sweep_id="saploop", job="saploop-cell",
                     seed=seed, shards=make_shards(params), **common)


def chaos_sweep(seed: int = 1998, shards: int = 4,
                **common: Any) -> SweepSpec:
    """A drill sweep where some shards fail beyond the retry budget.

    Even shards succeed after one injected failure (exercising a
    retry that recovers); odd shards fail on every attempt
    (exercising FLT501 and the ``--format github`` annotations).
    """
    common.setdefault("retries", 1)
    common.setdefault("backoff", 0.0)
    params = []
    for index in range(shards):
        fail_attempts = 1 if index % 2 == 0 else 1_000
        params.append({"fail_attempts": fail_attempts})
    return SweepSpec(sweep_id="chaos", job="flaky", seed=seed,
                     shards=make_shards(params), **common)


_BUILDERS: Dict[str, Callable[..., SweepSpec]] = {
    "demo": demo_sweep,
    "fig5": fig5_sweep,
    "steady": steady_sweep,
    "saploop": saploop_sweep,
    "chaos": chaos_sweep,
}


def build_sweep(name: str, seed: int = 1998,
                **overrides: Any) -> SweepSpec:
    """Build a named sweep.

    Raises:
        ValueError: for an unknown sweep name.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep {name!r}; known: "
            f"{', '.join(SWEEP_NAMES)}"
        ) from None
    return builder(seed=seed, **overrides)
