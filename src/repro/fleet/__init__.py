"""repro.fleet — parallel, fault-tolerant sweep execution.

Turns experiment sweeps into shardable job specs executed across a
``multiprocessing`` worker pool with per-job timeouts, bounded retry
with exponential backoff, and checkpointed JSONL results, so an
interrupted sweep resumes from its last completed shard.

The determinism contract: every shard derives its RNG from
``derived_stream(f"fleet/<sweep>/shard-<index>", seed)`` — a function
of the spec alone — so serial (``--jobs 1``) and parallel execution
aggregate **byte-identically**, and a resumed run finishes with the
same bytes a straight-through run produces.

Layers:

* :mod:`repro.fleet.spec` — sweep specs, shards, seed derivation;
* :mod:`repro.fleet.jobs` — the named job registry (experiment cells
  plus benchmark/fault drills);
* :mod:`repro.fleet.checkpoint` — torn-write-tolerant JSONL journal;
* :mod:`repro.fleet.executor` — inline reference executor and the
  process pool (timeouts, kills, retries);
* :mod:`repro.fleet.runner` — drive a sweep end to end, with
  ``repro.obs`` telemetry and FLT5xx diagnostics;
* :mod:`repro.fleet.sweeps` — the named sweep catalog;
* :mod:`repro.fleet.cli` — ``python -m repro.fleet``.
"""

from repro.fleet.checkpoint import Checkpoint, CheckpointMismatch
from repro.fleet.executor import (
    InlineExecutor,
    ProcessExecutor,
    ShardOutcome,
)
from repro.fleet.jobs import get_job, job_names, register
from repro.fleet.report import FleetIssue
from repro.fleet.runner import FleetResult, FleetTelemetry, run_sweep
from repro.fleet.spec import (
    Shard,
    SweepSpec,
    make_shards,
    shard_rng_for,
    shard_stream,
)
from repro.fleet.sweeps import SWEEP_NAMES, build_sweep

__all__ = [
    "Checkpoint",
    "CheckpointMismatch",
    "FleetIssue",
    "FleetResult",
    "FleetTelemetry",
    "InlineExecutor",
    "ProcessExecutor",
    "SWEEP_NAMES",
    "Shard",
    "ShardOutcome",
    "SweepSpec",
    "build_sweep",
    "get_job",
    "job_names",
    "make_shards",
    "register",
    "run_sweep",
    "shard_rng_for",
    "shard_stream",
]
