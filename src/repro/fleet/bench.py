"""The BENCH_fleet baseline: speedup, overhead and determinism.

Three load shapes measure the executor from different angles:

* **blocking** (the ``sleep`` job) — pure wall-clock waiting, so the
  ideal speedup at ``jobs`` workers is ``jobs`` regardless of core
  count; this is the number the >= 2x acceptance gate reads, since a
  single-core CI box cannot show CPU-bound speedup.
* **cpu_bound** (the ``burn`` job) — real compute; its speedup is
  recorded for context but bounded by the host's cores.
* **overhead** (the ``noop`` job) — per-shard cost of the inline path
  versus a worker process round trip (fork + pipe + join).

A final determinism probe asserts the headline contract: the demo
sweep aggregates byte-identically at 1 worker and ``jobs`` workers.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.fleet import wallclock
from repro.fleet.runner import run_sweep
from repro.fleet.spec import SweepSpec, make_shards
from repro.fleet.sweeps import demo_sweep


def _timed(spec: SweepSpec, jobs: int) -> Dict[str, Any]:
    started = wallclock.perf_counter()
    result = run_sweep(spec, jobs=jobs)
    elapsed = wallclock.perf_counter() - started
    return {
        "jobs": jobs,
        "seconds": round(elapsed, 6),
        "complete": result.complete,
        "issues": len(result.issues),
    }


def _load_sweep(sweep_id: str, job: str, seed: int, shards: int,
                params: Dict[str, Any]) -> SweepSpec:
    return SweepSpec(
        sweep_id=sweep_id, job=job, seed=seed,
        shards=make_shards([dict(params) for __ in range(shards)]),
        retries=0,
    )


def collect_baseline(seed: int = 1998, jobs: int = 4,
                     shards: int = 8,
                     sleep_seconds: float = 0.1,
                     burn_iterations: int = 150_000,
                     overhead_shards: int = 12) -> Dict[str, Any]:
    """Collect the full BENCH_fleet payload (JSON-safe)."""
    payload: Dict[str, Any] = {
        "host": {
            "cpu_count": os.cpu_count(),
            "jobs": jobs,
            "shards": shards,
        },
    }

    blocking = _load_sweep("bench-blocking", "sleep", seed, shards,
                           {"seconds": sleep_seconds})
    serial = _timed(blocking, 1)
    parallel = _timed(blocking, jobs)
    payload["blocking"] = {
        "sleep_seconds": sleep_seconds,
        "serial": serial,
        "parallel": parallel,
        "speedup": round(serial["seconds"]
                         / max(parallel["seconds"], 1e-9), 3),
    }

    cpu = _load_sweep("bench-cpu", "burn", seed, shards,
                      {"iterations": burn_iterations})
    serial = _timed(cpu, 1)
    parallel = _timed(cpu, jobs)
    payload["cpu_bound"] = {
        "iterations": burn_iterations,
        "serial": serial,
        "parallel": parallel,
        "speedup": round(serial["seconds"]
                         / max(parallel["seconds"], 1e-9), 3),
    }

    noop = _load_sweep("bench-noop", "noop", seed, overhead_shards,
                       {})
    inline = _timed(noop, 1)
    pooled = _timed(noop, 2)
    payload["overhead"] = {
        "shards": overhead_shards,
        "inline_per_shard": round(
            inline["seconds"] / overhead_shards, 6),
        "process_per_shard": round(
            pooled["seconds"] / overhead_shards, 6),
    }

    demo = demo_sweep(seed=seed)
    payload["determinism"] = {
        "sweep": demo.sweep_id,
        "identical": (run_sweep(demo, jobs=1).aggregate_json()
                      == run_sweep(demo, jobs=jobs).aggregate_json()),
    }
    return payload
