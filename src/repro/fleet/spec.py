"""Sweep specifications and the deterministic sharding contract.

A sweep is a named grid of independent cells; each cell becomes one
:class:`Shard` — an index plus a JSON-safe parameter mapping.  Two
properties make shards relocatable across processes and runs:

* **Seed derivation.**  A shard's RNG is
  ``rng.derived_stream(f"fleet/<sweep-id>/shard-<index>", seed)`` —
  keyed on the (sweep id, shard index) pair only, never on execution
  order, worker identity or wall time.  Serial and parallel runs of
  the same spec therefore aggregate byte-identically.
* **Spec digest.**  The digest hashes the sweep id, job name, seed
  and every shard's params.  Checkpoint files record it, so a resume
  against a *different* spec is refused instead of silently merging
  incompatible rows.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.sim.rng import derived_stream


def to_jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays and tuples to plain JSON types.

    Shard params and payloads must survive a JSON round trip without
    changing, since the checkpoint is JSONL and aggregation compares
    serialized bytes.

    Raises:
        TypeError: for values with no JSON-safe representation.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item)
                for key, item in value.items()}
    raise TypeError(
        f"value of type {type(value).__name__} is not JSON-safe: "
        f"{value!r}"
    )


@dataclass(frozen=True)
class Shard:
    """One schedulable cell of a sweep."""

    index: int
    params: Mapping[str, Any]

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"shard index must be >= 0: {self.index}")
        # Freeze a JSON-safe copy so later mutation of the caller's
        # dict cannot desynchronise digest and execution.
        object.__setattr__(self, "params",
                           to_jsonable(dict(self.params)))


@dataclass(frozen=True)
class SweepSpec:
    """A shardable sweep: id, job binding, seed and cells.

    Attributes:
        sweep_id: stable name; keys checkpoint files and shard RNGs.
        job: registered job name (see :mod:`repro.fleet.jobs`).
        seed: master seed every shard stream derives from.
        shards: the cells, indexed ``0..len-1`` in aggregation order.
        timeout: per-attempt wall-clock budget in seconds (enforced
            by the process executor; ``None`` disables).
        retries: re-attempts after a failed first try (total attempts
            = ``retries + 1``).
        backoff: base re-dispatch delay in seconds; attempt ``k``
            waits ``backoff * 2**k`` before re-queueing.
    """

    sweep_id: str
    job: str
    seed: int
    shards: Tuple[Shard, ...]
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if not self.sweep_id:
            raise ValueError("sweep_id must be non-empty")
        if "/" in self.sweep_id:
            raise ValueError(
                f"sweep_id may not contain '/': {self.sweep_id!r}"
            )
        if not self.shards:
            raise ValueError(f"sweep {self.sweep_id!r} has no shards")
        indices = [shard.index for shard in self.shards]
        if indices != list(range(len(self.shards))):
            raise ValueError(
                f"shard indices must be 0..{len(self.shards) - 1} in "
                f"order, got {indices}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0: {self.backoff}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0: {self.timeout}")

    def digest(self) -> str:
        """A stable identity for (id, job, seed, shard params)."""
        document = {
            "sweep_id": self.sweep_id,
            "job": self.job,
            "seed": self.seed,
            "shards": [dict(shard.params) for shard in self.shards],
        }
        blob = json.dumps(document, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]


def shard_stream(sweep_id: str, shard_index: int,
                 seed: int) -> np.random.Generator:
    """The shard's RNG: ``derived_stream`` keyed on (sweep, index).

    This is the whole seed-derivation contract — no worker identity,
    no completion order, no clock — so any executor reproduces the
    same stream for the same shard.
    """
    return derived_stream(f"fleet/{sweep_id}/shard-{shard_index}",
                          seed=seed)


def make_shards(param_grid: Iterable[Mapping[str, Any]]
                ) -> Tuple[Shard, ...]:
    """Number a parameter grid into shards, in grid order."""
    return tuple(Shard(index, dict(params))
                 for index, params in enumerate(param_grid))


def shard_rng_for(spec: SweepSpec, index: int) -> np.random.Generator:
    """Convenience: the RNG for ``spec.shards[index]``."""
    if not 0 <= index < len(spec.shards):
        raise IndexError(
            f"shard {index} out of range for sweep "
            f"{spec.sweep_id!r} ({len(spec.shards)} shards)"
        )
    return shard_stream(spec.sweep_id, index, spec.seed)


def describe(spec: SweepSpec) -> Dict[str, Any]:
    """A JSON-safe summary of a spec (reports, ``--format json``)."""
    return {
        "sweep": spec.sweep_id,
        "job": spec.job,
        "seed": spec.seed,
        "shards": len(spec.shards),
        "timeout": spec.timeout,
        "retries": spec.retries,
        "backoff": spec.backoff,
        "digest": spec.digest(),
    }
