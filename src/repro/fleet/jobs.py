"""The job registry: named, importable shard functions.

A job is ``fn(params, rng, attempt) -> payload``:

* ``params`` — the shard's JSON-safe parameter mapping;
* ``rng`` — the shard's derived stream (see
  :func:`repro.fleet.spec.shard_stream`); deterministic in
  (sweep id, shard index, seed) alone;
* ``attempt`` — 0 for the first try, incremented per retry, so fault
  drills can fail deterministically on early attempts;
* payload — a JSON-safe mapping; it must depend only on ``params``,
  ``rng`` and ``attempt``, never on wall time or host identity.

Jobs are addressed by *name* because shard specs travel as JSON and
worker processes must rebuild the callable after ``fork``/``spawn``;
everything registered here is importable, so any start method works.

Besides the experiment cells (fig. 5, figs. 12/13 steady state, the
SAP-in-the-loop stack) the registry ships small drill jobs — sleep,
burn, flaky, hang, kill-self — used by the fault-injection tests and
the BENCH_fleet baseline.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable, Dict, Tuple

import numpy as np

from repro.experiments.allocation_run import fig5_cell_job
from repro.experiments.sap_in_the_loop import sap_loop_cell_job
from repro.experiments.steady_state import steady_cell_job
from repro.scenario.fuzz import fuzz_cell

JobFn = Callable[[Dict[str, Any], np.random.Generator, int],
                 Dict[str, Any]]

#: name -> callable; write-once per name (idempotent re-registration
#: of the same function is allowed for re-imports).
_REGISTRY: Dict[str, JobFn] = {}


def register(name: str) -> Callable[[JobFn], JobFn]:
    """Decorator: bind ``fn`` to ``name`` in the registry."""
    def wrap(fn: JobFn) -> JobFn:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(
                f"job {name!r} already registered to "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        _REGISTRY[name] = fn
        return fn
    return wrap


def get_job(name: str) -> JobFn:
    """The job registered under ``name``.

    Raises:
        ValueError: for an unknown job name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown job {name!r}; registered: "
            f"{', '.join(job_names())}"
        ) from None


def job_names() -> Tuple[str, ...]:
    """All registered job names, sorted."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------
# Experiment cells (defined next to the experiments they shard).
# ---------------------------------------------------------------------
register("fig5-cell")(fig5_cell_job)
register("steady-cell")(steady_cell_job)
register("saploop-cell")(sap_loop_cell_job)
register("scenario-fuzz-cell")(fuzz_cell)


# ---------------------------------------------------------------------
# Drill jobs: benchmark load shapes and deterministic fault injectors.
# ---------------------------------------------------------------------
@register("demo-pi")
def demo_pi(params: Dict[str, Any], rng: np.random.Generator,
            attempt: int) -> Dict[str, Any]:
    """Monte-Carlo pi from the shard stream — the seed-contract demo.

    Optional ``sleep`` seconds simulate a blocking stage first (used
    by the interrupt/resume drills to guarantee mid-sweep kills land
    mid-sweep).
    """
    del attempt
    sleep_seconds = float(params.get("sleep", 0.0))
    if sleep_seconds > 0.0:
        time.sleep(sleep_seconds)  # simlint: disable=job-reads-wallclock (interrupt-drill stall; payload never reads the clock)
    samples = int(params.get("samples", 50_000))
    points = rng.random((samples, 2))
    inside = int(np.count_nonzero((points ** 2).sum(axis=1) <= 1.0))
    return {"samples": samples, "inside": inside,
            "pi_estimate": round(4.0 * inside / samples, 6)}


@register("noop")
def noop(params: Dict[str, Any], rng: np.random.Generator,
         attempt: int) -> Dict[str, Any]:
    """Empty job: measures pure per-shard dispatch overhead."""
    del params, rng, attempt
    return {}


@register("sleep")
def sleep_job(params: Dict[str, Any], rng: np.random.Generator,
              attempt: int) -> Dict[str, Any]:
    """Block for ``seconds`` — the I/O-bound benchmark load shape."""
    del rng, attempt
    seconds = float(params.get("seconds", 0.05))
    time.sleep(seconds)  # simlint: disable=job-reads-wallclock (sleeping IS this benchmark's load shape)
    return {"slept": seconds}


@register("burn")
def burn(params: Dict[str, Any], rng: np.random.Generator,
         attempt: int) -> Dict[str, Any]:
    """CPU-bound integer mill — the compute benchmark load shape."""
    del rng, attempt
    iterations = int(params.get("iterations", 200_000))
    acc = int(params.get("init", 0))
    for step in range(iterations):
        acc = (acc * 1_000_003 + step) % 2_147_483_647
    return {"iterations": iterations, "checksum": acc}


@register("flaky")
def flaky(params: Dict[str, Any], rng: np.random.Generator,
          attempt: int) -> Dict[str, Any]:
    """Raise on attempts ``< fail_attempts``, then succeed."""
    del rng
    fail_attempts = int(params.get("fail_attempts", 1))
    if attempt < fail_attempts:
        raise RuntimeError(
            f"injected failure on attempt {attempt} "
            f"(fails first {fail_attempts})"
        )
    return {"attempt": attempt}


@register("hang")
def hang(params: Dict[str, Any], rng: np.random.Generator,
         attempt: int) -> Dict[str, Any]:
    """Sleep past any sane deadline on attempts < ``hang_attempts``."""
    del rng
    hang_attempts = int(params.get("hang_attempts", 1_000_000))
    if attempt < hang_attempts:
        time.sleep(float(params.get("seconds", 3600.0)))  # simlint: disable=job-reads-wallclock (deadline-drill: the hang is the point)
    return {"attempt": attempt}


@register("kill-self")
def kill_self(params: Dict[str, Any], rng: np.random.Generator,
              attempt: int) -> Dict[str, Any]:
    """SIGKILL the worker on attempts < ``fail_attempts``.

    The hardest failure mode: no exception, no message, just a dead
    process the parent must detect from the exit code.
    """
    del rng
    fail_attempts = int(params.get("fail_attempts", 1_000_000))
    if attempt < fail_attempts:
        os.kill(os.getpid(), signal.SIGKILL)  # simlint: disable=job-does-io (crash-drill: SIGKILLing ourselves is the test fixture)
    return {"attempt": attempt}
