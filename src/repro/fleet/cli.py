"""``python -m repro.fleet`` — execute sharded sweeps in parallel.

Formats:

* ``text`` (default) — per-sweep execution summary plus FLT5xx issues;
* ``json`` — full execution reports (spec, aggregate rows, metrics
  snapshot, findings);
* ``github`` — FLT5xx issues as workflow annotations, so CI surfaces
  shard failures on the run page.

Exit status 0 when every sweep completed with no FLT5xx issue, 1 when
any issue was recorded, 2 on usage errors — the contract shared with
``repro.lint``, ``repro.sanitize``, ``repro.modelcheck`` and
``repro.obs``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.fleet.runner import FleetResult, run_sweep
from repro.fleet.sweeps import (
    SWEEP_DESCRIPTIONS,
    SWEEP_NAMES,
    _BUILDERS,
    build_sweep,
)
from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)
from repro.lint.report import render_github as lint_render_github
from repro.obs.metrics import MetricsRegistry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.fleet",
        description="parallel sweep execution: shard experiment "
                    "grids across worker processes with checkpoint/"
                    "resume and deterministic seeding",
    )
    parser.add_argument(
        "sweeps", nargs="*", default=[],
        help=f"sweeps to run: {', '.join(SWEEP_NAMES)}, or 'all' "
             f"(default: demo)",
    )
    parser.add_argument(
        "--sweep", action="append", default=[], metavar="NAME",
        help="sweep to run (repeatable; merged with positionals)",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = inline, the "
                             "serial reference path)")
    parser.add_argument("--seed", type=int, default=1998,
                        help="master sweep seed")
    add_report_arguments(parser)
    parser.add_argument("--checkpoint", metavar="DIR",
                        help="journal directory; each sweep writes "
                             "<DIR>/<sweep>.jsonl")
    parser.add_argument("--resume", action="store_true",
                        help="keep completed shards from existing "
                             "journals instead of resetting them")
    parser.add_argument("--timeout", type=float, metavar="SECONDS",
                        help="per-attempt wall-clock budget "
                             "(process executor only)")
    parser.add_argument("--retries", type=int, metavar="N",
                        help="re-attempts after a failed first try")
    parser.add_argument("--backoff", type=float, metavar="SECONDS",
                        help="base retry delay (doubles per attempt)")
    parser.add_argument("--nodes", type=int, metavar="N",
                        help="topology size for experiment sweeps")
    parser.add_argument("--trials", type=int, metavar="N",
                        help="trials per cell for experiment sweeps")
    parser.add_argument("--start-method",
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method override")
    parser.add_argument("--bench", action="store_true",
                        help="collect the BENCH_fleet baseline "
                             "(speedup + per-shard overhead) instead "
                             "of sweep reports")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the report to this file")
    parser.add_argument("--list-sweeps", action="store_true",
                        help="print the sweep catalog and exit")
    return parser


def list_sweeps() -> str:
    lines = []
    for name in SWEEP_NAMES:
        lines.append(f"{name:<8s} {SWEEP_DESCRIPTIONS[name]}")
    return "\n".join(lines)


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")


def _overrides_for(name: str,
                   args: argparse.Namespace) -> Dict[str, Any]:
    """CLI overrides the named sweep's builder actually accepts."""
    accepted = set(
        inspect.signature(_BUILDERS[name]).parameters
    )
    overrides: Dict[str, Any] = {}
    if args.nodes is not None and "nodes" in accepted:
        overrides["nodes"] = args.nodes
    if args.trials is not None and "trials" in accepted:
        overrides["trials"] = args.trials
    # SweepSpec-level knobs flow through every builder's **common.
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    if args.retries is not None:
        overrides["retries"] = args.retries
    if args.backoff is not None:
        overrides["backoff"] = args.backoff
    return overrides


def _render_text(results: List[FleetResult]) -> str:
    lines: List[str] = []
    for result in results:
        lines.append(result.render_text())
    total = sum(len(result.issues) for result in results)
    if total == 0:
        lines.append(f"fleet: {len(results)} sweep(s) clean")
    else:
        lines.append(f"fleet: {total} issue(s) across "
                     f"{len(results)} sweep(s)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN
    if args.list_sweeps:
        print(list_sweeps())
        return EXIT_CLEAN
    if args.bench:
        from repro.fleet.bench import collect_baseline

        jobs = args.jobs if args.jobs > 1 else 4
        payload = collect_baseline(seed=args.seed, jobs=jobs)
        _emit(json.dumps(payload, indent=2, sort_keys=True), args.out)
        return EXIT_CLEAN

    requested = list(args.sweeps) + list(args.sweep)
    if not requested:
        requested = ["demo"]
    names: List[str] = []
    for name in requested:
        if name == "all":
            names.extend(SWEEP_NAMES)
        else:
            names.append(name)

    registry = MetricsRegistry()
    results: List[FleetResult] = []
    for name in names:
        try:
            overrides = (_overrides_for(name, args)
                         if name in _BUILDERS else {})
            spec = build_sweep(name, seed=args.seed, **overrides)
            path = None
            if args.checkpoint:
                os.makedirs(args.checkpoint, exist_ok=True)
                path = os.path.join(args.checkpoint,
                                    f"{spec.sweep_id}.jsonl")
            results.append(run_sweep(
                spec, jobs=args.jobs, checkpoint=path,
                resume=args.resume, registry=registry,
                start_method=args.start_method,
            ))
        except ValueError as exc:
            print(f"repro.fleet: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if args.format == "json":
        findings = [finding.to_dict()
                    for result in results
                    for finding in result.findings()]
        document = {
            "count": len(findings),
            "findings": findings,
            "reports": {result.spec.sweep_id: result.report()
                        for result in results},
        }
        _emit(json.dumps(document, indent=2, sort_keys=True), args.out)
    elif args.format == "github":
        findings = [finding
                    for result in results
                    for finding in result.findings()]
        output = lint_render_github(findings)
        if output:
            _emit(output, args.out)
    else:
        _emit(_render_text(results), args.out)
    clean = all(not result.issues for result in results)
    return EXIT_CLEAN if clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
