"""Fleet execution diagnostics (FLT5xx) and their rendering.

Mirrors the ``repro.obs`` issue model: a :class:`FleetIssue` is a
runtime diagnostic about *sweep execution* — a shard that exhausted
its retries, evidence of a nondeterministic job, a repaired torn
checkpoint — not a finding about the protocol under test.  Issues
convert to the linter's :class:`~repro.lint.engine.Finding` model so
``--format json`` and ``--format github`` reuse the shared renderers
(and CI annotates shard failures exactly like lint findings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.lint.engine import Finding
from repro.lint.registry import FLEET_RUNTIME_CODES


@dataclass(frozen=True)
class FleetIssue:
    """One FLT5xx diagnostic raised while executing a sweep."""

    code: str
    message: str
    shard: int = -1  # -1: about the sweep/checkpoint as a whole

    def __post_init__(self) -> None:
        if self.code not in FLEET_RUNTIME_CODES:
            raise ValueError(
                f"unknown fleet code {self.code!r}; known: "
                f"{sorted(FLEET_RUNTIME_CODES)}"
            )

    @property
    def rule(self) -> str:
        return FLEET_RUNTIME_CODES[self.code]

    def format(self) -> str:
        where = f"shard {self.shard}: " if self.shard >= 0 else ""
        return f"{self.code} [{self.rule}] {where}{self.message}"

    def to_finding(self, path: str) -> Finding:
        """Adapt to the linter's model for the shared renderers.

        ``path`` is a pseudo-path naming the sweep (``<fleet:demo>``);
        the line number carries the shard index where one applies.
        """
        return Finding(
            path=path,
            line=max(self.shard, 0) + 1,
            col=0,
            code=self.code,
            rule=self.rule,
            message=self.message if self.shard < 0
            else f"shard {self.shard}: {self.message}",
        )


def issues_to_findings(issues: Iterable[FleetIssue],
                       sweep_id: str) -> List[Finding]:
    """All issues as findings under the sweep's pseudo-path."""
    path = f"<fleet:{sweep_id}>"
    return [issue.to_finding(path) for issue in issues]


def render_issues_text(issues: Iterable[FleetIssue],
                       sweep_id: str = "") -> str:
    """Human-readable issue list (the ``--format text`` tail)."""
    rows = list(issues)
    if not rows:
        return "fleet: no execution issues"
    prefix = f"fleet[{sweep_id}]: " if sweep_id else "fleet: "
    lines = [f"{prefix}{len(rows)} execution issue(s)"]
    for issue in rows:
        lines.append(f"  {issue.format()}")
    return "\n".join(lines)
