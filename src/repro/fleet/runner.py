"""Drive one sweep end to end: checkpoint, execute, merge, report.

:func:`run_sweep` is the subsystem's front door.  It loads (or
resets) the sweep's checkpoint, figures out which shards still need
to run, executes them through the inline path (``jobs == 1``) or the
process pool (``jobs >= 2``), journals every attempt, and folds the
completed payloads into a deterministic aggregate via
:func:`repro.experiments.reporting.merge_sharded_rows`.

Execution telemetry flows through a ``repro.obs``
:class:`~repro.obs.metrics.MetricsRegistry` (shards completed /
retried / failed, attempt durations, queue depth and worker-busy
high-water marks, utilization and effective-speedup gauges), and
execution anomalies surface as FLT5xx :class:`FleetIssue` rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.reporting import merge_sharded_rows
from repro.fleet import wallclock
from repro.fleet.checkpoint import Checkpoint
from repro.fleet.executor import (
    InlineExecutor,
    ProcessExecutor,
    ShardOutcome,
)
from repro.fleet.report import (
    FleetIssue,
    issues_to_findings,
    render_issues_text,
)
from repro.fleet.spec import SweepSpec, describe
from repro.lint.engine import Finding
from repro.obs.metrics import (
    MetricsRegistry,
    SIM_SECONDS_BUCKETS,
)


class FleetTelemetry:
    """The sweep-execution metric family on an obs registry.

    Follows the ``repro.obs`` probe contract: the per-attempt sink
    path and the executor's queue/busy gauge callbacks go through the
    registry's shared slot table with handles resolved here, once —
    one array operation per observation instead of a method call, so
    fleet telemetry stays always-on at any shard rate.
    """

    def __init__(self, registry: MetricsRegistry, sweep_id: str,
                 jobs: int) -> None:
        labels = {"sweep": sweep_id}
        self.completed = registry.counter(
            "fleet_shards_completed_total", labels,
            help_text="Shards that produced an ok row this run.")
        self.retried = registry.counter(
            "fleet_shards_retried_total", labels,
            help_text="Failed attempts that were re-queued.")
        self.failed = registry.counter(
            "fleet_shards_failed_total", labels,
            help_text="Shards that exhausted their retry budget.")
        self.resumed = registry.counter(
            "fleet_shards_resumed_total", labels,
            help_text="Shards satisfied from the checkpoint, not run.")
        self.truncated = registry.counter(
            "fleet_checkpoint_truncated_total", labels,
            help_text="Torn checkpoint tails repaired on load.")
        self.attempts: Dict[str, Any] = {}
        for status in ("ok", "failed"):
            attempt_labels = dict(labels)
            attempt_labels["status"] = status
            self.attempts[status] = registry.counter(
                "fleet_attempts_total", attempt_labels,
                help_text="Shard attempts by outcome status.")
        self.queue_depth = registry.gauge(
            "fleet_queue_depth", labels,
            help_text="High-water mark of shards awaiting a worker.")
        self.workers_busy = registry.gauge(
            "fleet_workers_busy", labels,
            help_text="High-water mark of concurrently busy workers.")
        self.utilization = registry.gauge(
            "fleet_worker_utilization", labels,
            help_text="busy-seconds / (elapsed * jobs), 0..1.")
        self.speedup = registry.gauge(
            "fleet_speedup", labels,
            help_text="busy-seconds / elapsed: effective parallelism.")
        self.jobs_gauge = registry.gauge(
            "fleet_jobs", labels,
            help_text="Worker slots this run was given.")
        self.jobs_gauge.set(jobs)
        self.shard_seconds = registry.histogram(
            "fleet_shard_seconds", SIM_SECONDS_BUCKETS, labels,
            help_text="Wall-clock duration of shard attempts.",
            unit="seconds")
        # Hot-side contract: integer handles into the registry's
        # shared slot table, resolved once per sweep.
        self.slots = registry.slots
        self.h_completed = self.completed.handle
        self.h_retried = self.retried.handle
        self.h_failed = self.failed.handle
        self.h_attempts = {status: counter.handle
                           for status, counter in self.attempts.items()}
        self.h_queue = self.queue_depth.handle
        self.h_busy = self.workers_busy.handle

    def observe_gauge(self, which: str, value: float) -> None:
        """Executor hook: scheduling gauges as high-water marks."""
        slots = self.slots
        if which == "queue":
            if value > slots[self.h_queue]:
                slots[self.h_queue] = value
        elif which == "busy":
            if value > slots[self.h_busy]:
                slots[self.h_busy] = value


@dataclass
class FleetResult:
    """Everything one :func:`run_sweep` call produced."""

    spec: SweepSpec
    jobs: int
    payloads: Dict[int, Dict[str, Any]]
    failures: List[Dict[str, Any]] = field(default_factory=list)
    issues: List[FleetIssue] = field(default_factory=list)
    elapsed: float = 0.0
    resumed: int = 0
    torn_bytes: int = 0
    registry: Optional[MetricsRegistry] = None

    @property
    def complete(self) -> bool:
        return len(self.payloads) == len(self.spec.shards)

    def aggregate(self) -> Dict[str, Any]:
        """The sweep's deterministic merged result.

        Rows are the per-shard payloads restored to shard order via
        the stable merge; identical for any worker count, resume
        history or completion order.
        """
        rows = merge_sharded_rows(sorted(self.payloads.items()))
        return {
            "sweep": self.spec.sweep_id,
            "job": self.spec.job,
            "seed": self.spec.seed,
            "shards": len(self.spec.shards),
            "rows": rows,
        }

    def aggregate_json(self) -> str:
        """Canonical serialization; the byte-identity artifact."""
        return json.dumps(self.aggregate(), indent=2, sort_keys=True)

    def findings(self) -> List[Finding]:
        return issues_to_findings(self.issues, self.spec.sweep_id)

    def report(self) -> Dict[str, Any]:
        """JSON-safe execution report (``--format json``)."""
        payload: Dict[str, Any] = {
            "spec": describe(self.spec),
            "jobs": self.jobs,
            "complete": self.complete,
            "completed_shards": len(self.payloads),
            "resumed_shards": self.resumed,
            "failed_rows": len(self.failures),
            "torn_bytes": self.torn_bytes,
            "elapsed_seconds": round(self.elapsed, 6),
            "issues": [
                {"code": issue.code, "rule": issue.rule,
                 "shard": issue.shard, "message": issue.message}
                for issue in self.issues
            ],
            "aggregate": self.aggregate(),
        }
        if self.registry is not None:
            payload["metrics"] = self.registry.as_dict()
        return payload

    def summary(self) -> str:
        status = "complete" if self.complete else "INCOMPLETE"
        return (
            f"sweep {self.spec.sweep_id}: {status}, "
            f"{len(self.payloads)}/{len(self.spec.shards)} shards "
            f"({self.resumed} resumed), jobs={self.jobs}, "
            f"{len(self.issues)} issue(s), "
            f"{self.elapsed:.3f}s"
        )

    def render_text(self) -> str:
        lines = [self.summary()]
        lines.append(render_issues_text(self.issues,
                                        self.spec.sweep_id))
        return "\n".join(lines)


def run_sweep(spec: SweepSpec, jobs: int = 1,
              checkpoint: Optional[str] = None,
              resume: bool = False,
              registry: Optional[MetricsRegistry] = None,
              start_method: Optional[str] = None) -> FleetResult:
    """Execute ``spec``, honouring a checkpoint when given.

    Args:
        spec: the sweep to run.
        jobs: worker slots; 1 selects the inline reference executor.
        checkpoint: JSONL journal path; required for ``resume``.
        resume: keep completed shards from the journal instead of
            resetting it.
        registry: obs metrics registry to instrument (one is created
            when omitted so telemetry is always recorded).
        start_method: multiprocessing start method override.

    Raises:
        ValueError: bad ``jobs``, or ``resume`` without ``checkpoint``.
        CheckpointMismatch: the journal belongs to a different spec.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    if resume and checkpoint is None:
        raise ValueError("resume requires a checkpoint path")
    if registry is None:
        registry = MetricsRegistry()
    telemetry = FleetTelemetry(registry, spec.sweep_id, jobs)

    issues: List[FleetIssue] = []
    payloads: Dict[int, Dict[str, Any]] = {}
    failures: List[Dict[str, Any]] = []
    torn_bytes = 0
    resumed = 0

    journal = Checkpoint(checkpoint) if checkpoint else None
    try:
        if journal is not None:
            if not resume:
                journal.reset()
            loaded = journal.load(expected_digest=spec.digest())
            torn_bytes = loaded.torn_bytes
            if loaded.torn_bytes:
                telemetry.truncated.inc()
                issues.append(FleetIssue(
                    code="FLT503",
                    message=(
                        f"truncated {loaded.torn_bytes} torn trailing "
                        f"byte(s); affected shards will re-run"
                    ),
                ))
            for index in loaded.mismatched:
                issues.append(FleetIssue(
                    code="FLT502", shard=index,
                    message=(
                        "checkpoint holds conflicting ok payloads "
                        "for this shard; job output is not a pure "
                        "function of its shard stream"
                    ),
                ))
            known = {index for index in loaded.completed
                     if 0 <= index < len(spec.shards)}
            payloads.update({index: loaded.completed[index]
                             for index in sorted(known)})
            resumed = len(payloads)
            telemetry.resumed.inc(resumed)
            journal.ensure_meta(spec.sweep_id, spec.job, spec.seed,
                                spec.digest())

        pending = [shard.index for shard in spec.shards
                   if shard.index not in payloads]

        def sink(outcome: ShardOutcome) -> None:
            row = outcome.to_row()
            if journal is not None:
                journal.append(row)
            slots = telemetry.slots
            slots[telemetry.h_attempts[outcome.status]] += 1.0
            telemetry.shard_seconds.observe(outcome.duration)
            if outcome.ok:
                if outcome.index not in payloads:
                    payloads[outcome.index] = outcome.payload or {}
                    slots[telemetry.h_completed] += 1.0
                return
            failures.append(row)
            if outcome.attempt < spec.retries:
                slots[telemetry.h_retried] += 1.0
            else:
                slots[telemetry.h_failed] += 1.0
                issues.append(FleetIssue(
                    code="FLT501", shard=outcome.index,
                    message=(
                        f"failed on all {spec.retries + 1} "
                        f"attempt(s); last: [{outcome.reason}] "
                        f"{outcome.error}"
                    ),
                ))

        started = wallclock.perf_counter()
        busy_seconds = 0.0
        if pending:
            if jobs == 1:
                InlineExecutor(sink).run(spec, pending)
                busy_seconds = wallclock.perf_counter() - started
            else:
                pool = ProcessExecutor(jobs, sink,
                                       telemetry=telemetry,
                                       start_method=start_method)
                pool.run(spec, pending)
                busy_seconds = pool.busy_seconds
        elapsed = wallclock.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()

    if elapsed > 0:
        telemetry.utilization.set(
            min(1.0, busy_seconds / (elapsed * jobs)))
        telemetry.speedup.set(busy_seconds / elapsed)
    return FleetResult(
        spec=spec, jobs=jobs, payloads=payloads, failures=failures,
        issues=issues, elapsed=elapsed, resumed=resumed,
        torn_bytes=torn_bytes, registry=registry,
    )
