"""Shard executors: inline reference path and the process pool.

Both executors speak the same protocol: they take a
:class:`~repro.fleet.spec.SweepSpec` plus the set of shard indices
still pending, run each pending shard until it succeeds or exhausts
its retry budget, and hand every attempt's
:class:`ShardOutcome` to a sink callback *as it happens* — the sink
owns checkpointing and telemetry, the executor owns scheduling.

:class:`InlineExecutor` runs shards in-process, in index order.  It
is the semantic reference: ``--jobs 1`` means this path, and the
determinism tests assert the process pool aggregates byte-identically
to it.

:class:`ProcessExecutor` launches **one process per shard attempt**
(the nipype/cluster-queue shape, not a reused worker pool).  That
buys exact fault semantics: a timeout is a SIGKILL of one attempt's
process, a crashed worker poisons nothing, and there is no state
carried between attempts that could break seed determinism.  Results
travel over a one-way pipe; a worker that dies without reporting
(hard kill, segfault) is detected by EOF + exit code.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fleet import wallclock
from repro.fleet.jobs import get_job
from repro.fleet.spec import SweepSpec, shard_stream, to_jsonable

#: Structured failure reasons recorded in checkpoint rows.
REASON_EXCEPTION = "exception"
REASON_TIMEOUT = "timeout"
REASON_KILLED = "killed"

#: Environment override for the multiprocessing start method
#: (``fork``/``spawn``/``forkserver``); mainly for tests and
#: platforms where ``fork`` is unavailable.
START_METHOD_ENV = "REPRO_FLEET_START_METHOD"


@dataclass(frozen=True)
class ShardOutcome:
    """One attempt's result, success or structured failure."""

    index: int
    attempt: int
    status: str  # "ok" | "failed"
    payload: Optional[Dict[str, Any]] = None
    reason: str = ""  # REASON_* for failed attempts
    error: str = ""
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_row(self) -> Dict[str, Any]:
        """The checkpoint row for this attempt."""
        row: Dict[str, Any] = {
            "kind": "row",
            "shard": self.index,
            "attempt": self.attempt,
            "status": self.status,
            "duration": round(self.duration, 6),
        }
        if self.ok:
            row["payload"] = self.payload
        else:
            row["reason"] = self.reason
            row["error"] = self.error
        return row


OutcomeSink = Callable[[ShardOutcome], None]


def run_attempt_inline(spec: SweepSpec, index: int,
                       attempt: int) -> ShardOutcome:
    """Run one shard attempt in this process.

    The RNG is rebuilt from the seed-derivation contract on every
    attempt, so retries and re-runs see the exact same stream.
    """
    shard = spec.shards[index]
    started = wallclock.perf_counter()
    try:
        job = get_job(spec.job)
        rng = shard_stream(spec.sweep_id, index, spec.seed)
        payload = to_jsonable(job(dict(shard.params), rng, attempt))
    except BaseException as exc:  # noqa: B036 - jobs may raise anything
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return ShardOutcome(
            index=index, attempt=attempt, status="failed",
            reason=REASON_EXCEPTION,
            error=f"{type(exc).__name__}: {exc}",
            duration=wallclock.perf_counter() - started,
        )
    return ShardOutcome(
        index=index, attempt=attempt, status="ok", payload=payload,
        duration=wallclock.perf_counter() - started,
    )


class InlineExecutor:
    """Reference executor: shards in index order, in this process.

    No timeout enforcement — a single process cannot interrupt its
    own blocked job; that is the process executor's domain.
    """

    def __init__(self, sink: OutcomeSink) -> None:
        self._sink = sink

    def run(self, spec: SweepSpec, pending: List[int]) -> None:
        for index in sorted(pending):
            for attempt in range(spec.retries + 1):
                outcome = run_attempt_inline(spec, index, attempt)
                self._sink(outcome)
                if outcome.ok:
                    break


def _worker_main(conn: Any, job_name: str, sweep_id: str, seed: int,
                 index: int, params: Dict[str, Any],
                 attempt: int) -> None:
    """Child-process entry: run the job, report over the pipe."""
    try:
        job = get_job(job_name)
        rng = shard_stream(sweep_id, index, seed)
        payload = to_jsonable(job(dict(params), rng, attempt))
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: B036 - report, then die
        try:
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            conn.send(("failed", detail))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


@dataclass
class _Attempt:
    """Bookkeeping for one in-flight worker process."""

    index: int
    attempt: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]
    result: Optional[Tuple[str, Any]] = None
    fields: Dict[str, Any] = field(default_factory=dict)


class ProcessExecutor:
    """Bounded pool of one-shot worker processes with timeouts.

    Scheduling loop: keep up to ``jobs`` attempts in flight; wait on
    their pipes (bounded by the nearest deadline); harvest whatever
    finished; kill whatever blew its deadline; re-queue failures with
    exponential backoff until the retry budget runs out.
    """

    def __init__(self, jobs: int, sink: OutcomeSink,
                 telemetry: Optional[Any] = None,
                 start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self._sink = sink
        self._telemetry = telemetry
        method = start_method or os.environ.get(START_METHOD_ENV)
        if method is None:
            methods = mp.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(method)
        #: cumulative seconds workers spent busy (for utilization).
        self.busy_seconds = 0.0

    # -- launching -----------------------------------------------------
    def _launch(self, spec: SweepSpec, index: int,
                attempt: int) -> _Attempt:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(send_conn, spec.job, spec.sweep_id, spec.seed,
                  index, dict(spec.shards[index].params), attempt),
            daemon=True,
        )
        process.start()
        send_conn.close()  # child keeps its end; EOF means child died
        now = wallclock.monotonic()
        deadline = None
        if spec.timeout is not None:
            deadline = now + spec.timeout
        return _Attempt(index=index, attempt=attempt, process=process,
                        conn=recv_conn, started=now, deadline=deadline)

    # -- harvesting ----------------------------------------------------
    def _finish(self, spec: SweepSpec, flight: _Attempt,
                status: str, *, payload: Any = None, reason: str = "",
                error: str = "") -> ShardOutcome:
        duration = wallclock.monotonic() - flight.started
        self.busy_seconds += duration
        flight.conn.close()
        flight.process.join()
        return ShardOutcome(
            index=flight.index, attempt=flight.attempt, status=status,
            payload=payload, reason=reason, error=error,
            duration=duration,
        )

    def _harvest_ready(self, spec: SweepSpec,
                       flight: _Attempt) -> ShardOutcome:
        """The pipe is readable: a result, or EOF from a dead child."""
        try:
            kind, value = flight.conn.recv()
        except (EOFError, OSError):
            flight.process.join()
            exitcode = flight.process.exitcode
            return self._finish(
                spec, flight, "failed", reason=REASON_KILLED,
                error=f"worker died without reporting "
                      f"(exitcode {exitcode})",
            )
        if kind == "ok":
            return self._finish(spec, flight, "ok", payload=value)
        return self._finish(spec, flight, "failed",
                            reason=REASON_EXCEPTION, error=str(value))

    def _harvest_expired(self, spec: SweepSpec,
                         flight: _Attempt) -> ShardOutcome:
        """Deadline passed: take a late result, else kill the worker."""
        if flight.conn.poll():
            return self._harvest_ready(spec, flight)
        flight.process.kill()
        flight.process.join()
        return self._finish(
            spec, flight, "failed", reason=REASON_TIMEOUT,
            error=f"attempt exceeded timeout of {spec.timeout}s",
        )

    # -- the loop ------------------------------------------------------
    def run(self, spec: SweepSpec, pending: List[int]) -> None:
        #: (not-before time, shard index, attempt) ready to launch.
        queue: List[Tuple[float, int, int]] = [
            (0.0, index, 0) for index in sorted(pending)
        ]
        in_flight: List[_Attempt] = []
        while queue or in_flight:
            now = wallclock.monotonic()
            # Launch while a slot is free and something is dispatchable.
            queue.sort()
            while len(in_flight) < self.jobs and queue and \
                    queue[0][0] <= now:
                __, index, attempt = queue.pop(0)
                in_flight.append(self._launch(spec, index, attempt))
            self._gauge("queue", len(queue))
            self._gauge("busy", len(in_flight))
            if not in_flight:
                # All slots idle; sleep out the nearest backoff.
                self._sleep_until(queue[0][0])
                continue
            wait_timeout = self._wait_timeout(queue, in_flight, now)
            ready = mp_connection.wait(
                [flight.conn for flight in in_flight],
                timeout=wait_timeout,
            )
            ready_set = set(ready)
            now = wallclock.monotonic()
            still_flying: List[_Attempt] = []
            for flight in in_flight:
                outcome = None
                if flight.conn in ready_set:
                    outcome = self._harvest_ready(spec, flight)
                elif flight.deadline is not None and \
                        now >= flight.deadline:
                    outcome = self._harvest_expired(spec, flight)
                if outcome is None:
                    still_flying.append(flight)
                    continue
                self._sink(outcome)
                if not outcome.ok and outcome.attempt < spec.retries:
                    delay = spec.backoff * (2 ** outcome.attempt)
                    queue.append((wallclock.monotonic() + delay,
                                  outcome.index, outcome.attempt + 1))
            in_flight = still_flying

    def _wait_timeout(self, queue: List[Tuple[float, int, int]],
                      in_flight: List[_Attempt],
                      now: float) -> Optional[float]:
        """How long ``wait`` may block before a deadline/backoff acts."""
        horizons = [flight.deadline for flight in in_flight
                    if flight.deadline is not None]
        if queue and len(in_flight) < self.jobs:
            horizons.append(queue[0][0])
        if not horizons:
            return None
        return max(0.0, min(horizons) - now)

    def _sleep_until(self, when: float) -> None:
        delay = when - wallclock.monotonic()
        if delay > 0:
            time.sleep(min(delay, 0.05))

    def _gauge(self, which: str, value: int) -> None:
        if self._telemetry is not None:
            self._telemetry.observe_gauge(which, value)
