"""The fleet's only wall-clock access point.

``repro.fleet`` sits inside the simlint ``SIM_PACKAGES`` scope, so
the wall-clock rule (SIM103) applies to it: sweep *results* must
never depend on the host clock.  The execution engine, however,
legitimately needs real time for scheduling concerns — per-job
deadlines, retry backoff and the speedup/utilization metrics.

Routing every read through this module keeps the suppression surface
to two audited call sites and makes the contract greppable: job code
has no clock to read, so wall time can feed *when* a shard runs and
*how long* it took, but never *what* it returns.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """Deadline/backoff clock; never feeds shard payloads."""
    return time.monotonic()  # simlint: disable=wall-clock


def perf_counter() -> float:
    """Duration clock for speedup metrics; never feeds payloads."""
    return time.perf_counter()  # simlint: disable=wall-clock
