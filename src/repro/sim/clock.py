"""Simulated clock.

The clock is deliberately separate from the event scheduler so that
components which only need to *read* time (caches, announcers, protocol
state machines) do not also gain the ability to schedule events.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.units.types import SimTime


class SimClock:
    """A monotonically non-decreasing simulated clock.

    Time is a float in seconds.  Only the owning :class:`EventScheduler`
    should advance the clock; everything else treats it as read-only.
    """

    __slots__ = ("_now", "_monitor")

    def __init__(self, start: SimTime = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        #: Optional shadow-state observer (see :mod:`repro.sanitize`).
        #: None in normal operation, so the only cost when sanitizers
        #: are off is one attribute check per advance.
        self._monitor: Optional[Any] = None

    @property
    def now(self) -> SimTime:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: SimTime) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ValueError: if ``when`` is earlier than the current time.
        """
        if self._monitor is not None:
            self._monitor.on_clock_advance(self._now, when)
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = float(when)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
