"""Discrete-event simulation substrate.

This subpackage provides the event kernel, deterministic random-number
streams and the lossy/delayed packet network model on which the SAP
(Session Announcement Protocol) and clash-detection simulations run.
"""

from repro.sim.clock import SimClock
from repro.sim.events import EventHandle, EventScheduler
from repro.sim.network import LinkModel, NetworkModel, Packet
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer, trace_directory

__all__ = [
    "EventHandle",
    "EventScheduler",
    "LinkModel",
    "NetworkModel",
    "Packet",
    "RandomStreams",
    "SimClock",
    "TraceRecord",
    "Tracer",
    "trace_directory",
]
