"""Heap-based discrete event scheduler.

The scheduler owns a :class:`~repro.sim.clock.SimClock` and executes
callbacks in timestamp order.  Ties are broken by insertion order so runs
are fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.units.types import Duration, SimTime

Callback = Callable[[], Any]


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: SimTime, seq: int,
                 callback: Callback) -> None:
        self.when = when
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.callback = None

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not self.cancelled and self.callback is not None

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(when={self.when:.6f}, {state})"


class EventScheduler:
    """Executes callbacks in simulated-time order.

    Example:
        >>> sched = EventScheduler()
        >>> fired = []
        >>> _ = sched.schedule(1.5, lambda: fired.append(sched.now))
        >>> sched.run()
        >>> fired
        [1.5]
    """

    def __init__(self, start: SimTime = 0.0) -> None:
        self.clock = SimClock(start)
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._events_run = 0
        #: Optional shadow-state observer (see :mod:`repro.sanitize`).
        #: None in normal operation, so the only cost when sanitizers
        #: are off is one attribute check per schedule/fire.
        self._monitor: Optional[Any] = None
        #: Optional profiling probe (see :mod:`repro.obs`).  Same
        #: contract: None unless an ObsContext is attached, one
        #: attribute check per schedule/fire when off.
        self._obs: Optional[Any] = None

    @property
    def now(self) -> SimTime:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_run

    @property
    def events_scheduled(self) -> int:
        """Total events ever pushed onto the heap (including fired,
        cancelled and still-pending ones).  The observability layer
        reads this native total instead of counting schedules itself.
        """
        return self._seq

    @property
    def pending_count(self) -> int:
        """Number of events still queued (including cancelled stubs)."""
        return sum(1 for __, __, h in self._heap if not h.cancelled)

    def pending_handles(self) -> List[EventHandle]:
        """Live (pending) handles in firing order ``(when, seq)``.

        The model checker uses this to enumerate the timer events it
        may fire next; tombstoned (cancelled) heap entries are skipped.
        """
        live = [handle for __, __, handle in self._heap if handle.pending]
        live.sort(key=lambda handle: (handle.when, handle.seq))
        return live

    def schedule(self, delay: Duration, callback: Callback) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            if self._monitor is not None:
                self._monitor.on_past_schedule(self.now + delay, self.now)
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, when: SimTime, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self.now:
            if self._monitor is not None:
                self._monitor.on_past_schedule(when, self.now)
            raise ValueError(
                f"cannot schedule at {when} before current time {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(when, seq, callback)
        heapq.heappush(self._heap, (when, seq, handle))
        # No observability hook here: the probe syncs its scheduled
        # counter from the native ``events_scheduled`` total at finish
        # and samples heap depth on the 1-in-N step path, so schedules
        # cost nothing extra while observed.
        return handle

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remain."""
        while self._heap:
            when, __, handle = heapq.heappop(self._heap)
            if handle.cancelled or handle.callback is None:
                continue
            self.clock.advance_to(when)
            if self._monitor is not None:
                self._monitor.on_fire(handle)
            callback, handle.callback = handle.callback, None
            obs = self._obs
            if obs is None:
                callback()
            else:
                # Per-event cost is one countdown decrement: the probe
                # advances its event counter in whole sampling gaps
                # and wall-clock timing runs only 1-in-N.
                obs.countdown -= 1
                if obs.countdown > 0:
                    callback()
                else:
                    # len + 1 counts the event just popped, so the
                    # probe's heap-depth high-water mark is sampled at
                    # the same 1-in-N rate as callback timing.
                    obs.observe_event(callback, len(self._heap) + 1)
            self._events_run += 1
            return True
        return False

    def run(self, until: Optional[SimTime] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until``, or ``max_events``.

        Args:
            until: stop once the next event would fire after this time;
                the clock is then advanced exactly to ``until``.
            max_events: safety valve on the number of callbacks executed.
        """
        if self._monitor is not None:
            self._monitor.on_run_enter(self.now)
        try:
            executed = 0
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                when = self._next_pending_time()
                if when is None:
                    break
                if until is not None and when > until:
                    self.clock.advance_to(until)
                    return
                self.step()
                executed += 1
            if until is not None and until > self.now:
                self.clock.advance_to(until)
        finally:
            if self._monitor is not None:
                self._monitor.on_run_exit()

    def _next_pending_time(self) -> Optional[SimTime]:
        while self._heap:
            when, __, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return when
        return None

    def __repr__(self) -> str:
        return (
            f"EventScheduler(now={self.now:.6f}, "
            f"pending={self.pending_count}, run={self._events_run})"
        )
