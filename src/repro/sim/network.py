"""Lossy, delayed multicast packet delivery.

The network model deliberately sits *above* routing: a routing component
supplies, for each (source, ttl) pair, the set of receivers and the
one-way propagation delay to each.  The network model then applies loss
and jitter and schedules per-receiver delivery events.

This mirrors the modelling level used throughout the paper — §2.3 works
with a mean end-to-end delay and a mean end-to-end loss rate rather than
hop-by-hop behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.sim.events import EventScheduler
from repro.sim.rng import RandomStreams
from repro.units.types import Duration, SimTime, Ttl

# A routing oracle: (source, ttl) -> iterable of (receiver, delay_seconds).
ReceiverMap = Callable[[int, int], Iterable[Tuple[int, float]]]
# Per-receiver delivery callback: (receiver, packet) -> None.
DeliveryCallback = Callable[[int, "Packet"], None]


@dataclass(frozen=True)
class LinkModel:
    """Per-link propagation characteristics.

    Attributes:
        delay: one-way propagation delay in seconds.
        loss: probability that a packet crossing the link is dropped.
    """

    delay: Duration
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative link delay {self.delay!r}")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be a probability, got {self.loss!r}")


@dataclass
class Packet:
    """A multicast packet as seen by the simulator.

    Attributes:
        source: node id of the sender.
        group: multicast group address (opaque integer).
        ttl: IP TTL the packet was sent with.
        payload: application payload (e.g. a SAP message).
        sent_at: simulated send time, stamped by the network model.
    """

    source: int
    group: int
    ttl: Ttl
    payload: Any = None
    sent_at: SimTime = field(default=0.0)


class NetworkModel:
    """End-to-end multicast delivery with loss and optional jitter.

    Args:
        scheduler: the event scheduler driving the simulation.
        receiver_map: routing oracle returning (receiver, delay) pairs for
            a (source, ttl) send.
        streams: random streams used for loss and jitter draws.
        loss_rate: end-to-end loss probability applied independently per
            receiver (the paper's §2.3 uses a mean rate of 2%).
        jitter: if non-zero, a uniform random [0, jitter] seconds is added
            to each delivery (models queueing variation, §3).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        receiver_map: ReceiverMap,
        streams: Optional[RandomStreams] = None,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be a probability: {loss_rate}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative: {jitter}")
        self.scheduler = scheduler
        self.receiver_map = receiver_map
        self.streams = streams if streams is not None else RandomStreams()
        self.loss_rate = loss_rate
        self.jitter = jitter
        self._listeners: Dict[int, list] = {}
        #: Optional shadow-state observer (see :mod:`repro.sanitize`).
        #: None in normal operation; one attribute check per send and
        #: delivery when sanitizers are off.
        self._monitor: Optional[Any] = None
        #: Optional profiling probe (see :mod:`repro.obs`), same
        #: None-when-off contract.
        self._obs: Optional[Any] = None
        self._partition: Optional[frozenset] = None
        self._detached: set = set()
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_lost = 0

    # ------------------------------------------------------------------
    # Partition injection
    # ------------------------------------------------------------------
    def partition(self, group: Iterable[int]) -> None:
        """Split the network: ``group`` vs everyone else.

        While partitioned, packets are only delivered between nodes on
        the same side.  Models the §3 scenario where clashing sessions
        arise because "a network partition has been resolved recently".
        """
        self._partition = frozenset(int(node) for node in group)

    def heal(self) -> None:
        """Remove the partition; delivery returns to normal."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    # ------------------------------------------------------------------
    # Membership churn and loss dynamics
    # ------------------------------------------------------------------
    def detach(self, node: int) -> None:
        """Take ``node`` off the mesh (MANET-style churn).

        While detached, nothing the node sends is delivered anywhere,
        nothing is delivered *to* it (including packets already in
        flight when it detached), and its listeners stay registered
        so :meth:`attach` restores service without re-wiring.
        """
        self._detached.add(int(node))

    def attach(self, node: int) -> None:
        """Return a detached node to the mesh.  Idempotent."""
        self._detached.discard(int(node))

    def detached(self, node: int) -> bool:
        return int(node) in self._detached

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the end-to-end loss rate mid-run (loss ramps).

        Raises:
            ValueError: if ``loss_rate`` is not a probability.
        """
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be a probability: {loss_rate}"
            )
        self.loss_rate = loss_rate

    def _same_side(self, a: int, b: int) -> bool:
        if self._partition is None:
            return True
        return (a in self._partition) == (b in self._partition)

    def listen(self, node: int, callback: DeliveryCallback) -> None:
        """Register a delivery callback for ``node``.

        Several callbacks may listen at one node (multiple applications
        on one host, as with real multicast sockets); each receives
        every delivered packet.
        """
        self._listeners.setdefault(node, []).append(callback)

    def unlisten(self, node: int,
                 callback: "DeliveryCallback | None" = None) -> None:
        """Remove ``node``'s callbacks (or just ``callback``)."""
        if callback is None:
            self._listeners.pop(node, None)
            return
        callbacks = self._listeners.get(node)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)
            if not callbacks:
                del self._listeners[node]

    def send(self, packet: Packet) -> int:
        """Multicast ``packet``; returns the number of deliveries scheduled.

        The sender itself never receives its own packet (matching
        IP_MULTICAST_LOOP disabled, which is how sdr's cache is modelled:
        the announcer already knows its own sessions).
        """
        packet.sent_at = self.scheduler.now
        self.packets_sent += 1
        if self._monitor is not None:
            self._monitor.on_send(packet)
        if packet.source in self._detached:
            if self._obs is not None:
                self._obs.on_send(packet, 0)
            return 0
        loss_rng = self.streams.get("net.loss")
        jitter_rng = self.streams.get("net.jitter")
        scheduled = 0
        for receiver, delay in self.receiver_map(packet.source, packet.ttl):
            if receiver == packet.source:
                continue
            if receiver not in self._listeners:
                continue
            if receiver in self._detached:
                continue
            if not self._same_side(packet.source, receiver):
                continue
            if self.loss_rate and loss_rng.random() < self.loss_rate:
                self.packets_lost += 1
                continue
            total_delay = delay
            if self.jitter:
                total_delay += jitter_rng.uniform(0.0, self.jitter)
            self._schedule_delivery(receiver, packet, total_delay)
            scheduled += 1
        if self._obs is not None:
            self._obs.on_send(packet, scheduled)
        return scheduled

    def _schedule_delivery(self, receiver: int, packet: Packet,
                           delay: Duration) -> None:
        def deliver() -> None:
            if receiver in self._detached:
                # The receiver churned away while the packet was in
                # flight; it never arrives.
                return
            callbacks = self._listeners.get(receiver)
            if callbacks:
                self.packets_delivered += 1
                if self._monitor is not None:
                    self._monitor.on_deliver(receiver, packet)
                obs = self._obs
                if obs is not None:
                    # Per-delivery cost is one countdown decrement —
                    # totals sync from packets_delivered at finish and
                    # the sim-latency histogram samples 1-in-N.
                    obs.countdown -= 1
                    if obs.countdown <= 0:
                        obs.sample_delivery(packet)
                for callback in list(callbacks):
                    callback(receiver, packet)

        # Fire-and-forget is safe here: the closure looks the receiver's
        # listeners up at *fire* time, so an unlisten() between send and
        # delivery makes this a no-op rather than a stale callback —
        # there is nothing a stored handle would ever need to cancel.
        self.scheduler.schedule(  # simlint: disable=discarded-handle
            delay, deliver
        )

    def __repr__(self) -> str:
        return (
            f"NetworkModel(sent={self.packets_sent}, "
            f"delivered={self.packets_delivered}, lost={self.packets_lost})"
        )
