"""Glue between routing and the network model.

The :class:`~repro.sim.network.NetworkModel` wants a function mapping a
(source, ttl) send to (receiver, delay) pairs; this module builds such
functions from the scoping and shortest-path machinery.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.routing.scoping import ScopeMap
from repro.routing.spt import ShortestPathForest
from repro.topology.graph import Topology


def scoped_receiver_map(scope_map: ScopeMap,
                        delay_forest: ShortestPathForest):
    """Receiver map applying TTL scoping and delay-tree timing.

    Receivers of a (source, ttl) multicast are the nodes inside the
    TTL scope; each receives after the shortest-path propagation delay
    from the source.

    Args:
        scope_map: the topology's min-required-TTL matrix.
        delay_forest: a ShortestPathForest built with weight="delay".

    Returns:
        A callable suitable as ``NetworkModel(receiver_map=...)``.
    """

    def receivers(source: int, ttl: int) -> List[Tuple[int, float]]:
        mask = scope_map.reachable(source, ttl)
        delays = delay_forest.distances_from(source)
        nodes = np.nonzero(mask)[0]
        return [(int(node), float(delays[node])) for node in nodes
                if np.isfinite(delays[node])]

    return receivers


def build_network_stack(topology: Topology):
    """Convenience: (scope_map, delay_forest, receiver_map) for a topology."""
    scope_map = ScopeMap.from_topology(topology)
    delay_forest = ShortestPathForest(topology, weight="delay")
    return scope_map, delay_forest, scoped_receiver_map(scope_map,
                                                        delay_forest)
