"""Deterministic named random-number streams.

Every stochastic component in the simulator draws from its own named
substream derived from one master seed.  This keeps experiments
reproducible and lets components be added or removed without perturbing
the random sequences seen by unrelated components.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, deterministically-seeded RNG streams.

    Example:
        >>> streams = RandomStreams(seed=42)
        >>> a = streams.get("loss")
        >>> b = streams.get("delay")
        >>> a is streams.get("loss")
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            # Hash the name into the seed sequence so streams are stable
            # regardless of creation order; crc32 is stable across runs,
            # unlike the built-in hash() of strings.
            child = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fork(self, salt: int) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per trial)."""
        return RandomStreams(seed=self.seed * 1_000_003 + int(salt))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, open={len(self._streams)})"


def derived_stream(name: str, seed: int = 0) -> np.random.Generator:
    """A deterministic fallback Generator for components built bare.

    Stochastic components take an injected ``np.random.Generator``;
    when a caller omits it, they must still be replayable, so the
    fallback is derived from a :class:`RandomStreams` with a stable
    per-component stream name rather than from OS entropy.  Two bare
    constructions of the same component therefore produce *identical*
    sequences — deterministic by design; pass an explicit ``rng`` to
    decorrelate instances.
    """
    return RandomStreams(seed=seed).get(name)
