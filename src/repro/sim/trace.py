"""Structured simulation tracing.

A lightweight event log for debugging and for examples that want to
print protocol timelines.  Components emit typed records through a
shared :class:`Tracer`; consumers filter by category or node and
render chronologically.

The tracer is deliberately pull-free and allocation-cheap: when no
tracer is installed, emitting costs one attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.events import EventScheduler


@dataclass(frozen=True)
class TraceRecord:
    """One trace line."""

    time: float
    category: str
    node: Optional[int]
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        where = f"n{self.node}" if self.node is not None else "-"
        extras = "".join(f" {k}={v}" for k, v in sorted(
            self.data.items()
        ))
        return (f"{self.time:10.3f}s {self.category:<12s} {where:>6s}  "
                f"{self.message}{extras}")


class Tracer:
    """Collects :class:`TraceRecord` entries in time order.

    Besides the retained record list, live *consumers* can be attached
    with :meth:`attach_consumer`: each emitted record is pushed to
    every consumer whose category filter matches, in attachment order.
    This is how :mod:`repro.obs` layers span streaming on the tracer
    without a second record buffer — the tracer is the single sink.

    Args:
        scheduler: timestamps are read from this scheduler's clock.
        capacity: oldest records are dropped past this bound (None =
            unbounded).
    """

    def __init__(self, scheduler: EventScheduler,
                 capacity: Optional[int] = 100_000) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.scheduler = scheduler
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        self._consumers: List[tuple] = []
        self.dropped = 0

    def attach_consumer(self, callback,
                        categories: Optional[List[str]] = None) -> None:
        """Push future records to ``callback(record)`` as they happen.

        Args:
            callback: called with each matching :class:`TraceRecord`.
            categories: only records in these categories are pushed
                (None = every category).
        """
        filter_set = None if categories is None else frozenset(categories)
        self._consumers.append((callback, filter_set))

    def detach_consumer(self, callback) -> None:
        """Remove every attachment of ``callback``.  Idempotent."""
        self._consumers = [(cb, cats) for cb, cats in self._consumers
                           if cb is not callback]

    def emit(self, category: str, message: str,
             node: Optional[int] = None, **data: Any) -> None:
        """Record one event at the current simulated time."""
        record = TraceRecord(
            time=self.scheduler.now, category=category, node=node,
            message=message, data=data,
        )
        self._records.append(record)
        if self.capacity is not None and \
                len(self._records) > self.capacity:
            overflow = len(self._records) - self.capacity
            del self._records[:overflow]
            self.dropped += overflow
        if self._consumers:
            for callback, categories in self._consumers:
                if categories is None or category in categories:
                    callback(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self, category: Optional[str] = None,
                node: Optional[int] = None,
                since: float = 0.0) -> List[TraceRecord]:
        """Records filtered by category, node and start time."""
        out = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if node is not None and record.node != node:
                continue
            if record.time < since:
                continue
            out.append(record)
        return out

    def categories(self) -> List[str]:
        return sorted({record.category for record in self._records})

    def format_timeline(self, **filters: Any) -> str:
        """Human-readable chronological dump."""
        return "\n".join(record.format()
                         for record in self.records(**filters))

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


def trace_directory(tracer: Tracer, directory) -> None:
    """Instrument a SessionDirectory to emit trace records.

    Wraps the directory's clash-protocol callbacks and packet handler
    so announcements, defences, retreats and proxy defences show up in
    the timeline.  Idempotent wrapping is NOT attempted — instrument a
    directory once.
    """
    node = directory.node

    original_on_packet = directory._on_packet

    def traced_on_packet(receiver, packet):
        tracer.emit("rx", "announcement received", node=receiver,
                    frm=packet.source, ttl=packet.ttl)
        original_on_packet(receiver, packet)

    directory._on_packet = traced_on_packet
    directory.network.unlisten(node, original_on_packet)
    directory.network.listen(node, traced_on_packet)

    original_defend = directory.defend

    def traced_defend(own):
        tracer.emit("defend", f"defending {own.description.name!r}",
                    node=node, address=own.session.address)
        original_defend(own)

    directory.defend = traced_defend

    original_retreat = directory.retreat

    def traced_retreat(own):
        old = own.session.address
        original_retreat(own)
        tracer.emit("retreat",
                    f"moved {own.description.name!r}", node=node,
                    frm=old, to=own.session.address)

    directory.retreat = traced_retreat

    original_proxy = directory.proxy_defend

    def traced_proxy(entry):
        tracer.emit("proxy", "third-party defence", node=node,
                    origin=entry.message.origin,
                    address=entry.address_index)
        original_proxy(entry)

    directory.proxy_defend = traced_proxy
