"""The semantic-unit lattice and its algebra.

Units form a flat lattice: ``TOP`` (no information — plain numbers,
literals, values from unannotated code) above the eight concrete
units of :mod:`repro.units.types`, above ``CONFLICT``.  Mixing
through ``TOP`` is always silent — the analysis only speaks when
*both* sides carry a concrete unit and the algebra has no rule for
the pair.  That keeps the checker quiet on the vast majority of
un-annotated code while still catching every annotated mix-up.

The additive algebra encodes the paper's geometry:

* ``Addr`` is an affine point: ``Addr - Addr = SlotIndex`` (the dense
  offset within a space), ``Addr ± SlotIndex/Count = Addr`` (the
  ``base + index`` mapping).
* ``SimTime`` is likewise affine over ``Duration``.
* ``SlotIndex``, ``Ttl``, ``SeedInt`` translate by ``Count``;
  differences of like units are ``Count``.
* ``ScopeMask`` composes under bitwise operators only.

Multiplicative operators never raise unit findings (squares of
durations are legitimate in variance computations); scaling by
``Count`` preserves the unit and everything else falls to ``TOP``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.units.types import UNIT_NAMES

#: Lattice top: no unit information.
TOP = "?"
#: Lattice bottom: irreconcilable (never stored; findings fire instead).
CONFLICT = "!"

UNITS: FrozenSet[str] = frozenset(UNIT_NAMES)

#: Default value ranges implied by a unit annotation alone.
#: (lo, hi) bounds; None means unbounded on that side.
UNIT_DEFAULT_RANGE: Dict[str, Tuple[Optional[int], Optional[int]]] = {
    "Addr": (0xE0000000, 0xF0000000 - 1),
    "SlotIndex": (0, None),
    "Ttl": (1, 255),
    "ScopeMask": (0, 2 ** 32 - 1),
    "SimTime": (0, None),
    "Duration": (None, None),
    "SeedInt": (None, None),
    "Count": (0, None),
}


def is_unit(name: Optional[str]) -> bool:
    return name in UNITS


def join(a: str, b: str) -> str:
    """Least upper bound of two units (flat lattice)."""
    if a == b:
        return a
    if a == TOP or b == TOP:
        return TOP
    return TOP  # distinct concrete units join to top (flat)


#: Additive algebra: (left, op, right) -> result unit.  ``op`` is
#: "+" or "-".  Pairs listed here are legal; symmetric "+" closure is
#: applied by :func:`combine_additive`.  Everything not listed where
#: both sides are concrete is a UNIT701.
_ADDITIVE: Dict[Tuple[str, str, str], str] = {
    # affine address geometry
    ("Addr", "+", "SlotIndex"): "Addr",
    ("Addr", "-", "SlotIndex"): "Addr",
    ("Addr", "+", "Count"): "Addr",
    ("Addr", "-", "Count"): "Addr",
    ("Addr", "-", "Addr"): "SlotIndex",
    # dense index space
    ("SlotIndex", "+", "Count"): "SlotIndex",
    ("SlotIndex", "-", "Count"): "SlotIndex",
    ("SlotIndex", "+", "SlotIndex"): "SlotIndex",
    ("SlotIndex", "-", "SlotIndex"): "Count",
    # time geometry
    ("SimTime", "+", "Duration"): "SimTime",
    ("SimTime", "-", "Duration"): "SimTime",
    ("SimTime", "-", "SimTime"): "Duration",
    ("Duration", "+", "Duration"): "Duration",
    ("Duration", "-", "Duration"): "Duration",
    ("Duration", "+", "Count"): "Duration",
    ("Duration", "-", "Count"): "Duration",
    # discrete translations
    ("Ttl", "+", "Count"): "Ttl",
    ("Ttl", "-", "Count"): "Ttl",
    ("Ttl", "-", "Ttl"): "Count",
    ("SeedInt", "+", "Count"): "SeedInt",
    ("SeedInt", "-", "Count"): "SeedInt",
    ("SeedInt", "+", "SeedInt"): "SeedInt",
    ("SeedInt", "-", "SeedInt"): "SeedInt",
    ("Count", "+", "Count"): "Count",
    ("Count", "-", "Count"): "Count",
}


def combine_additive(left: str, op: str, right: str,
                     right_is_literal: bool = False) -> Tuple[str, bool]:
    """Result unit of ``left <op> right`` for ``op`` in ``+ -``.

    Returns ``(unit, ok)``; ``ok`` is False when both sides are
    concrete and the algebra has no rule (a UNIT701).

    ``right_is_literal`` marks a statically-known numeric constant on
    the right.  Constants are translations, so they preserve the left
    unit under both operators (``slot - 1`` is still a ``SlotIndex``).
    Subtracting an *unknown expression* is different: ``SimTime - x``
    is a ``SimTime`` if ``x`` is a ``Duration`` but a ``Duration`` if
    ``x`` is a ``SimTime``, so the result falls to ``TOP`` rather than
    guessing (every affine unit has the same ambiguity).
    """
    if left == TOP and right == TOP:
        return TOP, True
    if left == TOP:
        # unknown + concrete: assume the unknown side is compatible;
        # the concrete unit survives addition with a translation.
        return (right if op == "+" else TOP), True
    if right == TOP:
        if op == "+" or right_is_literal:
            return left, True
        return TOP, True
    result = _ADDITIVE.get((left, op, right))
    if result is not None:
        return result, True
    if op == "+":
        flipped = _ADDITIVE.get((right, op, left))
        if flipped is not None:
            return flipped, True
    return TOP, False


#: Comparison compatibility classes.  Two concrete units compare
#: cleanly iff they share a class; ``Count`` is a member of every
#: discrete-magnitude class (``index < space.size`` is the canonical
#: guard).
_COMPARE_CLASSES: Tuple[FrozenSet[str], ...] = (
    frozenset({"Addr"}),
    frozenset({"SlotIndex", "Count"}),
    frozenset({"Ttl", "Count"}),
    frozenset({"ScopeMask", "Count"}),
    frozenset({"SeedInt", "Count"}),
    frozenset({"SimTime"}),
    frozenset({"Duration"}),
    frozenset({"Count"}),
)


def comparable(left: str, right: str) -> bool:
    """True when comparing the two units is unit-correct."""
    if left == TOP or right == TOP or left == right:
        return True
    for cls in _COMPARE_CLASSES:
        if left in cls and right in cls:
            return True
    return False


#: Assignment/argument compatibility: actual -> acceptable declared
#: targets beyond an exact match.  ``Count`` may flow into the other
#: discrete units (a freshly computed magnitude becoming an index is
#: how every allocator builds its result); nothing flows into or out
#: of ``Addr`` silently — that is the bug class this tool exists for.
_FLOWS_INTO: Dict[str, FrozenSet[str]] = {
    "Count": frozenset({"SlotIndex", "Ttl", "SeedInt", "ScopeMask"}),
    "SlotIndex": frozenset({"Count"}),
    "Duration": frozenset(),
    "SimTime": frozenset(),
    "Addr": frozenset(),
    "Ttl": frozenset({"Count"}),
    "SeedInt": frozenset({"Count"}),
    "ScopeMask": frozenset({"Count"}),
}


def assignable(actual: str, declared: str) -> bool:
    """True when a value of unit ``actual`` may bind to ``declared``."""
    if actual == TOP or declared == TOP or actual == declared:
        return True
    return declared in _FLOWS_INTO.get(actual, frozenset())
