"""The UNIT7xx rule table.

Kept free of imports so :mod:`repro.lint.registry` can list these
codes without pulling in the abstract interpreter (the registry is
imported by every CLI, including ones that never run this pass).

Like FLOW6xx, UNIT7xx rules are *whole-program*: a finding at a line
may be justified by an annotation or a call path files away, so they
run from :mod:`repro.units.analysis`, not from the lint engine.

Two groups:

* **UNIT70x — semantic units.**  A lattice of ``Addr`` / ``SlotIndex``
  / ``Ttl`` / ``ScopeMask`` / ``SimTime`` / ``Duration`` / ``SeedInt``
  / ``Count`` is seeded from the :mod:`repro.units.types` annotations
  and propagated flow-sensitively; mixing incompatible units in
  arithmetic, comparisons, argument passing or returns is an error.
* **UNIT71x — value ranges.**  An interval domain (with widening and
  a one-level relational extension for ``space.size``-shaped bounds)
  proves subscripts, bitmap shifts and index↔address conversions stay
  inside ``0..size-1``.  Sites the domain cannot discharge are the
  advisory UNIT714 *proof obligations* — the refactor contract the
  array-backed core must keep satisfying (the soundness boundary
  mirrors FLOW615).
"""

from __future__ import annotations

from typing import Tuple

#: (code, name, advisory, description)
UNIT_RULES: Tuple[Tuple[str, str, bool, str], ...] = (
    ("UNIT701", "cross-unit-arithmetic", False,
     "an additive expression mixes incompatible semantic units "
     "(e.g. Addr + Ttl); the unit algebra has no result for it"),
    ("UNIT702", "cross-unit-comparison", False,
     "a comparison between incompatible semantic units (e.g. a Ttl "
     "against a SimTime) — one side is in the wrong unit"),
    ("UNIT703", "unit-argument-mismatch", False,
     "an argument whose inferred unit contradicts the callee "
     "parameter's annotated unit (e.g. an Addr passed where a "
     "SlotIndex is declared)"),
    ("UNIT704", "unit-return-mismatch", False,
     "a return value whose inferred unit contradicts the function's "
     "annotated return unit"),
    ("UNIT705", "addr-as-slot-index", False,
     "an absolute multicast address (Addr) used to subscript a "
     "dense per-slot container — the interprocedural form of the "
     "SIM112 address/index confusion"),
    ("UNIT711", "index-bound-escape", False,
     "a subscript whose derived interval or symbolic bound escapes "
     "0..len-1 for a container of known length"),
    ("UNIT712", "shift-bound-escape", False,
     "a bitmap shift whose amount is provably negative or escapes "
     "the bitmap's known width"),
    ("UNIT713", "conversion-bound-escape", False,
     "an index->address / address->index conversion whose argument "
     "bound escapes the address space (outside 0..size-1, or outside "
     "base..base+size-1)"),
    ("UNIT714", "unproved-bound", True,
     "a subscript, shift or conversion on an allocator/scheduler/"
     "cache path whose in-bounds proof the interval domain could not "
     "discharge; a proof obligation for the array-backed core (the "
     "soundness boundary shared with FLOW615)"),
)

#: Rule names whose findings are advisory (report-only by default).
ADVISORY_RULES = frozenset(
    name for _, name, advisory, _ in UNIT_RULES if advisory
)

UNIT_RULE_NAMES = tuple(name for _, name, _, _ in UNIT_RULES)
