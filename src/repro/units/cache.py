"""Whole-tree cache for the units analysis.

UNIT7xx findings are whole-program facts (an annotation or call edge
files away can create or destroy one), so this reuses the flow
cache's tree-digest machinery with a units-specific rule signature:
any edit anywhere is a miss, an untouched tree is a hit.
"""

from __future__ import annotations

import hashlib

from repro.flow.cache import FlowCache, tree_digest  # noqa: F401
from repro.lint.registry import CACHE_FILES
from repro.units.rules import UNIT_RULES

#: Bumped whenever the analysis or the on-disk schema changes shape.
CACHE_FORMAT = 1

DEFAULT_CACHE_FILE = CACHE_FILES["units"]


def rules_signature() -> str:
    """Identity of the UNIT rule table (and analysis version)."""
    payload = repr((CACHE_FORMAT, UNIT_RULES))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def units_cache(path: str) -> FlowCache:
    """A FlowCache keyed by the *units* rule signature."""
    return FlowCache(path, signature=rules_signature())
