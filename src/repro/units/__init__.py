"""repro.units — semantic-unit & value-range abstract interpreter.

The seventh tool on the shared rule registry: it seeds a lattice of
``Addr`` / ``SlotIndex`` / ``Ttl`` / ``ScopeMask`` / ``SimTime`` /
``Duration`` / ``SeedInt`` / ``Count`` from the
:mod:`repro.units.types` annotations, propagates it flow-sensitively
over the :mod:`repro.flow` call graph (UNIT701–705), and runs an
interval-domain value-range analysis proving subscripts, bitmap
shifts and index↔address conversions stay in ``0..size-1``
(UNIT711–714).  See ``DESIGN.md`` §13.
"""

from repro.units.types import (  # noqa: F401
    Addr,
    Count,
    Duration,
    ScopeMask,
    SeedInt,
    SimTime,
    SlotIndex,
    Ttl,
)
