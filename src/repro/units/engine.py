"""The flow-sensitive abstract interpreter behind UNIT701–714.

One pass per function ("pass A") seeds the environment from the
:mod:`repro.units.types` annotations and interprets the body over the
product of three domains:

* the flat **unit lattice** (:mod:`repro.units.lattice`);
* the **interval domain** (:mod:`repro.units.intervals`) with
  threshold widening at loop heads;
* a one-level **relational extension**: a value may carry an exact
  symbolic form (``v == sym + off``) or a symbolic upper bound
  (``v <= sym + off``), where ``sym`` is a *stable* program quantity —
  ``len(xs)`` for a tracked container or a frozen ``<obj>.size``
  attribute chain.  That is how ``for i in range(space.size)`` proves
  ``space.index_to_ip(i)`` in-bounds while ``range(space.size + 1)``
  is caught as an off-by-one.

A second pass ("pass B") re-interprets functions whose call sites
(resolved through the :mod:`repro.flow` call graph) supplied more
precise argument values — symbolic bounds rerooted from caller text to
callee parameter names, constructor-known space sizes — and reports
the interprocedural path on anything that escapes.

Finding policy (kept deliberately conservative so ``src`` is clean):

* hard findings (UNIT701–713) require *proof* — both units concrete
  with no algebra rule, or a derived bound that provably escapes;
* anything unprovable on an allocator/scheduler/cache hot path is an
  advisory UNIT714 proof obligation; off hot paths it is silent;
* ``TOP`` (unannotated) mixes silently, and subscript *lower* bounds
  are never checked (the Python negative-index idiom is legal).
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.flow.graph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    dotted,
    function_scope,
)
from repro.flow.hotpath import hot_roots
from repro.flow.interproc import CallIndex
from repro.lint.engine import Finding
from repro.units.intervals import INF, Interval, SWAP_OP
from repro.units.lattice import (
    TOP,
    UNIT_DEFAULT_RANGE,
    assignable,
    combine_additive,
    comparable,
    is_unit,
    join as unit_join,
)

Number = float

#: Method basenames treated as index->address / address->index space
#: conversions (UNIT713 checks fire on their arguments).
_INDEX_CONVERSIONS = frozenset({"index_to_ip", "index_to_address"})
_ADDR_CONVERSIONS = frozenset({"ip_to_index", "address_to_index"})

#: Space factory classmethods with statically-known (base, size).
_SPACE_FACTORIES: Dict[str, Tuple[int, int]] = {
    "sdr_dynamic": (0xE0028000, 65_536),          # 224.2.128.0/16
    "admin_local_scope": (0xEFFF0000, 65_536),    # 239.255.0.0/16
    "full_ipv4": (0xE0000000, 0x10000000),
}

#: Container methods that may *shrink* a sequence (old length-relative
#: proofs die); growth-only methods keep them valid.
_SHRINKING_METHODS = frozenset({"pop", "remove", "clear", "popleft",
                                "popitem"})
_MUTATING_METHODS = _SHRINKING_METHODS | frozenset({
    "append", "extend", "insert", "add", "appendleft", "update",
    "setdefault", "sort", "reverse", "discard",
})

_NUMERIC_DEFAULT = Interval.top()


def _default_interval(unit: str) -> Interval:
    lo, hi = UNIT_DEFAULT_RANGE.get(unit, (None, None))
    return Interval(-INF if lo is None else lo,
                    INF if hi is None else hi)


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: unit x interval x symbolic bounds."""

    unit: str = TOP
    ival: Interval = _NUMERIC_DEFAULT
    #: value == sym + off (sym is a stable quantity: len(x), y.size)
    exact: Optional[Tuple[str, int]] = None
    #: value <= sym + off
    ub: Optional[Tuple[str, int]] = None
    #: the ub is *attained* on some execution (range() stop, etc.)
    tight: bool = False
    #: sequence length (lists/tuples/arrays we saw being built)
    length: Optional["AbsVal"] = None
    #: dict-like: subscripting it is associative, never dense
    is_map: bool = False
    #: MulticastAddressSpace payload (when constructed in view)
    space_base: Optional[Interval] = None
    space_size: Optional["AbsVal"] = None
    #: known bitmap width (value built as ``(1 << w) - 1`` / ``1 << w``)
    bitwidth: Optional[int] = None

    @property
    def is_space(self) -> bool:
        return self.space_size is not None

    def with_unit(self, unit: str) -> "AbsVal":
        return replace(self, unit=unit)

    def join(self, other: "AbsVal") -> "AbsVal":
        return AbsVal(
            unit=unit_join(self.unit, other.unit),
            ival=self.ival.join(other.ival),
            exact=self.exact if self.exact == other.exact else None,
            ub=self.ub if self.ub == other.ub else None,
            tight=self.tight or other.tight,
            length=(self.length
                    if _same_opt(self.length, other.length) else None),
            is_map=self.is_map and other.is_map,
            space_base=(self.space_base
                        if self.space_base == other.space_base
                        else None),
            space_size=(self.space_size
                        if _same_opt(self.space_size, other.space_size)
                        else None),
            bitwidth=(self.bitwidth
                      if self.bitwidth == other.bitwidth else None),
        )

    def widen(self, newer: "AbsVal") -> "AbsVal":
        joined = self.join(newer)
        return replace(joined, ival=self.ival.widen(newer.ival))


def _same_opt(a: Optional[AbsVal], b: Optional[AbsVal]) -> bool:
    if a is None or b is None:
        return a is b
    return (a.unit == b.unit and a.ival == b.ival
            and a.exact == b.exact and a.ub == b.ub)


TOP_VAL = AbsVal()


def unit_val(unit: Optional[str]) -> AbsVal:
    if not is_unit(unit):
        return TOP_VAL
    assert unit is not None
    return AbsVal(unit=unit, ival=_default_interval(unit))


def const_val(value: Number) -> AbsVal:
    return AbsVal(ival=Interval.const(value))


Env = Dict[str, AbsVal]


@dataclass
class UnitsResult:
    """Raw engine output; suppressions are applied by the caller."""

    findings: List[Finding] = field(default_factory=list)
    obligations: List[Finding] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)


# ---------------------------------------------------------------------
# Annotation extraction (own pass; does not perturb flow's tables)
# ---------------------------------------------------------------------
def annotation_unit(node: Optional[ast.AST]) -> Optional[str]:
    """Unit name an annotation expression refers to, if any.

    Handles ``Ttl``, ``types.Ttl``, ``"Ttl"`` string annotations and
    one level of ``Optional[Ttl]`` wrapping.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional["):-1]
        tail = text.split(".")[-1].strip()
        return tail if is_unit(tail) else None
    if isinstance(node, ast.Subscript):
        base = dotted(node.value) or ""
        if base.split(".")[-1] == "Optional":
            return annotation_unit(node.slice)
        return None
    text = dotted(node)
    if text is None:
        return None
    tail = text.split(".")[-1]
    return tail if is_unit(tail) else None


def _param_units(func: FunctionInfo) -> Dict[str, str]:
    out: Dict[str, str] = {}
    node = func.node
    if isinstance(node, ast.Lambda):
        return out
    args = node.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        unit = annotation_unit(arg.annotation)
        if unit:
            out[arg.arg] = unit
    return out


def _return_unit(func: FunctionInfo) -> Optional[str]:
    node = func.node
    if isinstance(node, ast.Lambda):
        return None
    return annotation_unit(node.returns)


# ---------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------
class _Analyzer:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.result = UnitsResult()
        self._seen: Set[Tuple[str, int, int, str]] = set()
        self._obligation_keys: Dict[Tuple[str, int, int], int] = {}
        self.stats: Dict[str, int] = {
            "functions": 0, "checked_subscripts": 0,
            "proved_subscripts": 0, "checked_shifts": 0,
            "proved_shifts": 0, "checked_conversions": 0,
            "proved_conversions": 0, "violations": 0,
            "obligations": 0, "interprocedural": 0,
        }
        self.consts = self._fold_module_constants()
        self.param_units = {q: _param_units(f)
                            for q, f in graph.functions.items()}
        self.return_units = {q: _return_unit(f)
                             for q, f in graph.functions.items()}
        self.attr_units = self._collect_attr_units()
        self.hot = self._hot_functions()
        #: callee -> param -> caller-supplied AbsVals (pass B input),
        #: shared machinery with the alias pass.
        self.callinfo = CallIndex()
        self.sites = {
            qualname: {(s.line, s.col): s for s in sites
                       if s.kind in ("direct", "constructor")}
            for qualname, sites in graph.calls.items()
        }

    # -- program facts -------------------------------------------------
    def _fold_module_constants(self) -> Dict[str, Number]:
        consts: Dict[str, Number] = {}
        for _round in range(2):
            for module in self.graph.modules.values():
                for stmt in module.tree.body:
                    target = None
                    value = None
                    if isinstance(stmt, ast.Assign) \
                            and len(stmt.targets) == 1 \
                            and isinstance(stmt.targets[0], ast.Name):
                        target, value = stmt.targets[0].id, stmt.value
                    elif isinstance(stmt, ast.AnnAssign) \
                            and isinstance(stmt.target, ast.Name) \
                            and stmt.value is not None:
                        target, value = stmt.target.id, stmt.value
                    if target is None or value is None:
                        continue
                    folded = self._const_eval(module.name, value)
                    if folded is not None:
                        consts[f"{module.name}.{target}"] = folded
            self._const_table = consts
        return consts

    def _const_eval(self, module_name: str,
                    node: ast.AST) -> Optional[Number]:
        if isinstance(node, ast.Constant) and isinstance(
                node.value, (int, float)) and not isinstance(
                node.value, bool):
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(
                node.op, ast.USub):
            inner = self._const_eval(module_name, node.operand)
            return None if inner is None else -inner
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self.const_of(module_name, dotted(node) or "")
        if isinstance(node, ast.BinOp):
            left = self._const_eval(module_name, node.left)
            right = self._const_eval(module_name, node.right)
            if left is None or right is None:
                return None
            return _apply_binop(node.op, left, right)
        return None

    def const_of(self, module_name: str,
                 text: str) -> Optional[Number]:
        """Resolve a (possibly dotted) name to a folded constant."""
        if not text:
            return None
        table = getattr(self, "_const_table", {})
        direct = table.get(f"{module_name}.{text}")
        if direct is not None:
            return direct
        module = self.graph.modules.get(module_name)
        if module is None:
            return None
        head, _, rest = text.partition(".")
        imported = module.imports.get(head)
        if imported is None:
            return None
        qual = imported + (f".{rest}" if rest else "")
        return table.get(qual)

    def _collect_attr_units(self) -> Dict[str, Dict[str, str]]:
        """class qualname -> attribute -> unit name."""
        out: Dict[str, Dict[str, str]] = {}
        for module in self.graph.modules.values():
            self._walk_classes(module.name, module.tree.body, [], out)
        # __init__ stores of unit-annotated params / AnnAssigns.
        for cls in self.graph.classes.values():
            init = self.graph.functions.get(
                cls.methods.get("__init__", ""))
            if init is None:
                continue
            params = self.param_units.get(init.qualname, {})
            table = out.setdefault(cls.qualname, {})
            for stmt in ast.walk(init.node):
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Attribute) and isinstance(
                        stmt.target.value, ast.Name) \
                        and stmt.target.value.id == "self":
                    unit = annotation_unit(stmt.annotation)
                    if unit:
                        table.setdefault(stmt.target.attr, unit)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        value = stmt.value
                        name = None
                        if isinstance(value, ast.Name):
                            name = value.id
                        elif isinstance(value, ast.Call) and \
                                (dotted(value.func) in
                                 ("int", "float")) and value.args \
                                and isinstance(value.args[0], ast.Name):
                            name = value.args[0].id
                        if name and name in params:
                            table.setdefault(target.attr, params[name])
        return out

    def _walk_classes(self, module_name: str,
                      body: Sequence[ast.stmt], scope: List[str],
                      out: Dict[str, Dict[str, str]]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                qualname = ".".join([module_name] + scope + [stmt.name])
                table = out.setdefault(qualname, {})
                for item in stmt.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                            item.target, ast.Name):
                        unit = annotation_unit(item.annotation)
                        if unit:
                            table[item.target.id] = unit
                self._walk_classes(module_name, stmt.body,
                                   scope + [stmt.name], out)

    def _hot_functions(self) -> Set[str]:
        roots = set(hot_roots(self.graph))
        roots |= set(self.graph.fleet_jobs.values())
        roots |= {q for q in self.graph.functions
                  if q.startswith("repro.cli.cmd_")}
        return set(self.graph.reachable(sorted(roots)))

    def _attr_unit_of_class(self, class_qualname: Optional[str],
                            attr: str) -> Optional[str]:
        if class_qualname is None:
            return None
        unit = self.attr_units.get(class_qualname, {}).get(attr)
        if unit:
            return unit
        cls = self.graph.classes.get(class_qualname)
        if cls is not None:
            method = self.graph.functions.get(cls.methods.get(attr, ""))
            if method is not None and "property" in method.decorators:
                return self.return_units.get(method.qualname)
        return None

    # -- finding emission ----------------------------------------------
    def emit(self, func: FunctionInfo, node: ast.AST, code: str,
             rule: str, message: str, via: str = "") -> None:
        line = getattr(node, "lineno", func.line)
        col = getattr(node, "col_offset", 0)
        key = (func.path, line, col, code)
        if key in self._seen:
            return
        self._seen.add(key)
        self.stats["violations"] += 1
        if via:
            message = f"{message} {via}"
            self.stats["interprocedural"] += 1
        self.result.findings.append(Finding(
            path=func.path, line=line, col=col, code=code,
            rule=rule, message=message,
        ))

    def oblige(self, func: FunctionInfo, node: ast.AST,
               message: str) -> None:
        line = getattr(node, "lineno", func.line)
        col = getattr(node, "col_offset", 0)
        site = (func.path, line, col)
        if site in self._obligation_keys:
            return
        self._obligation_keys[site] = len(self.result.obligations)
        self.stats["obligations"] += 1
        self.result.obligations.append(Finding(
            path=func.path, line=line, col=col, code="UNIT714",
            rule="unproved-bound", message=message,
        ))

    def _drop_shadowed_obligations(self) -> None:
        """A hard finding at a site supersedes its obligation."""
        hard = {(f.path, f.line, f.col) for f in self.result.findings}
        kept = [o for o in self.result.obligations
                if (o.path, o.line, o.col) not in hard]
        dropped = len(self.result.obligations) - len(kept)
        self.stats["obligations"] -= dropped
        self.result.obligations = kept

    # -- driver --------------------------------------------------------
    def run(self) -> UnitsResult:
        for qualname in sorted(self.graph.functions):
            func = self.graph.functions[qualname]
            if isinstance(func.node, ast.Lambda):
                continue
            self.stats["functions"] += 1
            interp = _FuncInterp(self, func, collect=True)
            interp.run(self._seed_env(func))
        self._pass_b()
        self._drop_shadowed_obligations()
        self.result.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.code))
        self.result.obligations.sort(
            key=lambda f: (f.path, f.line, f.col, f.code))
        self.result.stats = dict(self.stats)
        return self.result

    def _seed_env(self, func: FunctionInfo) -> Env:
        env: Env = {}
        units = self.param_units.get(func.qualname, {})
        scope = function_scope(self.graph, func)
        for param in func.params:
            val = unit_val(units.get(param))
            cls = scope.var_types.get(param, "")
            if cls.split(".")[-1] == "MulticastAddressSpace":
                val = replace(val, space_size=AbsVal(
                    unit="Count", ival=Interval(1, INF)))
            # Every parameter is trivially equal to itself; carrying
            # the sym lets ``[0] * n`` lengths and ``i < n`` guards
            # meet at the subscript.
            env[param] = replace(val, exact=(param, 0))
        return env

    def _pass_b(self) -> None:
        for qualname in self.callinfo.callees():
            func = self.graph.functions.get(qualname)
            if func is None or isinstance(func.node, ast.Lambda):
                continue
            env = self._seed_env(func)

            def adjust(param: str, joined: AbsVal,
                       env: Env = env) -> Optional[AbsVal]:
                if param not in env:
                    return None
                base = env[param]
                if joined.unit == TOP and is_unit(base.unit):
                    joined = joined.with_unit(base.unit)
                return joined

            def keep(param: str, joined: AbsVal) -> bool:
                return bool(joined.exact or joined.ub
                            or not joined.ival.is_top
                            or joined.space_size is not None)

            facts, via = self.callinfo.join_params(
                qualname, lambda a, b: a.join(b),
                adjust=adjust, keep=keep)
            if not facts:
                continue
            env.update(facts)
            interp = _FuncInterp(self, func, collect=False, via=via)
            interp.run(env)


def _apply_binop(op: ast.operator, left: Number,
                 right: Number) -> Optional[Number]:
    try:
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        if isinstance(op, ast.Pow) and abs(right) < 64:
            return left ** right
        if isinstance(op, ast.LShift):
            return int(left) << int(right)
        if isinstance(op, ast.RShift):
            return int(left) >> int(right)
        if isinstance(op, ast.BitOr):
            return int(left) | int(right)
        if isinstance(op, ast.BitAnd):
            return int(left) & int(right)
        if isinstance(op, ast.BitXor):
            return int(left) ^ int(right)
    except (ArithmeticError, ValueError, TypeError):
        return None
    return None


# ---------------------------------------------------------------------
# Per-function interpretation
# ---------------------------------------------------------------------
class _FuncInterp:
    def __init__(self, analyzer: _Analyzer, func: FunctionInfo,
                 collect: bool, via: str = "") -> None:
        self.a = analyzer
        self.func = func
        self.collect = collect
        self.via = via
        self.emit_on = True
        self.scope = function_scope(analyzer.graph, func)
        self.sites = analyzer.sites.get(func.qualname, {})
        self.hot = func.qualname in analyzer.hot

    # -- top level -----------------------------------------------------
    def run(self, env: Env) -> None:
        self._exec_block(self.func.body(), env)

    def _exec_block(self, body: Sequence[ast.stmt],
                    env: Env) -> bool:
        """Execute statements in ``env`` (mutated); True if the block
        provably terminates (return/raise/break/continue)."""
        for stmt in body:
            if self._exec(stmt, env):
                return True
        return False

    # -- findings ------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, rule: str,
              message: str) -> None:
        if self.emit_on:
            self.a.emit(self.func, node, code, rule, message, self.via)

    def _oblige(self, node: ast.AST, message: str) -> None:
        # Obligations come only from the annotation-seeded pass: a
        # pass-B environment describes *known* callers, never all.
        if self.emit_on and self.collect and self.hot:
            self.a.oblige(self.func, node, message)

    # -- statements ----------------------------------------------------
    def _exec(self, stmt: ast.stmt, env: Env) -> bool:
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                declared = self.a.return_units.get(self.func.qualname)
                if is_unit(declared) and is_unit(value.unit) \
                        and declared is not None \
                        and not assignable(value.unit, declared):
                    self._emit(
                        stmt, "UNIT704", "unit-return-mismatch",
                        f"returns {value.unit} from "
                        f"{self.func.qualname} whose declared return "
                        f"unit is {declared}")
            return True
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._eval(stmt.exc, env)
            return True
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env, stmt.value)
            return False
        if isinstance(stmt, ast.AnnAssign):
            declared = annotation_unit(stmt.annotation)
            value = (self._eval(stmt.value, env)
                     if stmt.value is not None else TOP_VAL)
            if is_unit(declared) and declared is not None:
                ival = value.ival.meet(_default_interval(declared))
                if ival.is_bottom:
                    ival = _default_interval(declared)
                value = replace(value, unit=declared, ival=ival)
            self._bind(stmt.target, value, env, stmt.value)
            return False
        if isinstance(stmt, ast.AugAssign):
            synth = ast.BinOp(left=_load_of(stmt.target), op=stmt.op,
                              right=stmt.value)
            ast.copy_location(synth, stmt)
            ast.fix_missing_locations(synth)
            value = self._eval(synth, env)
            self._bind(stmt.target, value, env, stmt.value)
            return False
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, env)
        if isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
            return False
        if isinstance(stmt, ast.While):
            self._exec_while(stmt, env)
            return False
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            refined = self._refine(stmt.test, env, True)
            env.clear()
            env.update(refined)
            return False
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
            return False
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env, None)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            pre = dict(env)
            terminated = self._exec_block(stmt.body, env)
            merged = _join_env(pre, env)
            for handler in stmt.handlers:
                handler_env = dict(merged)
                if handler.name:
                    handler_env[handler.name] = TOP_VAL
                self._exec_block(handler.body, handler_env)
                merged = _join_env(merged, handler_env)
            if stmt.orelse and not terminated:
                self._exec_block(stmt.orelse, env)
                merged = _join_env(merged, env)
            env.clear()
            env.update(merged)
            if stmt.finalbody:
                return self._exec_block(stmt.finalbody, env)
            return False
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
                    _invalidate_name(env, target.id)
                elif isinstance(target, ast.Subscript):
                    base = dotted(target.value)
                    if base:
                        _invalidate_name(env, base)
            return False
        # def/class/import/global/pass...: no dataflow effect here.
        return False

    def _exec_if(self, stmt: ast.If, env: Env) -> bool:
        self._eval(stmt.test, env)
        true_env = self._refine(stmt.test, env, True)
        false_env = self._refine(stmt.test, env, False)
        true_done = self._exec_block(stmt.body, true_env)
        false_done = (self._exec_block(stmt.orelse, false_env)
                      if stmt.orelse else False)
        if true_done and false_done:
            return True
        if true_done:
            merged = false_env
        elif false_done:
            merged = true_env
        else:
            merged = _join_env(true_env, false_env)
        env.clear()
        env.update(merged)
        return False

    def _loop_body(self, stmt, env: Env,
                   bind) -> None:
        """Fixpoint over a loop body: widen silently, emit once."""
        loop_env = dict(env)
        emit_state = self.emit_on
        self.emit_on = False
        try:
            for _ in range(3):
                probe = dict(loop_env)
                bind(probe)
                self._exec_block(stmt.body, probe)
                widened = _widen_env(loop_env, probe)
                if widened == loop_env:
                    break
                loop_env = widened
        finally:
            self.emit_on = emit_state
        final = dict(loop_env)
        bind(final)
        self._exec_block(stmt.body, final)
        merged = _join_env(env, final)
        env.clear()
        env.update(merged)
        if stmt.orelse:
            self._exec_block(stmt.orelse, env)

    def _exec_for(self, stmt: ast.For, env: Env) -> None:
        iter_val = self._eval(stmt.iter, env)

        def bind(target_env: Env) -> None:
            self._bind_iter(stmt.target, stmt.iter, iter_val,
                            target_env)

        self._loop_body(stmt, env, bind)

    def _exec_while(self, stmt: ast.While, env: Env) -> None:
        self._eval(stmt.test, env)

        def bind(target_env: Env) -> None:
            refined = self._refine(stmt.test, target_env, True)
            target_env.clear()
            target_env.update(refined)

        self._loop_body(stmt, env, bind)

    # -- loop iteration binding ---------------------------------------
    def _range_bounds(self, call: ast.Call,
                      env: Env) -> Optional[AbsVal]:
        """AbsVal of the loop variable for ``range(...)`` iterations."""
        args = [self._eval(arg, env) for arg in call.args]
        if not args or len(args) > 3:
            return None
        if len(args) == 1:
            start, stop = const_val(0), args[0]
        else:
            start, stop = args[0], args[1]
        if len(args) == 3 and not args[2].ival.within(1, INF):
            # non-positive or unknown step: interval hull only
            return AbsVal(ival=start.ival.join(stop.ival))
        hi = stop.ival.hi - 1 if math.isfinite(stop.ival.hi) else INF
        ival = Interval(min(start.ival.lo, hi), hi)
        ub = None
        tight = False
        if stop.exact is not None:
            sym, off = stop.exact
            ub = (sym, off - 1)
            tight = True
        elif stop.ub is not None:
            sym, off = stop.ub
            ub = (sym, off - 1)
            tight = stop.tight
        return AbsVal(unit=stop.unit
                      if stop.unit in ("SlotIndex", "Count") else TOP,
                      ival=ival, ub=ub, tight=tight)

    def _bind_iter(self, target: ast.expr, iter_node: ast.expr,
                   iter_val: AbsVal, env: Env) -> None:
        elem = TOP_VAL
        if isinstance(iter_node, ast.Call):
            callee = dotted(iter_node.func) or ""
            base = callee.split(".")[-1]
            if base == "range":
                bounds = self._range_bounds(iter_node, env)
                if bounds is not None:
                    elem = bounds
            elif base == "enumerate" and iter_node.args:
                seq = self._eval(iter_node.args[0], env)
                index = AbsVal(unit="Count", ival=Interval(0, INF))
                if seq.length is not None:
                    sym = _length_sym(seq, iter_node.args[0])
                    hi = (seq.length.ival.hi - 1
                          if math.isfinite(seq.length.ival.hi)
                          else INF)
                    index = AbsVal(unit="Count",
                                   ival=Interval(0, hi),
                                   ub=((sym, -1) if sym else None),
                                   tight=True)
                if isinstance(target, ast.Tuple) \
                        and len(target.elts) == 2:
                    self._bind(target.elts[0], index, env, None)
                    self._bind(target.elts[1], TOP_VAL, env, None)
                    return
        elif isinstance(iter_node, (ast.Tuple, ast.List)):
            values = [self._eval(e, env) for e in iter_node.elts]
            if values:
                joined = values[0]
                for value in values[1:]:
                    joined = joined.join(value)
                elem = joined
        self._bind(target, elem, env, None)

    # -- binding -------------------------------------------------------
    def _bind(self, target: ast.expr, value: AbsVal, env: Env,
              value_node: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            _invalidate_name(env, target.id)
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            parts: List[AbsVal] = []
            if isinstance(value_node, (ast.Tuple, ast.List)) and \
                    len(value_node.elts) == len(target.elts):
                parts = [self._eval(e, env) for e in value_node.elts]
            for index, elt in enumerate(target.elts):
                part = parts[index] if parts else TOP_VAL
                self._bind(elt, part, env, None)
            return
        if isinstance(target, ast.Subscript):
            # store-side bounds check; container length unchanged
            self._subscript(target, env, store=True)
            return
        if isinstance(target, ast.Attribute):
            base = dotted(target)
            if base:
                _invalidate_name(env, base)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, TOP_VAL, env, None)

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr, env: Env) -> AbsVal:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return const_val(int(node.value))
            if isinstance(node.value, (int, float)):
                return const_val(node.value)
            return TOP_VAL
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            folded = self.a.const_of(self.func.module, node.id)
            if folded is not None:
                return const_val(folded)
            return TOP_VAL
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            inner = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return AbsVal(unit=inner.unit, ival=inner.ival.neg())
            if isinstance(node.op, ast.Not):
                return AbsVal(ival=Interval(0, 1))
            return TOP_VAL
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, env)
            return TOP_VAL
        if isinstance(node, ast.Compare):
            self._check_compare(node, env)
            return AbsVal(ival=Interval(0, 1))
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env, store=False)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            true_env = self._refine(node.test, env, True)
            false_env = self._refine(node.test, env, False)
            return self._eval(node.body, true_env).join(
                self._eval(node.orelse, false_env))
        if isinstance(node, (ast.List, ast.Tuple)):
            for elt in node.elts:
                if not isinstance(elt, ast.Starred):
                    self._eval(elt, env)
            if any(isinstance(e, ast.Starred) for e in node.elts):
                return AbsVal(length=AbsVal(
                    unit="Count", ival=Interval(0, INF)))
            return AbsVal(length=AbsVal(
                unit="Count", ival=Interval.const(len(node.elts))))
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            for value in node.values:
                self._eval(value, env)
            return AbsVal(is_map=True)
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self._eval(elt, env)
            return TOP_VAL
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, env)
            return TOP_VAL
        if isinstance(node, ast.FormattedValue):
            self._eval(node.value, env)
            return TOP_VAL
        if isinstance(node, ast.Lambda):
            return TOP_VAL
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._bind(node.target, value, env, node.value)
            return value
        return TOP_VAL

    def _eval_comprehension(self, node, env: Env) -> AbsVal:
        comp_env = dict(env)
        length: Optional[AbsVal] = None
        for index, gen in enumerate(node.generators):
            iter_val = self._eval(gen.iter, comp_env)
            self._bind_iter(gen.target, gen.iter, iter_val, comp_env)
            guarded = not gen.ifs
            for test in gen.ifs:
                self._eval(test, comp_env)
                comp_env = self._refine(test, comp_env, True)
            if index == 0 and guarded and len(node.generators) == 1:
                if isinstance(gen.iter, ast.Call) and \
                        (dotted(gen.iter.func) or "").split(
                            ".")[-1] == "range" \
                        and len(gen.iter.args) == 1:
                    length = self._eval(gen.iter.args[0], env)
                elif iter_val.length is not None:
                    length = iter_val.length
        if isinstance(node, ast.DictComp):
            self._eval(node.key, comp_env)
            self._eval(node.value, comp_env)
            return AbsVal(is_map=True)
        self._eval(node.elt, comp_env)
        if isinstance(node, ast.ListComp) and length is not None:
            return AbsVal(length=replace(length, unit="Count"))
        return TOP_VAL

    def _eval_attribute(self, node: ast.Attribute,
                        env: Env) -> AbsVal:
        text = dotted(node)
        if text is None:
            self._eval(node.value, env)
            return TOP_VAL
        parts = text.split(".")
        base_val = (env.get(parts[0]) if len(parts) == 2
                    and parts[0] in env else None)
        if base_val is None and len(parts) >= 2:
            prefix = ".".join(parts[:-1])
            # nested chains through env: a.b.c with a.b tracked? no —
            # only direct names carry space payloads.
            base_val = env.get(prefix)
        attr = parts[-1]
        # space payloads: .size / .base of a constructed space
        if base_val is not None and base_val.is_space:
            if attr == "size":
                size = base_val.space_size or TOP_VAL
                return AbsVal(unit="Count", ival=size.ival,
                              exact=(text, 0))
            if attr == "base":
                base_ival = base_val.space_base or _default_interval(
                    "Addr")
                return AbsVal(unit="Addr", ival=base_ival)
        # module-level constant through an imported module alias
        folded = self.a.const_of(self.func.module, text)
        if folded is not None:
            return const_val(folded)
        # unit from the receiver's class annotation table
        unit = self._chain_unit(parts)
        if attr == "size":
            ival = (_default_interval(unit) if is_unit(unit)
                    else Interval(0, INF))
            return AbsVal(unit=unit if is_unit(unit) else "Count",
                          ival=ival, exact=(text, 0))
        if is_unit(unit) and unit is not None:
            return unit_val(unit)
        return TOP_VAL

    def _chain_unit(self, parts: List[str]) -> Optional[str]:
        """Unit of ``a.b.c`` via annotated classes, depth-limited."""
        cls: Optional[str] = None
        if parts[0] == "self" and self.func.class_qualname:
            cls = self.func.class_qualname
        else:
            cls = self.scope.var_types.get(parts[0])
        for attr in parts[1:-1]:
            if cls is None:
                return None
            info = self.a.graph.classes.get(cls)
            cls = info.attr_types.get(attr) if info else None
        if cls is None:
            return None
        return self.a._attr_unit_of_class(cls, parts[-1])

    def _eval_binop(self, node: ast.BinOp, env: Env) -> AbsVal:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            sign = "+" if isinstance(op, ast.Add) else "-"
            unit, ok = combine_additive(
                left.unit, sign, right.unit,
                right_is_literal=right.ival.is_const)
            if not ok:
                self._emit(
                    node, "UNIT701", "cross-unit-arithmetic",
                    f"cannot {'add' if sign == '+' else 'subtract'} "
                    f"{right.unit} {'to' if sign == '+' else 'from'} "
                    f"{left.unit}: no unit-algebra rule for "
                    f"{left.unit} {sign} {right.unit}")
            ival = (left.ival.add(right.ival) if sign == "+"
                    else left.ival.sub(right.ival))
            exact = None
            ub = None
            tight = False
            const = right.ival
            if const.is_const:
                offset = int(const.lo) if sign == "+" \
                    else -int(const.lo)
                if left.exact is not None:
                    exact = (left.exact[0], left.exact[1] + offset)
                if left.ub is not None:
                    ub = (left.ub[0], left.ub[1] + offset)
                    tight = left.tight
            elif sign == "+" and left.ival.is_const \
                    and right.exact is not None:
                exact = (right.exact[0],
                         right.exact[1] + int(left.ival.lo))
            # list repetition: [x] * n builds a length-n sequence
            if isinstance(op, ast.Add) and left.length is not None \
                    and right.length is not None:
                return AbsVal(length=left.length.join(right.length))
            return AbsVal(unit=unit, ival=ival, exact=exact, ub=ub,
                          tight=tight)
        if isinstance(op, ast.Mult):
            if left.length is not None and right.length is None \
                    and not right.is_map:
                return AbsVal(length=_scale_length(left.length, right))
            if right.length is not None and left.length is None \
                    and not left.is_map:
                return AbsVal(length=_scale_length(right.length, left))
            unit = TOP
            if left.unit == "Count" and is_unit(right.unit):
                unit = right.unit
            elif right.unit == "Count" and is_unit(left.unit):
                unit = left.unit
            return AbsVal(unit=unit, ival=left.ival.mul(right.ival))
        if isinstance(op, ast.FloorDiv):
            return AbsVal(ival=left.ival.floordiv(right.ival))
        if isinstance(op, ast.Mod):
            return AbsVal(unit=left.unit
                          if left.unit in ("SlotIndex", "Count")
                          else TOP,
                          ival=left.ival.mod(right.ival))
        if isinstance(op, (ast.LShift, ast.RShift)):
            self._check_shift(node, left, right)
            ival = (left.ival.lshift(right.ival)
                    if isinstance(op, ast.LShift)
                    else left.ival.rshift(right.ival))
            bitwidth = None
            if isinstance(op, ast.LShift) and left.ival.is_const \
                    and left.ival.lo == 1 and right.ival.is_const:
                bitwidth = int(right.ival.lo)
            return AbsVal(ival=ival, bitwidth=bitwidth)
        if isinstance(op, (ast.BitOr, ast.BitAnd, ast.BitXor)):
            unit = TOP
            if left.unit == "ScopeMask" or right.unit == "ScopeMask":
                unit = "ScopeMask"
            ival = Interval(0, INF) if (left.ival.lo >= 0
                                        and right.ival.lo >= 0) \
                else Interval.top()
            if isinstance(op, ast.BitAnd):
                if left.ival.lo >= 0 and right.ival.lo >= 0:
                    hi = min(left.ival.hi, right.ival.hi)
                    ival = Interval(0, hi)
            bitwidth = None
            # (1 << w) - 1 handled above; mask & mask keeps min width
            if left.bitwidth is not None \
                    and isinstance(op, ast.BitAnd):
                bitwidth = left.bitwidth
            elif right.bitwidth is not None \
                    and isinstance(op, ast.BitAnd):
                bitwidth = right.bitwidth
            return AbsVal(unit=unit, ival=ival, bitwidth=bitwidth)
        if isinstance(op, ast.Sub):
            return TOP_VAL  # unreachable; kept for clarity
        if isinstance(op, ast.Div):
            return AbsVal(unit=left.unit
                          if left.unit in ("Duration", "SimTime")
                          and right.unit in (TOP, "Count")
                          else TOP)
        if isinstance(op, ast.Pow):
            return AbsVal(ival=left.ival.mul(left.ival)
                          if right.ival.is_const and right.ival.lo == 2
                          else Interval.top())
        return TOP_VAL

    def _check_shift(self, node: ast.BinOp, left: AbsVal,
                     right: AbsVal) -> None:
        self.a.stats["checked_shifts"] += 1
        direction = ("<<" if isinstance(node.op, ast.LShift)
                     else ">>")
        if right.ival.hi < 0:
            self._emit(
                node, "UNIT712", "shift-bound-escape",
                f"shift amount is provably negative "
                f"(interval {right.ival}); `x {direction} n` raises "
                f"ValueError for n < 0")
            return
        if left.bitwidth is not None and right.ival.lo >= \
                left.bitwidth and math.isfinite(right.ival.lo):
            self._emit(
                node, "UNIT712", "shift-bound-escape",
                f"shift amount (interval {right.ival}) escapes the "
                f"operand's known bitmap width {left.bitwidth}")
            return
        if right.ival.lo < 0:
            self._oblige(
                node,
                f"cannot prove shift amount non-negative "
                f"(interval {right.ival}) on a hot path")
            return
        self.a.stats["proved_shifts"] += 1

    # -- comparisons & refinement -------------------------------------
    def _check_compare(self, node: ast.Compare, env: Env) -> None:
        operands = [self._eval(item, env)
                    for item in [node.left] + list(node.comparators)]
        for index, op in enumerate(node.ops):
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            left, right = operands[index], operands[index + 1]
            if is_unit(left.unit) and is_unit(right.unit) \
                    and not comparable(left.unit, right.unit):
                self._emit(
                    node, "UNIT702", "cross-unit-comparison",
                    f"comparing {left.unit} with {right.unit}: the "
                    f"units live on different scales, so one side is "
                    f"in the wrong unit")

    def _refine(self, test: ast.expr, env: Env,
                assume: bool) -> Env:
        out = dict(env)
        self._refine_into(test, out, assume)
        return out

    def _refine_into(self, test: ast.expr, env: Env,
                     assume: bool) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(
                test.op, ast.Not):
            self._refine_into(test.operand, env, not assume)
            return
        if isinstance(test, ast.BoolOp):
            if (isinstance(test.op, ast.And) and assume) or \
                    (isinstance(test.op, ast.Or) and not assume):
                for value in test.values:
                    self._refine_into(value, env, assume)
            return
        if isinstance(test, ast.Call):
            callee = dotted(test.func) or ""
            if callee.split(".")[-1] == "contains_index" \
                    and assume and len(test.args) == 1 \
                    and isinstance(test.args[0], ast.Name):
                name = test.args[0].id
                if name in env and isinstance(test.func,
                                              ast.Attribute):
                    recv = dotted(test.func.value)
                    current = env[name]
                    size_hi = INF
                    recv_val = env.get(recv or "")
                    if recv_val is not None and recv_val.is_space \
                            and recv_val.space_size is not None:
                        size_hi = recv_val.space_size.ival.hi
                    ival = current.ival.meet(Interval(0, size_hi - 1
                                             if math.isfinite(size_hi)
                                             else INF))
                    env[name] = replace(
                        current, ival=ival,
                        ub=((f"{recv}.size", -1) if recv
                            else current.ub),
                        tight=False)
            return
        if not isinstance(test, ast.Compare):
            return
        items = [test.left] + list(test.comparators)
        for index, op in enumerate(test.ops):
            op_text = _op_text(op)
            if op_text is None:
                continue
            if not assume:
                from repro.units.intervals import NEGATE_OP
                op_text = NEGATE_OP.get(op_text)
                if op_text is None:
                    continue
            left_node, right_node = items[index], items[index + 1]
            self._refine_pair(left_node, op_text, right_node, env)
            self._refine_pair(right_node, SWAP_OP[op_text], left_node,
                              env)

    def _refine_pair(self, var_node: ast.expr, op: str,
                     bound_node: ast.expr, env: Env) -> None:
        if not isinstance(var_node, ast.Name) or \
                var_node.id not in env:
            return
        bound = self._eval(bound_node, env)
        current = env[var_node.id]
        refined_ival = current.ival.refine(op, bound.ival)
        if refined_ival.is_bottom:
            refined_ival = current.ival
        exact = current.exact
        ub = current.ub
        tight = current.tight
        sym = bound.exact or bound.ub
        if sym is not None and (bound.exact is not None
                                or op in ("<", "<=")):
            name, off = sym
            if op == "<":
                candidate = (name, off - 1)
            elif op == "<=":
                candidate = (name, off)
            elif op == "==" and bound.exact is not None:
                exact = bound.exact
                candidate = None
            else:
                candidate = None
            if candidate is not None:
                if ub is None or (ub[0] == candidate[0]
                                  and candidate[1] < ub[1]):
                    ub = candidate
                    tight = False
        env[var_node.id] = replace(current, ival=refined_ival,
                                   exact=exact, ub=ub, tight=tight)

    # -- calls ---------------------------------------------------------
    def _eval_call(self, node: ast.Call, env: Env) -> AbsVal:
        text = dotted(node.func) or ""
        base = text.split(".")[-1] if text else ""
        argvals: List[AbsVal] = []
        for arg in node.args:
            argvals.append(self._eval(arg, env))
        kwvals = {kw.arg: self._eval(kw.value, env)
                  for kw in node.keywords if kw.arg is not None}
        if not text:
            self._eval(node.func, env)

        # builtins with unit/interval semantics
        if base == "len" and len(argvals) == 1 and not kwvals:
            seq = argvals[0]
            sym = _length_sym(seq, node.args[0])
            ival = (seq.length.ival if seq.length is not None
                    else Interval(0, INF))
            exact = None
            if seq.length is not None and seq.length.exact is not None:
                exact = seq.length.exact
            elif sym:
                exact = (sym, 0)
            return AbsVal(unit="Count", ival=ival, exact=exact)
        if base in ("int", "float") and len(argvals) == 1:
            return argvals[0]
        if base == "abs" and len(argvals) == 1:
            inner = argvals[0]
            ival = inner.ival
            if ival.lo < 0:
                hi = max(abs(ival.lo), abs(ival.hi)) \
                    if not ival.is_top else INF
                ival = Interval(0, hi)
            return AbsVal(unit=inner.unit, ival=ival)
        if base in ("min", "max") and len(argvals) >= 2:
            joined = argvals[0]
            for index in range(1, len(argvals)):
                left, right = argvals[index - 1], argvals[index]
                if is_unit(left.unit) and is_unit(right.unit) \
                        and not comparable(left.unit, right.unit):
                    self._emit(
                        node, "UNIT702", "cross-unit-comparison",
                        f"{base}() compares {left.unit} with "
                        f"{right.unit}: the units live on different "
                        f"scales")
                joined = joined.join(right)
            los = [v.ival.lo for v in argvals]
            his = [v.ival.hi for v in argvals]
            ival = (Interval(min(los), min(his)) if base == "min"
                    else Interval(max(los), max(his)))
            ub = joined.ub
            if base == "min":
                for value in argvals:
                    if value.exact is not None:
                        ub = value.exact if ub is None else ub
                    elif value.ub is not None and ub is None:
                        ub = value.ub
            return AbsVal(unit=joined.unit, ival=ival, ub=ub)
        if base in ("sorted", "list", "tuple") and len(argvals) == 1:
            seq = argvals[0]
            if seq.length is not None:
                return AbsVal(length=seq.length)
            return AbsVal(length=AbsVal(unit="Count",
                                        ival=Interval(0, INF)))
        if base in ("zeros", "ones", "empty", "full", "arange") \
                and text.startswith(("np.", "numpy.")) and argvals:
            return AbsVal(length=replace(argvals[0], unit="Count"))

        # space constructors and factories
        space = self._space_value(node, base, argvals, kwvals)
        if space is not None:
            return space

        # index<->address conversions (UNIT713)
        if isinstance(node.func, ast.Attribute) and \
                (base in _INDEX_CONVERSIONS
                 or base in _ADDR_CONVERSIONS
                 or base == "contains_index"):
            return self._conversion(node, base, argvals, env)

        # container mutation invalidates old-length-relative proofs
        if isinstance(node.func, ast.Attribute) \
                and base in _MUTATING_METHODS:
            recv = dotted(node.func.value)
            if recv is not None:
                if base in _SHRINKING_METHODS:
                    _invalidate_name(env, recv)
                    # The length record itself may carry a sym that
                    # does not mention the receiver ("n" after
                    # ``xs = [0] * n``); shrinking voids it too.
                    if recv in env and env[recv].length is not None:
                        env[recv] = replace(env[recv], length=AbsVal(
                            unit="Count", ival=Interval(0, INF)))
                elif recv in env and env[recv].length is not None:
                    env[recv] = replace(env[recv], length=AbsVal(
                        unit="Count", ival=Interval(0, INF)))

        # graph-resolved targets: UNIT703 + pass-B collection
        return self._resolved_call(node, argvals, kwvals, env)

    def _space_value(self, node: ast.Call, base: str,
                     argvals: List[AbsVal],
                     kwvals: Dict[str, AbsVal]) -> Optional[AbsVal]:
        if base == "MulticastAddressSpace":
            base_val = kwvals.get("base",
                                  argvals[0] if argvals else TOP_VAL)
            size_val = kwvals.get("size",
                                  argvals[1] if len(argvals) > 1
                                  else TOP_VAL)
            return AbsVal(
                space_base=(base_val.ival
                            if not base_val.ival.is_top else None),
                space_size=replace(size_val, unit="Count"),
            )
        if base in _SPACE_FACTORIES:
            known_base, known_size = _SPACE_FACTORIES[base]
            return AbsVal(
                space_base=Interval.const(known_base),
                space_size=AbsVal(unit="Count",
                                  ival=Interval.const(known_size)),
            )
        if base == "abstract" and (argvals or "size" in kwvals):
            size_val = kwvals.get("size", argvals[0]
                                  if argvals else TOP_VAL)
            return AbsVal(space_size=replace(size_val, unit="Count"))
        return None

    def _conversion(self, node: ast.Call, base: str,
                    argvals: List[AbsVal], env: Env) -> AbsVal:
        assert isinstance(node.func, ast.Attribute)
        recv_text = dotted(node.func.value)
        recv_val = env.get(recv_text or "")
        if recv_val is None and recv_text == "self" \
                and self.func.class_qualname and \
                self.func.class_qualname.split(".")[-1] == \
                "MulticastAddressSpace":
            recv_val = AbsVal(space_size=AbsVal(
                unit="Count", ival=Interval(1, INF)))
        size_sym = f"{recv_text}.size" if recv_text else None
        size_ival = Interval(1, INF)
        base_ival: Optional[Interval] = None
        if recv_val is not None and recv_val.is_space:
            assert recv_val.space_size is not None
            size_ival = recv_val.space_size.ival
            base_ival = recv_val.space_base
        if base == "contains_index":
            return AbsVal(ival=Interval(0, 1))
        if not argvals:
            return TOP_VAL
        arg = argvals[0]
        self.a.stats["checked_conversions"] += 1
        if base in _INDEX_CONVERSIONS:
            verdict = _upper_verdict(arg, size_sym, size_ival,
                                     require_lower=True)
            if verdict == "violation":
                self._emit(
                    node, "UNIT713", "conversion-bound-escape",
                    f"{base}() argument "
                    f"({_describe(arg)}) provably escapes the space "
                    f"bound 0..{_bound_text(size_sym, size_ival)}-1")
            elif verdict == "ok":
                self.a.stats["proved_conversions"] += 1
            else:
                self._oblige(
                    node,
                    f"cannot prove {base}() argument "
                    f"({_describe(arg)}) stays inside "
                    f"0..{_bound_text(size_sym, size_ival)}-1 on a "
                    f"hot path")
            result_unit = ("Addr" if base == "index_to_address"
                           else TOP)
            ival = Interval.top()
            if base == "index_to_address":
                ival = (base_ival.add(arg.ival) if base_ival is not None
                        else _default_interval("Addr"))
                return AbsVal(unit="Addr", ival=ival)
            return AbsVal(unit=result_unit)
        # address -> index direction
        if base_ival is not None and math.isfinite(size_ival.hi):
            lo, hi = base_ival.lo, base_ival.hi + size_ival.hi - 1
            if arg.ival.disjoint(lo, hi) and not arg.ival.is_top:
                self._emit(
                    node, "UNIT713", "conversion-bound-escape",
                    f"{base}() argument ({_describe(arg)}) is "
                    f"provably outside the space "
                    f"[{_fmt(lo)}..{_fmt(hi)}]")
            elif arg.ival.within(lo, hi):
                self.a.stats["proved_conversions"] += 1
            else:
                self._oblige(
                    node,
                    f"cannot prove {base}() argument "
                    f"({_describe(arg)}) lies inside the space "
                    f"[{_fmt(lo)}..{_fmt(hi)}] on a hot path")
        else:
            self._oblige(
                node,
                f"cannot prove {base}() argument ({_describe(arg)}) "
                f"lies inside the receiving space on a hot path "
                f"(base unknown statically)")
        hi = size_ival.hi - 1 if math.isfinite(size_ival.hi) else INF
        return AbsVal(unit="SlotIndex", ival=Interval(0, hi),
                      ub=((size_sym, -1) if size_sym else None))

    def _resolved_call(self, node: ast.Call, argvals: List[AbsVal],
                       kwvals: Dict[str, AbsVal],
                       env: Env) -> AbsVal:
        site = self.sites.get((node.lineno, node.col_offset))
        if site is None or not site.targets:
            return TOP_VAL
        mapped = self._map_args(site, node, argvals, kwvals)
        if mapped:
            self._check_args(node, site, mapped)
            if self.collect:
                self._collect_args(node, site, mapped)
        # result: annotated return unit shared by every target
        units = {self.a.return_units.get(t) for t in site.targets}
        if len(units) == 1:
            unit = units.pop()
            if is_unit(unit):
                return unit_val(unit)
        return TOP_VAL

    def _map_args(self, site: CallSite, node: ast.Call,
                  argvals: List[AbsVal], kwvals: Dict[str, AbsVal]
                  ) -> Dict[str, List[Tuple[str, AbsVal,
                                            ast.expr]]]:
        """param -> [(target, value, arg node)] across CHA targets."""
        if any(isinstance(arg, ast.Starred) for arg in node.args) \
                or any(kw.arg is None for kw in node.keywords):
            return {}
        is_method = (site.kind == "constructor"
                     or "." in site.callee_text)
        out: Dict[str, List[Tuple[str, AbsVal, ast.expr]]] = {}
        for target in site.targets:
            info = self.a.graph.functions.get(target)
            if info is None:
                continue
            params = info.params
            skip = 1 if (params and params[0] in ("self", "cls")
                         and is_method) else 0
            for index, arg in enumerate(node.args):
                slot = index + skip
                if slot >= len(params):
                    break
                out.setdefault(params[slot], []).append(
                    (target, argvals[index], arg))
            for kw in node.keywords:
                if kw.arg in params:
                    out.setdefault(kw.arg, []).append(
                        (target, kwvals[kw.arg], kw.value))
        return out

    def _check_args(self, node: ast.Call, site: CallSite,
                    mapped: Dict[str, List[Tuple[str, AbsVal,
                                                 ast.expr]]]) -> None:
        for param, entries in mapped.items():
            declared_mismatch: List[str] = []
            any_ok = False
            value = entries[0][1]
            for target, entry_val, _ in entries:
                declared = self.a.param_units.get(target, {}).get(
                    param)
                if not is_unit(declared) or declared is None:
                    continue
                if not is_unit(entry_val.unit):
                    any_ok = True
                elif assignable(entry_val.unit, declared):
                    any_ok = True
                else:
                    declared_mismatch.append(declared)
                    value = entry_val
            if declared_mismatch and not any_ok:
                self._emit(
                    node, "UNIT703", "unit-argument-mismatch",
                    f"argument {param!r} of {site.callee_text}() "
                    f"carries unit {value.unit} but the callee "
                    f"declares {declared_mismatch[0]}")

    def _collect_args(self, node: ast.Call, site: CallSite,
                      mapped: Dict[str, List[Tuple[str, AbsVal,
                                                   ast.expr]]]
                      ) -> None:
        textmap: Dict[str, str] = {}
        for param, entries in mapped.items():
            for _, _, arg_node in entries:
                text = dotted(arg_node)
                if text:
                    textmap[text] = param
        for param, entries in mapped.items():
            for target, value, _ in entries:
                rerooted = _reroot(value, textmap)
                self.a.callinfo.record(
                    target, param, rerooted, self.func.qualname,
                    self.func.path, node.lineno)

    # -- subscripts ----------------------------------------------------
    def _subscript(self, node: ast.Subscript, env: Env,
                   store: bool) -> AbsVal:
        container = self._eval(node.value, env)
        if isinstance(node.slice, ast.Slice):
            for part in (node.slice.lower, node.slice.upper,
                         node.slice.step):
                if part is not None:
                    self._eval(part, env)
            return replace(container, unit=TOP) \
                if container.length is not None else TOP_VAL
        if isinstance(node.slice, ast.Tuple):
            for elt in node.slice.elts:
                self._eval(elt, env)
            return TOP_VAL
        index = self._eval(node.slice, env)
        if container.is_map or container.length is None:
            return TOP_VAL
        self.a.stats["checked_subscripts"] += 1
        if index.unit == "Addr":
            self._emit(
                node, "UNIT705", "addr-as-slot-index",
                f"an absolute multicast address (Addr, "
                f"{_describe(index)}) subscripts a dense container "
                f"of length {_describe(container.length)}; convert "
                f"with address_to_index() first")
            return TOP_VAL
        length = container.length
        sym = length.exact[0] if length.exact is not None else None
        offset = length.exact[1] if length.exact is not None else 0
        if sym is None:
            # No symbolic length recorded; ``len(<container>)`` is
            # still a sound name for it — the range(len(xs)) idiom
            # produces exactly that sym.
            sym = _length_sym(container, node.value)
        verdict = _upper_verdict(index, sym, length.ival,
                                 require_lower=False,
                                 bound_offset=offset)
        if verdict == "violation":
            self._emit(
                node, "UNIT711", "index-bound-escape",
                f"subscript ({_describe(index)}) provably escapes "
                f"0..{_bound_text(sym, length.ival)}-1")
        elif verdict == "ok":
            self.a.stats["proved_subscripts"] += 1
        else:
            self._oblige(
                node,
                f"cannot prove subscript ({_describe(index)}) stays "
                f"inside 0..{_bound_text(sym, length.ival)}-1 on a "
                f"hot path")
        return TOP_VAL


# ---------------------------------------------------------------------
# Bound verdicts and helpers
# ---------------------------------------------------------------------
def _upper_verdict(value: AbsVal, bound_sym: Optional[str],
                   bound_ival: Interval,
                   require_lower: bool,
                   bound_offset: int = 0) -> str:
    """"ok" | "violation" | "unknown" for ``value <= L - 1`` where
    ``L = bound_sym + bound_offset`` (symbolically) and/or
    ``L in bound_ival`` (numerically)."""
    limit = bound_offset - 1
    ok_upper = False
    for form, attained in ((value.exact, True),
                           (value.ub, value.tight)):
        if form is None or bound_sym is None:
            continue
        sym, off = form
        if sym != bound_sym:
            continue
        if off <= limit:
            ok_upper = True
        elif attained and off >= bound_offset:
            return "violation"
    if not ok_upper and math.isfinite(bound_ival.lo) \
            and value.ival.hi <= bound_ival.lo - 1:
        ok_upper = True
    if math.isfinite(bound_ival.hi) and value.ival.lo >= \
            bound_ival.hi and not value.ival.is_bottom:
        return "violation"
    if require_lower:
        if value.ival.hi < 0:
            return "violation"
        if ok_upper and value.ival.lo >= 0:
            return "ok"
        return "unknown"
    return "ok" if ok_upper else "unknown"


def _reroot(value: AbsVal, textmap: Dict[str, str]) -> AbsVal:
    def fix(form: Optional[Tuple[str, int]]
            ) -> Optional[Tuple[str, int]]:
        if form is None:
            return None
        sym, off = form
        for text, param in textmap.items():
            if sym == text:
                return (param, off)
            if sym.startswith(text + "."):
                return (param + sym[len(text):], off)
            if sym == f"len({text})":
                return (f"len({param})", off)
        return None
    stripped_size = None
    if value.space_size is not None:
        stripped_size = replace(value.space_size, exact=None, ub=None)
    stripped_len = None
    if value.length is not None:
        stripped_len = replace(value.length, exact=fix(
            value.length.exact), ub=None)
    return replace(value, exact=fix(value.exact), ub=fix(value.ub),
                   space_size=stripped_size, length=stripped_len)


def _length_sym(seq: AbsVal, node: ast.expr) -> Optional[str]:
    if seq.length is not None and seq.length.exact is not None:
        return seq.length.exact[0]
    text = dotted(node)
    return f"len({text})" if text else None


def _scale_length(length: AbsVal, factor: AbsVal) -> AbsVal:
    if factor.ival.is_const and factor.ival.lo == 1:
        return length
    scaled = length.ival.mul(factor.ival)
    exact = None
    if length.ival.is_const and length.ival.lo == 1 \
            and factor.exact is not None and factor.exact[1] == 0:
        exact = factor.exact
    return AbsVal(unit="Count", ival=scaled, exact=exact)


def _invalidate_name(env: Env, name: str) -> None:
    """Kill symbolic forms that referenced ``name`` after it changes."""
    doomed_prefix = name + "."
    doomed_len = f"len({name})"
    for key, value in list(env.items()):
        changed = False
        exact, ub = value.exact, value.ub
        for attr, form in (("exact", exact), ("ub", ub)):
            if form is None:
                continue
            sym = form[0]
            if sym == name or sym.startswith(doomed_prefix) \
                    or sym == doomed_len:
                if attr == "exact":
                    exact = None
                else:
                    ub = None
                changed = True
        length = value.length
        if length is not None and length.exact is not None:
            sym = length.exact[0]
            if sym == name or sym.startswith(doomed_prefix) \
                    or sym == doomed_len:
                length = replace(length, exact=None)
                changed = True
        if changed:
            env[key] = replace(value, exact=exact, ub=ub,
                               length=length)


def _join_env(left: Env, right: Env) -> Env:
    out: Env = {}
    for key in set(left) | set(right):
        a, b = left.get(key), right.get(key)
        if a is None or b is None:
            continue  # bound on one path only: unsafe to keep
        out[key] = a.join(b)
    return out


def _widen_env(old: Env, new: Env) -> Env:
    out: Env = {}
    for key in set(old) | set(new):
        a, b = old.get(key), new.get(key)
        if a is None:
            assert b is not None
            out[key] = b
        elif b is None:
            out[key] = a
        else:
            out[key] = a.widen(b)
    return out


def _op_text(op: ast.cmpop) -> Optional[str]:
    return {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">",
            ast.GtE: ">=", ast.Eq: "==", ast.NotEq: "!="}.get(
        type(op))


def _load_of(target: ast.expr) -> ast.expr:
    clone = ast.parse(ast.unparse(target), mode="eval").body
    return clone


def _fmt(value: Number) -> str:
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, int) and value >= 0xE0000000:
        return hex(value)
    return str(value)


def _bound_text(sym: Optional[str], ival: Interval) -> str:
    if sym:
        return sym
    if math.isfinite(ival.lo) and ival.is_const:
        return _fmt(ival.lo)
    if math.isfinite(ival.lo):
        return f">={_fmt(ival.lo)}"
    return "len"


def _describe(value: AbsVal) -> str:
    parts: List[str] = []
    if value.unit != TOP:
        parts.append(value.unit)
    if not value.ival.is_top:
        parts.append(repr(value.ival))
    if value.exact is not None:
        sym, off = value.exact
        parts.append(f"== {sym}{off:+d}" if off else f"== {sym}")
    elif value.ub is not None:
        sym, off = value.ub
        parts.append(f"<= {sym}{off:+d}" if off else f"<= {sym}")
    return ", ".join(parts) if parts else "unknown"


def analyze_units(graph: CallGraph) -> UnitsResult:
    """Run the unit and value-range analyses over a built graph."""
    return _Analyzer(graph).run()


__all__ = ["AbsVal", "UnitsResult", "analyze_units",
           "annotation_unit", "unit_val", "const_val"]
