"""Entry point for ``python -m repro.units``."""

import sys

from repro.units.cli import main

if __name__ == "__main__":
    sys.exit(main())
