"""``python -m repro.units`` — the unit & bounds proof CLI.

Same contract as the other six tools: exit 0 clean, 1 findings,
2 usage error; ``--list-rules`` prints the shared registry;
``--format github`` emits Actions annotations.  ``--strict``
promotes advisory UNIT714 proof obligations to errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.registry import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_report_arguments,
    render_registry,
)
from repro.units.analysis import (
    _filter_rules,
    analyze_paths,
    validate_rule_names,
)
from repro.units.cache import DEFAULT_CACHE_FILE
from repro.units.report import (
    render_github,
    render_json,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-units",
        description=("whole-program semantic-unit checking "
                     "(UNIT701–705) and value-range bounds proofs "
                     "(UNIT711–714) over the flow call graph"),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    add_report_arguments(parser)
    parser.add_argument(
        "--select", action="append", metavar="RULE",
        help="only report these rule names (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rule names (repeatable)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="advisory UNIT714 obligations also fail the run",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-analyze, ignoring the whole-tree cache",
    )
    parser.add_argument(
        "--cache-file", default=DEFAULT_CACHE_FILE,
        help=f"cache location (default: {DEFAULT_CACHE_FILE})",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_registry())
        return EXIT_CLEAN

    try:
        validate_rule_names(args.select, args.ignore)
        report = analyze_paths(
            args.paths,
            use_cache=not args.no_cache,
            cache_file=args.cache_file,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro-units: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    report.findings = _filter_rules(report.findings, args.select,
                                    args.ignore)
    report.advisory = _filter_rules(report.advisory, args.select,
                                    args.ignore)

    if args.format == "json":
        print(render_json(report))
    elif args.format == "github":
        output = render_github(report, strict=args.strict)
        if output:
            print(output)
    else:
        print(render_text(report, strict=args.strict))

    if report.exit_findings(strict=args.strict):
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
