"""Semantic-unit aliases for the quantities the simulator moves around.

The paper's allocators work over a dense index space ``0..size-1``
mapped onto real multicast ranges, and the code historically carried
every one of those quantities as a bare ``int`` or ``float``.  These
aliases give each quantity a *name* that the :mod:`repro.units`
abstract interpreter enforces whole-program:

* ``Addr`` — an absolute IPv4 multicast address as a 32-bit int
  (``224.0.0.0`` = ``0xE0000000`` upward).
* ``SlotIndex`` — a dense index into a
  :class:`~repro.core.address_space.MulticastAddressSpace`,
  ``0..size-1``.  This is what allocators pick and what
  ``Session.address`` stores.
* ``Ttl`` — an IPv4 scope TTL, ``1..255``.
* ``ScopeMask`` — a bitmask over scope zones / admin-scope prefixes.
* ``SimTime`` — an absolute simulated timestamp in seconds.
* ``Duration`` — a relative time span in seconds.
* ``SeedInt`` — RNG seed/entropy material.
* ``Count`` — a dimensionless cardinality (space sizes, trial counts).

They are deliberately *plain aliases*, not :func:`typing.NewType`
wrappers: at runtime and to mypy every ``Addr`` is an ``int`` and
every ``SimTime`` is a ``float``, so annotating existing code is a
no-op for behaviour and for the type checker.  The unit discipline —
no ``Addr + Ttl``, no ``Ttl < SimTime``, no ``Addr`` used as a
subscript — is checked by ``python -m repro.units``, which reads
these names out of annotations and propagates them interprocedurally
over the :mod:`repro.flow` call graph.

Keep this module import-free: it is imported by ``repro.core``,
``repro.sim`` and ``repro.sap`` and must never create a cycle back
into the analysis machinery.
"""

from __future__ import annotations

Addr = int
SlotIndex = int
Ttl = int
ScopeMask = int
SimTime = float
Duration = float
SeedInt = int
Count = int

#: Every unit name the abstract interpreter recognises in annotations,
#: mapped to its representation kind ("int" | "float").
UNIT_NAMES = {
    "Addr": "int",
    "SlotIndex": "int",
    "Ttl": "int",
    "ScopeMask": "int",
    "SimTime": "float",
    "Duration": "float",
    "SeedInt": "int",
    "Count": "int",
}
