"""Orchestrator: build/reuse the flow graph, run the interpreter.

``analyze_paths`` is the programmatic entry the CLI and the tier-1
test share.  It applies ``# simlint: disable=<rule>`` suppressions
(same syntax and parser as the linter; whole-program findings are
suppressed at the line they are *reported* on), splits hard UNIT701–
713 findings from advisory UNIT714 proof obligations, and serves
byte-identical reports from the whole-tree cache when nothing
changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.flow.graph import shared_graph
from repro.lint.engine import (
    Finding,
    iter_python_files,
    parse_suppressions,
)
from repro.units.cache import (
    DEFAULT_CACHE_FILE,
    tree_digest,
    units_cache,
)
from repro.units.engine import analyze_units
from repro.units.rules import UNIT_RULE_NAMES


@dataclass
class UnitsReport:
    """Everything one run produces."""

    findings: List[Finding]            # hard, unsuppressed
    advisory: List[Finding]            # UNIT714 obligations
    suppressed: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    from_cache: bool = False

    def exit_findings(self, strict: bool = False) -> List[Finding]:
        if strict:
            return self.findings + self.advisory
        return self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": len(self.findings),
            "findings": [f.to_dict() for f in self.findings],
            "advisory_count": len(self.advisory),
            "advisory": [f.to_dict() for f in self.advisory],
            "suppressed": self.suppressed,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "UnitsReport":
        return cls(
            findings=[Finding(**f) for f in raw.get("findings", [])],
            advisory=[Finding(**f) for f in raw.get("advisory", [])],
            suppressed=int(raw.get("suppressed", 0)),
            stats=dict(raw.get("stats", {})),
            from_cache=True,
        )


def _filter_rules(findings: Sequence[Finding],
                  select: Optional[List[str]],
                  ignore: Optional[List[str]]) -> List[Finding]:
    out = list(findings)
    if select:
        chosen = set(select)
        out = [f for f in out if f.rule in chosen]
    if ignore:
        dropped = set(ignore)
        out = [f for f in out if f.rule not in dropped]
    return out


def validate_rule_names(select: Optional[List[str]],
                        ignore: Optional[List[str]]) -> None:
    """Raises ValueError on a name not in the UNIT rule table."""
    known = set(UNIT_RULE_NAMES)
    for name in (select or []) + (ignore or []):
        if name not in known:
            raise ValueError(
                f"unknown rule {name!r}; known: {sorted(known)}"
            )


def analyze_sources(sources: Sequence[Tuple[str, str]]
                    ) -> UnitsReport:
    """Run the abstract interpreter over ``(path, text)`` pairs."""
    graph = shared_graph(sources)
    result = analyze_units(graph)

    hard = list(result.findings)
    advisory = list(result.obligations)

    # Apply # simlint: disable suppressions at the reported line.
    suppressions = {path: parse_suppressions(text)
                    for path, text in sources}
    suppressed = 0

    def keep(finding: Finding) -> bool:
        nonlocal suppressed
        marks = suppressions.get(finding.path)
        if marks is not None and marks.suppressed(finding.line,
                                                  finding.rule):
            suppressed += 1
            return False
        return True

    hard = [f for f in hard if keep(f)]
    advisory = [f for f in advisory if keep(f)]
    hard.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    advisory.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    stats = dict(result.stats)
    stats["modules"] = len(graph.modules)

    return UnitsReport(
        findings=hard,
        advisory=advisory,
        suppressed=suppressed,
        stats=stats,
    )


def analyze_paths(paths: Sequence[str],
                  use_cache: bool = True,
                  cache_file: str = DEFAULT_CACHE_FILE
                  ) -> UnitsReport:
    """Analyze every ``.py`` under ``paths``.

    Raises:
        FileNotFoundError: if a named path does not exist.
    """
    sources: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths):
        text = Path(file_path).read_text(encoding="utf-8")
        sources.append((file_path, text))

    cache = units_cache(cache_file) if use_cache else None
    digest = tree_digest(sources)
    if cache is not None:
        cached = cache.lookup(digest)
        if cached is not None:
            return UnitsReport.from_dict(cached)

    report = analyze_sources(sources)
    if cache is not None:
        cache.store(digest, report.to_dict())
    return report
