"""Renderers for units reports: text, JSON, GitHub annotations.

Hard findings render exactly like the linter's (same ``Finding``
shape, same ``::error`` annotations).  Advisory UNIT714 proof
obligations are extra: text gets a separate section, JSON gets an
``advisory`` list, GitHub gets ``::notice`` lines so the Actions UI
surfaces the refactor contract without failing the check.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.report import render_github as _github_errors
from repro.units.analysis import UnitsReport


def render_text(report: UnitsReport, strict: bool = False) -> str:
    lines: List[str] = [f.format() for f in report.findings]
    count = len(report.findings)
    if count == 0:
        lines.append("repro-units: clean (0 findings)")
    else:
        noun = "finding" if count == 1 else "findings"
        lines.append(f"repro-units: {count} {noun}")
    if report.advisory:
        label = "errors under --strict" if strict else "report-only"
        lines.append(f"proof obligations ({len(report.advisory)} "
                     f"sites, {label}):")
        for finding in report.advisory[:10]:
            lines.append("  " + finding.format())
        rest = len(report.advisory) - min(10, len(report.advisory))
        if rest > 0:
            lines.append(f"  ... and {rest} more "
                         f"(--format json for all)")
    if report.suppressed:
        lines.append(f"suppressed: {report.suppressed}")
    if report.stats:
        lines.append(
            "proofs: {proved_subscripts}/{checked_subscripts} "
            "subscripts, {proved_shifts}/{checked_shifts} shifts, "
            "{proved_conversions}/{checked_conversions} conversions "
            "({functions} functions)".format(**{
                key: report.stats.get(key, 0)
                for key in ("proved_subscripts", "checked_subscripts",
                            "proved_shifts", "checked_shifts",
                            "proved_conversions",
                            "checked_conversions", "functions")
            })
        )
    if report.from_cache:
        lines.append("(cached: tree unchanged)")
    return "\n".join(lines)


def render_json(report: UnitsReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_github(report: UnitsReport, strict: bool = False) -> str:
    lines: List[str] = []
    hard = _github_errors(report.findings)
    if hard:
        lines.append(hard)
    for finding in report.advisory:
        message = f"{finding.code} [{finding.rule}] {finding.message}"
        directive = "error" if strict else "notice"
        lines.append(f"::{directive} file={finding.path},"
                     f"line={max(finding.line, 1)},"
                     f"col={finding.col}::{message}")
    return "\n".join(lines)
