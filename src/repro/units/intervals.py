"""The integer/float interval domain for the value-range analysis.

Classic abstract-interpretation intervals ``[lo, hi]`` over the
extended number line, with:

* total ``join`` / ``meet`` (meet of disjoint intervals is BOTTOM);
* sound transfer functions for the arithmetic the allocator code
  actually performs (``+ - * // % << >>``, negation);
* *threshold widening*: instead of jumping straight to ±inf, unstable
  bounds snap outward to the landmarks that matter in this codebase —
  0, 1, the TTL ceiling, the 2^16 sdr space, the 2^28 multicast
  total, and the multicast base/end addresses — so a loop that climbs
  to ``space.size`` stabilises at a bound the checker can still
  compare against ``0..size-1``.

Endpoints are Python numbers (ints where possible) or ±``math.inf``.
Everything here is pure and total: no interval operation raises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

Number = Union[int, float]

INF = math.inf

#: Widening landmarks (kept sorted): unstable bounds snap to the next
#: landmark outward rather than to infinity, preserving just enough
#: precision to compare against space sizes and address boundaries.
THRESHOLDS: Tuple[Number, ...] = (
    -(2 ** 32), -1, 0, 1, 2, 255, 256, 65_535, 65_536,
    0x0FFFFFFF, 0x10000000,            # MULTICAST_TOTAL - 1, TOTAL
    0xE0000000, 0xEFFFFFFF, 0xF0000000,  # base .. end of 224/4
    2 ** 32,
)


def _as_int(value: Number) -> Number:
    """Collapse float-typed integral endpoints to int (hash/eq sanity)."""
    if isinstance(value, float) and math.isfinite(value) \
            and value == int(value):
        return int(value)
    return value


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; ``lo > hi`` encodes BOTTOM."""

    lo: Number = -INF
    hi: Number = INF

    # -- constructors --------------------------------------------------
    @staticmethod
    def top() -> "Interval":
        return Interval(-INF, INF)

    @staticmethod
    def bottom() -> "Interval":
        return Interval(1, 0)

    @staticmethod
    def const(value: Number) -> "Interval":
        value = _as_int(value)
        return Interval(value, value)

    @staticmethod
    def range(lo: Number, hi: Number) -> "Interval":
        return Interval(_as_int(lo), _as_int(hi))

    # -- predicates ----------------------------------------------------
    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == -INF and self.hi == INF

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi and math.isfinite(self.lo)

    def contains(self, value: Number) -> bool:
        return not self.is_bottom and self.lo <= value <= self.hi

    def within(self, lo: Number, hi: Number) -> bool:
        """True when every value of the interval lies in ``[lo, hi]``."""
        return self.is_bottom or (self.lo >= lo and self.hi <= hi)

    def disjoint(self, lo: Number, hi: Number) -> bool:
        """True when no value of the interval lies in ``[lo, hi]``."""
        return self.is_bottom or self.hi < lo or self.lo > hi

    # -- lattice -------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        """Threshold widening of ``self`` by ``newer``."""
        if self.is_bottom:
            return newer
        if newer.is_bottom:
            return self
        lo, hi = self.lo, self.hi
        if newer.lo < lo:
            lo = max((t for t in THRESHOLDS if t <= newer.lo),
                     default=-INF)
        if newer.hi > hi:
            hi = min((t for t in THRESHOLDS if t >= newer.hi),
                     default=INF)
        return Interval(lo, hi)

    # -- arithmetic ----------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.range(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.range(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        if self.is_bottom:
            return self
        return Interval.range(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        corners = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                try:
                    product = a * b
                except (OverflowError, ValueError):
                    return Interval.top()
                if math.isnan(product):   # 0 * inf
                    product = 0
                corners.append(product)
        return Interval.range(min(corners), max(corners))

    def floordiv(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if other.contains(0):
            return Interval.top()
        corners = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if math.isinf(a) or math.isinf(b):
                    corners.extend([-INF, INF])
                else:
                    corners.append(a // b)
        return Interval.range(min(corners), max(corners))

    def mod(self, other: "Interval") -> "Interval":
        """``x % m`` for a known-positive modulus stays in [0, m-1]."""
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if other.lo > 0 and math.isfinite(other.hi):
            if self.lo >= 0 and self.hi < other.lo:
                return self          # already reduced
            return Interval.range(0, other.hi - 1)
        return Interval.top()

    def lshift(self, amount: "Interval") -> "Interval":
        if self.is_bottom or amount.is_bottom:
            return Interval.bottom()
        if amount.lo < 0:
            return Interval.top()    # raises at runtime; checked by rule
        if (self.lo >= 0 and math.isfinite(self.hi)
                and math.isfinite(amount.hi) and amount.hi <= 256):
            return Interval.range(self.lo << int(amount.lo),
                                  self.hi << int(amount.hi))
        return Interval.top()

    def rshift(self, amount: "Interval") -> "Interval":
        if self.is_bottom or amount.is_bottom:
            return Interval.bottom()
        if amount.lo < 0:
            return Interval.top()
        if self.lo >= 0 and math.isfinite(self.hi):
            hi = self.hi >> int(min(amount.lo, 256))
            lo = 0 if math.isinf(amount.hi) \
                else self.lo >> int(min(amount.hi, 256))
            return Interval.range(lo, hi)
        return Interval.top()

    # -- comparison refinement ----------------------------------------
    def refine(self, op: str, bound: "Interval") -> "Interval":
        """The subset of ``self`` for which ``self <op> bound`` can
        hold (used to refine a variable under an ``if`` guard)."""
        if self.is_bottom or bound.is_bottom:
            return Interval.bottom()
        if op == "<":
            return self.meet(Interval(-INF, bound.hi - 1
                                      if math.isfinite(bound.hi)
                                      else INF))
        if op == "<=":
            return self.meet(Interval(-INF, bound.hi))
        if op == ">":
            return self.meet(Interval(bound.lo + 1
                                      if math.isfinite(bound.lo)
                                      else -INF, INF))
        if op == ">=":
            return self.meet(Interval(bound.lo, INF))
        if op == "==":
            return self.meet(bound)
        return self  # != and unknown ops refine nothing

    def __repr__(self) -> str:
        if self.is_bottom:
            return "Interval(⊥)"
        return f"Interval[{self.lo}, {self.hi}]"


NEGATE_OP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
             "==": "!=", "!=": "=="}

SWAP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
           "==": "==", "!=": "!="}


def join_all(intervals: Sequence[Interval]) -> Interval:
    out = Interval.bottom()
    for ival in intervals:
        out = out.join(ival)
    return out


def widen_env_interval(old: Optional[Interval],
                       new: Optional[Interval]) -> Interval:
    """Helper used by the engine's loop fixpoint."""
    if old is None:
        return new if new is not None else Interval.top()
    if new is None:
        return old
    return old.widen(new)
